"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
``pip install -e .`` works in offline environments that lack the ``wheel``
package (legacy editable installs go through ``setup.py develop``).
"""

from setuptools import setup

setup()
