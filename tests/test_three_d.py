"""Tests for the 3-D FPGA extension (§6 future work, refs [1, 2])."""

from __future__ import annotations

import pytest

from repro.errors import ArchitectureError, NetError
from repro.fpga import (
    Architecture,
    Architecture3D,
    PlacedNet3D,
    RoutingResourceGraph3D,
    pin_node_3d,
    route_nets_3d,
)
from repro.graph import dijkstra
from repro.net import Net
from repro.steiner import kmb
from repro.arborescence import pfa


def base_arch(**kwargs):
    defaults = dict(rows=3, cols=3, channel_width=3, pins_per_block=4)
    defaults.update(kwargs)
    return Architecture(**defaults)


class TestArchitecture3D:
    def test_defaults(self):
        a = Architecture3D(base=base_arch())
        assert a.layers == 2
        assert a.num_blocks == 18

    def test_invalid_layers(self):
        with pytest.raises(ArchitectureError):
            Architecture3D(base=base_arch(), layers=0)

    def test_invalid_vias(self):
        with pytest.raises(ArchitectureError):
            Architecture3D(base=base_arch(), vias_per_crossing=99)

    def test_negative_via_weight(self):
        with pytest.raises(ArchitectureError):
            Architecture3D(base=base_arch(), via_weight=-1.0)


class TestRoutingGraph3D:
    def test_layer_copies(self):
        arch = Architecture3D(base=base_arch(), layers=3,
                              vias_per_crossing=0)
        rrg = RoutingResourceGraph3D(arch)
        from repro.fpga import RoutingResourceGraph

        single = RoutingResourceGraph(arch.base)
        assert rrg.graph.num_nodes == 3 * single.graph.num_nodes
        assert rrg.graph.num_edges == 3 * single.graph.num_edges

    def test_vias_join_layers(self):
        arch = Architecture3D(base=base_arch(), layers=2,
                              vias_per_crossing=1)
        rrg = RoutingResourceGraph3D(arch)
        # without vias the two layers would be disconnected
        a = pin_node_3d(0, 0, 0, 0)
        b = pin_node_3d(1, 0, 0, 0)
        dist, _ = dijkstra(rrg.graph, a, targets=[b])
        assert b in dist

    def test_no_vias_disconnects_layers(self):
        arch = Architecture3D(base=base_arch(), layers=2,
                              vias_per_crossing=0)
        rrg = RoutingResourceGraph3D(arch)
        a = pin_node_3d(0, 0, 0, 0)
        b = pin_node_3d(1, 0, 0, 0)
        dist, _ = dijkstra(rrg.graph, a, targets=[b])
        assert b not in dist

    def test_pin_protocol(self):
        arch = Architecture3D(base=base_arch())
        rrg = RoutingResourceGraph3D(arch)
        pn = pin_node_3d(1, 1, 1, 0)
        rrg.detach_all_pins()
        assert not rrg.graph.has_node(pn)
        rrg.attach_pins([pn])
        assert rrg.graph.degree(pn) > 0
        rrg.detach_pins([pn])
        assert not rrg.graph.has_node(pn)

    def test_attach_unknown_pin_raises(self):
        arch = Architecture3D(base=base_arch())
        rrg = RoutingResourceGraph3D(arch)
        with pytest.raises(ArchitectureError):
            rrg.attach_pins([("bogus",)])

    def test_reset(self):
        arch = Architecture3D(base=base_arch())
        rrg = RoutingResourceGraph3D(arch)
        nodes = rrg.graph.num_nodes - len(rrg._pin_edges)
        rrg.detach_all_pins()
        from repro.graph import Graph

        t = Graph()
        u = next(iter(rrg.graph.nodes))
        v = next(iter(rrg.graph.neighbors(u)))
        t.add_edge(u, v, 1.0)
        rrg.commit(t)
        rrg.reset()
        assert rrg.graph.num_nodes >= nodes


class TestPlacedNet3D:
    def test_validation(self):
        with pytest.raises(NetError):
            PlacedNet3D("n", (0, 0, 0, 0), ())
        with pytest.raises(NetError):
            PlacedNet3D("n", (0, 0, 0, 0), ((0, 0, 0, 0),))

    def test_to_graph_net(self):
        net = PlacedNet3D("n", (0, 1, 2, 3), ((1, 0, 0, 0),))
        gnet = net.to_graph_net()
        assert gnet.source == ("L", 0, "P", 1, 2, 3)


class TestRouting3D:
    def test_cross_layer_net_routes(self):
        arch = Architecture3D(base=base_arch(), layers=2)
        nets = [
            PlacedNet3D("x", (0, 0, 0, 0), ((1, 2, 2, 0),)),
        ]
        wl = route_nets_3d(arch, nets)
        assert wl["x"] > 0

    def test_multiple_nets_disjoint(self):
        arch = Architecture3D(base=base_arch(channel_width=4), layers=2)
        nets = [
            PlacedNet3D("a", (0, 0, 0, 0), ((0, 2, 2, 0),)),
            PlacedNet3D("b", (1, 0, 0, 0), ((1, 2, 2, 0),)),
            PlacedNet3D("c", (0, 0, 2, 1), ((1, 2, 0, 1),)),
        ]
        wl = route_nets_3d(arch, nets)
        assert len(wl) == 3

    def test_any_algorithm_plugs_in(self):
        # the §6 claim: the constructions generalize unchanged to 3-D
        arch = Architecture3D(base=base_arch(channel_width=4), layers=2)
        nets = [
            PlacedNet3D(
                "m", (0, 0, 0, 0),
                ((1, 2, 2, 0), (0, 2, 0, 1)),
            ),
        ]
        wl_kmb = route_nets_3d(arch, nets, algorithm=kmb)
        wl_pfa = route_nets_3d(arch, nets, algorithm=pfa)
        assert wl_kmb["m"] > 0 and wl_pfa["m"] > 0

    def test_extra_layer_shortens_congested_routes(self):
        # with more layers there is strictly more routing capacity;
        # the same net set can only get cheaper or equal
        nets = [
            PlacedNet3D("a", (0, 0, 0, 0), ((0, 2, 2, 0),)),
            PlacedNet3D("b", (0, 0, 2, 1), ((0, 2, 0, 1),)),
            PlacedNet3D("c", (0, 1, 0, 2), ((0, 1, 2, 2),)),
        ]
        thin = Architecture3D(
            base=base_arch(channel_width=2), layers=1,
            vias_per_crossing=0,
        )
        thick = Architecture3D(
            base=base_arch(channel_width=2), layers=2,
            vias_per_crossing=2,
        )
        wl_thin = sum(route_nets_3d(thin, nets).values())
        wl_thick = sum(route_nets_3d(thick, nets).values())
        assert wl_thick <= wl_thin + 1e-9
