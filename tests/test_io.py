"""Tests for JSON serialization of circuits and routing results."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc4000
from repro.io import (
    circuit_from_dict,
    circuit_to_dict,
    load_circuit,
    load_result,
    result_from_dict,
    result_to_dict,
    save_circuit,
    save_result,
)
from repro.router import RouterConfig, route_circuit


@pytest.fixture(scope="module")
def circuit():
    return synthesize_circuit(
        scaled_spec(circuit_spec("term1"), 0.18), seed=2
    )


@pytest.fixture(scope="module")
def result(circuit):
    arch = xc4000(circuit.rows, circuit.cols, 10)
    return route_circuit(circuit, arch, RouterConfig(algorithm="kmb"))


class TestCircuitRoundTrip:
    def test_dict_round_trip(self, circuit):
        restored = circuit_from_dict(circuit_to_dict(circuit))
        assert restored.name == circuit.name
        assert restored.rows == circuit.rows
        assert [n.pins for n in restored.nets] == [
            n.pins for n in circuit.nets
        ]

    def test_file_round_trip(self, circuit, tmp_path):
        path = tmp_path / "circuit.json"
        save_circuit(circuit, str(path))
        restored = load_circuit(str(path))
        assert restored.num_nets == circuit.num_nets
        restored.validate(pins_per_block=8)

    def test_json_is_plain(self, circuit, tmp_path):
        path = tmp_path / "c.json"
        save_circuit(circuit, str(path))
        data = json.loads(path.read_text())
        assert data["format"] == "repro-circuit"

    def test_rejects_wrong_format(self):
        with pytest.raises(ReproError):
            circuit_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, circuit):
        data = circuit_to_dict(circuit)
        data["version"] = 99
        with pytest.raises(ReproError):
            circuit_from_dict(data)


class TestResultRoundTrip:
    def test_dict_round_trip(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.circuit == result.circuit
        assert restored.channel_width == result.channel_width
        assert restored.num_routed == result.num_routed
        assert restored.total_wirelength == pytest.approx(
            result.total_wirelength
        )

    def test_node_ids_decoded_to_tuples(self, result):
        restored = result_from_dict(result_to_dict(result))
        route = restored.routes[0]
        assert isinstance(route.source, tuple)
        assert route.source[0] == "P"
        u, v, _ = route.edges[0]
        assert isinstance(u, tuple) and isinstance(v, tuple)

    def test_metrics_survive(self, result):
        restored = result_from_dict(result_to_dict(result))
        for orig, back in zip(result.routes, restored.routes):
            assert back.max_pathlength == pytest.approx(
                orig.max_pathlength
            )
            assert back.wirelength == pytest.approx(orig.wirelength)

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, str(path))
        restored = load_result(str(path))
        assert restored.complete
        assert restored.summary() == result.summary()

    def test_tree_reconstruction_from_loaded(self, result, tmp_path):
        path = tmp_path / "r.json"
        save_result(result, str(path))
        restored = load_result(str(path))
        tree = restored.routes[0].tree()
        assert tree.total_weight() == pytest.approx(
            restored.routes[0].wirelength
        )

    def test_rejects_wrong_format(self):
        with pytest.raises(ReproError):
            result_from_dict({"format": "nope"})
