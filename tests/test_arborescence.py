"""Tests for the arborescence heuristics (DJKA, DOM, PFA, IDOM) and the
exact GSA solver."""

from __future__ import annotations

import random

import pytest

from repro.arborescence import (
    DominanceOracle,
    djka,
    dom,
    dom_cost,
    idom,
    optimal_arborescence,
    optimal_arborescence_cost,
    pfa,
    tight_edge_dag,
)
from repro.errors import GraphError
from repro.graph import Graph, ShortestPathCache, dijkstra, grid_graph, is_tree
from repro.net import Net
from repro.steiner import kmb
from tests.conftest import random_instance

ALGOS = [djka, dom, pfa, idom]


def assert_arborescence(graph, net, result):
    """Every sink's tree pathlength must equal its graph distance."""
    dist, _ = dijkstra(graph, net.source)
    assert is_tree(result.tree)
    for sink in net.sinks:
        assert result.pathlength(sink) == pytest.approx(dist[sink])


class TestDominance:
    def test_everything_dominates_source(self, medium_grid):
        oracle = DominanceOracle(medium_grid, (0, 0))
        assert oracle.dominates((5, 5), (0, 0))
        assert oracle.dominates((0, 0), (0, 0))

    def test_source_dominates_only_itself(self, medium_grid):
        oracle = DominanceOracle(medium_grid, (0, 0))
        assert not oracle.dominates((0, 0), (3, 3))

    def test_rectilinear_dominance_matches_geometry(self, medium_grid):
        # on a uniform grid with source at origin, p dominates s iff
        # p >= s componentwise (the Manhattan-plane special case of
        # Definition 4.1)
        oracle = DominanceOracle(medium_grid, (0, 0))
        assert oracle.dominates((4, 5), (2, 3))
        assert oracle.dominates((4, 5), (4, 0))
        assert not oracle.dominates((4, 5), (5, 5))
        assert not oracle.dominates((2, 3), (3, 2))

    def test_maxdom_is_meet_on_grid(self, medium_grid):
        oracle = DominanceOracle(medium_grid, (0, 0))
        m, d = oracle.maxdom((3, 7), (6, 2))
        assert m == (3, 2)
        assert d == 5

    def test_maxdom_restricted(self, medium_grid):
        oracle = DominanceOracle(medium_grid, (0, 0))
        m, d = oracle.maxdom((3, 7), (6, 2), restrict=[(0, 0), (1, 1)])
        assert m == (1, 1)

    def test_maxdom_unreachable_raises(self):
        g = Graph()
        g.add_edge("s", "a", 1.0)
        g.add_node("b")
        oracle = DominanceOracle(g, "s")
        with pytest.raises(GraphError):
            oracle.maxdom("a", "b")

    def test_nearest_dominated_prefers_close(self, medium_grid):
        oracle = DominanceOracle(medium_grid, (0, 0))
        target, d = oracle.nearest_dominated((5, 5), [(0, 0), (5, 4), (1, 1)])
        assert target == (5, 4)
        assert d == 1

    def test_nearest_dominated_falls_back_to_source(self, medium_grid):
        oracle = DominanceOracle(medium_grid, (0, 0))
        target, d = oracle.nearest_dominated((2, 0), [(0, 0), (0, 2)])
        assert target == (0, 0)
        assert d == 2

    def test_dominated_by_both_contains_source(self, medium_grid):
        oracle = DominanceOracle(medium_grid, (0, 0))
        common = oracle.dominated_by_both((2, 5), (5, 2))
        assert (0, 0) in common
        assert (2, 2) in common
        assert (3, 3) not in common


class TestShortestPathProperty:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_optimal_pathlengths_on_grids(self, algo):
        for seed in range(6):
            g, net = random_instance(seed + 30, num_pins=5)
            result = algo(g, net)
            assert_arborescence(g, net, result)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_optimal_pathlengths_on_random_graphs(self, algo):
        from repro.graph import random_connected_graph, random_net

        rng = random.Random(99)
        for trial in range(4):
            g = random_connected_graph(40, 120, rng)
            net = random_net(g, 5, rng)
            result = algo(g, net)
            assert_arborescence(g, net, result)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_two_pin_net_is_shortest_path(self, algo, medium_grid):
        net = Net(source=(0, 0), sinks=((7, 7),))
        result = algo(medium_grid, net)
        assert result.cost == 14
        assert result.max_pathlength == 14


class TestWirelengthQuality:
    def test_ranking_idom_pfa_dom_djka(self):
        """Table 1's consistent wirelength ranking, on aggregate."""
        totals = {a.__name__: 0.0 for a in ALGOS}
        for seed in range(10):
            g, net = random_instance(seed + 40, num_pins=6)
            for algo in ALGOS:
                totals[algo.__name__] += algo(g, net).cost
        assert totals["idom"] <= totals["pfa"] + 1e-6
        assert totals["pfa"] <= totals["dom"] + 1e-6
        assert totals["dom"] <= totals["djka"] + 1e-6

    def test_idom_never_worse_than_dom(self):
        for seed in range(8):
            g, net = random_instance(seed + 50, num_pins=5)
            assert idom(g, net).cost <= dom(g, net).cost + 1e-9

    def test_pfa_competitive_with_kmb_uncongested(self):
        """On uncongested grids PFA's wirelength is near KMB's (§5)."""
        g = grid_graph(12, 12)
        rng = random.Random(4)
        ratio_sum, trials = 0.0, 8
        for i in range(trials):
            nodes = rng.sample(list(g.nodes), 5)
            net = Net(source=nodes[0], sinks=tuple(nodes[1:]))
            ratio_sum += pfa(g, net).cost / kmb(g, net).cost
        assert ratio_sum / trials <= 1.10

    def test_idom_exact_on_small_instances(self):
        gaps = []
        for seed in range(8):
            g, net = random_instance(seed + 60, num_pins=4)
            heur = idom(g, net).cost
            opt = optimal_arborescence_cost(g, net)
            assert heur >= opt - 1e-9
            gaps.append(heur / opt)
        assert sum(gaps) / len(gaps) <= 1.15


class TestExactGSA:
    def test_tight_edges_on_grid(self):
        g = grid_graph(4, 4)
        preds = tight_edge_dag(g, (0, 0))
        # (2,2) is reached via (1,2) and (2,1) only
        assert sorted(u for u, _ in preds[(2, 2)]) == [(1, 2), (2, 1)]
        assert preds[(0, 0)] == []

    def test_exact_cost_lower_bounds_heuristics(self):
        for seed in range(6):
            g, net = random_instance(seed + 70, num_pins=4)
            opt = optimal_arborescence_cost(g, net)
            for algo in ALGOS:
                assert algo(g, net).cost >= opt - 1e-9

    def test_exact_tree_is_valid_arborescence(self):
        for seed in range(6):
            g, net = random_instance(seed + 80, num_pins=4)
            tree, cost = optimal_arborescence(g, net)
            assert tree.total_weight() == pytest.approx(cost)
            dist, _ = dijkstra(g, net.source)
            from repro.graph import tree_paths_from

            tdist, _ = tree_paths_from(tree, net.source)
            for sink in net.sinks:
                assert tdist[sink] == pytest.approx(dist[sink])

    def test_exact_at_least_steiner_optimum(self):
        # GSA optimum is lower-bounded by the unconstrained GMST optimum
        from repro.steiner import optimal_steiner_cost

        for seed in range(5):
            g, net = random_instance(seed + 90, num_pins=4)
            gsa = optimal_arborescence_cost(g, net)
            gmst = optimal_steiner_cost(g, net.terminals)
            assert gsa >= gmst - 1e-9

    def test_sink_limit(self, medium_grid):
        net = Net(
            source=(0, 0),
            sinks=tuple((i, j) for i in range(4) for j in range(4) if (i, j) != (0, 0)),
        )
        with pytest.raises(GraphError):
            optimal_arborescence(medium_grid, net, max_sinks=5)


class TestDOMDetails:
    def test_dom_cost_consistent_with_tree(self):
        g, net = random_instance(3, num_pins=5)
        cache = ShortestPathCache(g)
        cost = dom_cost(g, net.source, net.sinks, cache)
        result = dom(g, net, cache)
        assert cost == pytest.approx(result.cost)

    def test_dom_handles_steiner_members(self):
        g, net = random_instance(4, num_pins=4)
        cache = ShortestPathCache(g)
        extra = next(
            v for v in g.nodes if v not in set(net.terminals)
        )
        cost = dom_cost(g, net.source, list(net.sinks) + [extra], cache)
        assert cost > 0

    def test_idom_trace(self):
        g, net = random_instance(6, num_pins=6)
        result = idom(g, net, record_trace=True)
        trace = result.trace
        costs = [trace.initial_cost] + [c for _, _, c in trace.steps]
        assert all(a > b for a, b in zip(costs, costs[1:]))
        assert trace.final_cost == pytest.approx(result.cost)

    def test_idom_candidate_strategies(self):
        g, net = random_instance(7, num_pins=4)
        full = idom(g, net, candidates="all")
        nb = idom(g, net, candidates="neighborhood")
        assert_arborescence(g, net, nb)
        assert nb.cost >= full.cost - 1e-9  # restricted scan can't win

    def test_idom_unknown_strategy_raises(self, medium_grid):
        net = Net(source=(0, 0), sinks=((5, 5),))
        with pytest.raises(GraphError):
            idom(medium_grid, net, candidates="bogus")

    def test_idom_max_steiner_cap(self):
        g, net = random_instance(8, num_pins=6)
        result = idom(g, net, max_steiner_nodes=0)
        assert result.steiner_nodes == ()
        assert result.cost == pytest.approx(dom(g, net).cost)
