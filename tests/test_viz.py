"""Tests for the visualization module."""

from __future__ import annotations

import pytest

from repro.fpga import (
    PlacedCircuit,
    PlacedNet,
    xc4000,
)
from repro.router import RouterConfig, route_circuit
from repro.viz import (
    channel_occupancy,
    occupancy_histogram,
    render_occupancy,
    render_svg,
    save_svg,
)


@pytest.fixture(scope="module")
def routed():
    nets = [
        PlacedNet("a", (0, 0, 0), ((2, 2, 0),)),
        PlacedNet("b", (0, 2, 0), ((2, 0, 0),)),
        PlacedNet("c", (1, 1, 0), ((0, 1, 0), (2, 1, 0))),
    ]
    circuit = PlacedCircuit(name="tiny", rows=3, cols=3, nets=nets)
    arch = xc4000(3, 3, 4)
    result = route_circuit(circuit, arch, RouterConfig(algorithm="kmb"))
    return result, arch


class TestOccupancy:
    def test_counts_positive(self, routed):
        result, arch = routed
        counts = channel_occupancy(result, arch)
        assert counts
        assert all(v >= 1 for v in counts.values())

    def test_counts_bounded_by_width(self, routed):
        result, arch = routed
        counts = channel_occupancy(result, arch)
        assert max(counts.values()) <= arch.channel_width

    def test_histogram_sums_to_span_count(self, routed):
        result, arch = routed
        hist = occupancy_histogram(result, arch)
        total_spans = (arch.rows + 1) * arch.cols + (
            arch.cols + 1
        ) * arch.rows
        assert sum(hist.values()) == total_spans


class TestRendering:
    def test_ascii_structure(self, routed):
        result, arch = routed
        text = render_occupancy(result, arch)
        assert "tiny" in text
        assert "[]" in text
        assert "legend" in text
        # one channel row per horizontal channel (rows+1) plus block rows
        grid_lines = [ln for ln in text.splitlines() if "+" in ln]
        assert len(grid_lines) == arch.rows + 1

    def test_svg_well_formed(self, routed):
        result, arch = routed
        svg = render_svg(result, arch)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= arch.rows * arch.cols
        assert "<polyline" in svg

    def test_save_svg(self, routed, tmp_path):
        result, arch = routed
        path = tmp_path / "out.svg"
        save_svg(str(path), result, arch)
        assert path.stat().st_size > 500
