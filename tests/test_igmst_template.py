"""Deeper tests for the IGMST template mechanics."""

from __future__ import annotations

import pytest

from repro.graph import Graph, ShortestPathCache, grid_graph, is_tree
from repro.net import Net
from repro.steiner import (
    KMB_HEURISTIC,
    MEHLHORN_HEURISTIC,
    ZEL_HEURISTIC,
    SteinerHeuristic,
    igmst,
    ikmb,
    kmb,
    kmb_cost,
    kmb_tree_graph,
)
from tests.conftest import random_instance


class TestHeuristicProtocol:
    def test_builtin_heuristics_consistent(self):
        g, net = random_instance(60, num_pins=5)
        cache = ShortestPathCache(g)
        for h in (KMB_HEURISTIC, ZEL_HEURISTIC, MEHLHORN_HEURISTIC):
            cost = h.cost_fn(g, net.terminals, cache)
            tree = h.tree_fn(g, net.terminals, cache)
            assert cost == pytest.approx(tree.total_weight())
            assert is_tree(tree)

    def test_custom_heuristic_plugs_in(self):
        # a deliberately bad heuristic: KMB but doubled cost reporting;
        # IGMST must still return a valid tree via tree_fn
        bad = SteinerHeuristic(
            "BAD",
            lambda g, t, c: 2 * kmb_cost(g, t, c),
            kmb_tree_graph,
        )
        g, net = random_instance(61, num_pins=4)
        result = igmst(g, net, heuristic=bad)
        assert result.algorithm == "IBAD"
        assert is_tree(result.tree)


class TestTemplateMechanics:
    def test_no_candidates_returns_h(self):
        g, net = random_instance(62, num_pins=5)
        cache = ShortestPathCache(g)
        base = kmb(g, net, cache)
        result = igmst(g, net, cache=cache, candidates=[])
        assert result.cost == pytest.approx(base.cost)
        assert result.steiner_nodes == ()

    def test_candidates_already_terminals_ignored(self):
        g, net = random_instance(63, num_pins=4)
        result = igmst(g, net, candidates=list(net.terminals))
        assert result.steiner_nodes == ()

    def test_trace_gains_match_cost_deltas(self):
        g, net = random_instance(64, num_pins=6)
        result = ikmb(g, net, record_trace=True)
        trace = result.trace
        prev = trace.initial_cost
        for node, gain, cost in trace.steps:
            assert gain == pytest.approx(prev - cost)
            prev = cost

    def test_rounds_counted(self):
        g, net = random_instance(65, num_pins=6)
        result = ikmb(g, net, record_trace=True)
        # one scan per accepted candidate plus the final empty scan
        assert result.trace.rounds == len(result.trace.steps) + 1

    def test_neighborhood_radius_widens_pool(self):
        g, net = random_instance(66, num_pins=5)
        narrow = ikmb(
            g, net, candidates="neighborhood", neighborhood_radius=0.3
        )
        wide = ikmb(
            g, net, candidates="neighborhood", neighborhood_radius=1.5
        )
        # a wider pool can only match or improve the solution
        assert wide.cost <= narrow.cost + 1e-9

    def test_steiner_nodes_are_not_terminals(self):
        for seed in range(5):
            g, net = random_instance(seed + 67, num_pins=6)
            result = ikmb(g, net)
            for s in result.steiner_nodes:
                assert s not in set(net.terminals)

    def test_deterministic(self):
        g1, net1 = random_instance(68, num_pins=6)
        g2, net2 = random_instance(68, num_pins=6)
        r1 = ikmb(g1, net1, record_trace=True)
        r2 = ikmb(g2, net2, record_trace=True)
        assert r1.cost == r2.cost
        assert r1.steiner_nodes == r2.steiner_nodes
        assert r1.trace.steps == r2.trace.steps


class TestKnownOptimalInstances:
    def test_single_hub(self):
        # IKMB must find the unique profitable hub
        g = Graph()
        for t in ("A", "B", "C", "D"):
            g.add_edge(t, "hub", 1.5)
        for pair in (("A", "B"), ("B", "C"), ("C", "D"), ("D", "A"),
                     ("A", "C"), ("B", "D")):
            g.add_edge(*pair, 2.8)
        net = Net(source="A", sinks=("B", "C", "D"))
        result = ikmb(g, net)
        assert result.cost == pytest.approx(6.0)
        assert result.steiner_nodes == ("hub",)

    def test_two_independent_hubs(self):
        g = Graph()
        for c, names in ((1, "ABC"), (2, "DEF")):
            hub = f"h{c}"
            for n in names:
                g.add_edge(n, hub, 1.5)
            g.add_edge(names[0], names[1], 2.8)
            g.add_edge(names[1], names[2], 2.8)
            g.add_edge(names[0], names[2], 2.8)
        g.add_edge("C", "D", 1.0)
        net = Net(source="A", sinks=tuple("BCDEF"))
        result = ikmb(g, net)
        assert set(result.steiner_nodes) == {"h1", "h2"}
        assert result.cost == pytest.approx(1.5 * 6 + 1.0)
