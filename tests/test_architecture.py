"""Tests for the FPGA architecture model."""

from __future__ import annotations

import math

import pytest

from repro.errors import ArchitectureError
from repro.fpga import (
    Architecture,
    SIDE_PAIRS,
    XC3000_FAMILY,
    XC4000_FAMILY,
    xc3000,
    xc4000,
)


class TestArchitectureValidation:
    def test_defaults(self):
        a = Architecture(rows=4, cols=5, channel_width=3)
        assert a.num_blocks == 20
        assert a.effective_fc == 3  # fc=0 means "W"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 0, "cols": 1, "channel_width": 1},
            {"rows": 1, "cols": 1, "channel_width": 0},
            {"rows": 1, "cols": 1, "channel_width": 2, "fs": 0},
            {"rows": 1, "cols": 1, "channel_width": 2, "fc": 3},
            {"rows": 1, "cols": 1, "channel_width": 2, "pins_per_block": 0},
            {"rows": 1, "cols": 1, "channel_width": 2, "segment_weight": 0},
            {"rows": 1, "cols": 1, "channel_width": 2, "switch_weight": -1},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ArchitectureError):
            Architecture(**kwargs)

    def test_with_channel_width(self):
        a = xc4000(4, 4, 6)
        b = a.with_channel_width(9)
        assert b.channel_width == 9
        assert b.rows == a.rows


class TestSwitchPattern:
    def test_fs3_is_disjoint(self):
        a = Architecture(rows=2, cols=2, channel_width=4, fs=3)
        for pair in SIDE_PAIRS:
            pattern = a.switch_pattern(*pair)
            assert pattern == [(t, t) for t in range(4)]

    def test_fs6_two_per_side(self):
        a = Architecture(rows=2, cols=2, channel_width=4, fs=6)
        pattern = a.switch_pattern("W", "E")
        # each track connects to itself and the next track
        assert (0, 0) in pattern and (0, 1) in pattern
        assert len(pattern) == 8

    def test_total_fanout_matches_fs(self):
        # sum of per-pair fanout over a wire's three side pairs == fs
        for fs in (3, 4, 5, 6):
            a = Architecture(rows=2, cols=2, channel_width=5, fs=fs)
            w_pairs = [p for p in SIDE_PAIRS if "W" in p]
            total = 0
            for pair in w_pairs:
                pattern = a.switch_pattern(*pair)
                # connections of track 0 on side W
                if pair[0] == "W":
                    total += sum(1 for ta, _ in pattern if ta == 0)
                else:
                    total += sum(1 for _, tb in pattern if tb == 0)
            assert total == fs, f"fs={fs}"

    def test_bad_pair_rejected(self):
        a = Architecture(rows=2, cols=2, channel_width=2)
        with pytest.raises(ArchitectureError):
            a.switch_pattern("N", "N")


class TestPins:
    def test_round_robin_sides(self):
        a = Architecture(rows=2, cols=2, channel_width=2, pins_per_block=8)
        assert [a.pin_side(i) for i in range(4)] == ["N", "E", "S", "W"]
        assert a.pin_side(4) == "N"

    def test_pin_index_range(self):
        a = Architecture(rows=2, cols=2, channel_width=2, pins_per_block=4)
        with pytest.raises(ArchitectureError):
            a.pin_side(4)

    def test_pin_tracks_count_is_fc(self):
        a = Architecture(rows=2, cols=2, channel_width=6, fc=3)
        for p in range(a.pins_per_block):
            tracks = a.pin_tracks(p)
            assert len(tracks) == 3
            assert len(set(tracks)) == 3
            assert all(0 <= t < 6 for t in tracks)

    def test_pin_tracks_staggered(self):
        a = Architecture(
            rows=2, cols=2, channel_width=8, fc=2, pins_per_block=8
        )
        starts = {tuple(a.pin_tracks(p)) for p in range(8)}
        assert len(starts) > 1  # different pins reach different tracks


class TestPresets:
    def test_xc3000(self):
        a = xc3000(12, 13, 10)
        assert a.fs == 6
        assert a.fc == math.ceil(0.6 * 10)
        assert a.name == "xc3000"

    def test_xc4000(self):
        a = xc4000(10, 9, 7)
        assert a.fs == 3
        assert a.fc == 7
        assert a.name == "xc4000"

    def test_families(self):
        a = XC3000_FAMILY.at(4, 5, 10)
        assert a.rows == 4 and a.cols == 5 and a.fc == 6
        b = XC4000_FAMILY.at(4, 5, 10)
        assert b.fc == 10

    def test_xc3000_fc_scales_with_width(self):
        assert xc3000(4, 4, 5).fc == 3
        assert xc3000(4, 4, 10).fc == 6
