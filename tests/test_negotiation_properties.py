"""Property tests for the PathFinder negotiation invariants.

Four contracts the differential suite cannot pin with goldens because
they must hold over *every* input, not just the fixture circuits:

* history costs are monotone non-decreasing, iteration over iteration;
* slack ratios live in ``[0, 1]`` and the critical-path sink sits at
  exactly ``1.0``;
* negotiated node factors are ≥ 1, so negotiated edge weights are
  strictly positive and never below base cost;
* a congestion-free circuit converges in exactly one iteration with a
  checker-valid Steiner tree per net.

Runs under hypothesis when available; otherwise every property is
exercised over a vendored seed list through the exact same code path
(each property is a pure function of one integer seed).
"""

from __future__ import annotations

import random

import pytest

from repro.engine import RoutingSession
from repro.fpga import CircuitSpec, synthesize_circuit, xc3000
from repro.graph import Graph
from repro.net import Net
from repro.router import RouterConfig
from repro.router.negotiation import FrozenFactorProvider, NegotiationState
from repro.router.timing import SlackTable
from repro.validate import verify_result

try:  # pragma: no cover - exercised implicitly by which path runs
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

#: fallback seeds when hypothesis is unavailable — chosen once, fixed
VENDORED_SEEDS = (0, 1, 2, 7, 11, 23, 57, 123, 999, 4242)


def seeded(func):
    """Run ``func(seed)`` under hypothesis or over the vendored seeds."""
    if HAVE_HYPOTHESIS:
        return settings(
            max_examples=25,
            deadline=None,
            suppress_health_check=[HealthCheck.function_scoped_fixture],
        )(given(st.integers(min_value=0, max_value=2**16))(func))
    return pytest.mark.parametrize("seed", VENDORED_SEEDS)(func)


def junction(rng):
    return ("J", rng.randrange(8), rng.randrange(8),
            rng.randrange(4), rng.randrange(4))


def random_state(rng, iterations=None):
    """A NegotiationState taken through a random usage history."""
    cfg = RouterConfig(
        mode="negotiate",
        negotiate_present_factor=rng.choice([0.1, 0.5, 2.0]),
        negotiate_growth=rng.choice([1.0, 1.3, 2.0]),
        negotiate_history_gain=rng.choice([0.1, 0.4, 1.5]),
    )
    state = NegotiationState(cfg)
    pool = [junction(rng) for _ in range(rng.randrange(2, 10))]
    snapshots = []
    for i in range(1, (iterations or rng.randrange(2, 6)) + 1):
        state.begin_iteration(i)
        for name in list(state.trees):
            state.remove_tree(name)
        for n in range(rng.randrange(1, 6)):
            k = rng.randrange(1, min(4, len(pool)) + 1)
            nodes = rng.sample(pool, k)
            edges = [
                (nodes[j], nodes[j + 1], 1.0) for j in range(k - 1)
            ]
            state.add_tree(f"net{n}", list(nodes), edges)
        state.update_history()
        snapshots.append(dict(state.history))
    return state, pool, snapshots


# ----------------------------------------------------------------------
# property 1: history costs never decrease
# ----------------------------------------------------------------------
@seeded
def test_history_monotone_non_decreasing(seed):
    rng = random.Random(seed)
    _, _, snapshots = random_state(rng)
    for before, after in zip(snapshots, snapshots[1:]):
        for node, h in before.items():
            assert after.get(node, 0.0) >= h, (
                f"history decreased at {node}: {h} -> {after.get(node)}"
            )
        # and no entry is ever negative
        assert all(v >= 0.0 for v in after.values())


# ----------------------------------------------------------------------
# property 2: slack ratios in [0, 1], critical-path sink exactly 1.0
# ----------------------------------------------------------------------
def random_slack_instance(rng):
    trees, nets = {}, {}
    for n in range(rng.randrange(1, 5)):
        g = Graph()
        sinks = []
        prev = "src"
        for s in range(rng.randrange(1, 4)):
            node = f"s{s}"
            g.add_edge(prev, node, rng.uniform(0.25, 4.0))
            sinks.append(node)
            if rng.random() < 0.5:
                prev = node  # sometimes chain, sometimes star
        name = f"net{n}"
        trees[name] = g
        nets[name] = Net(source="src", sinks=tuple(sinks))
    return trees, nets


@seeded
def test_slack_ratios_unit_interval_critical_at_one(seed):
    rng = random.Random(seed)
    trees, nets = random_slack_instance(rng)
    table = SlackTable.from_trees(trees, nets)
    assert len(table) > 0
    for (name, sink), ratio in table.items():
        assert 0.0 <= ratio <= 1.0
        assert table.criticality(name, sink) == ratio
    assert table.critical is not None
    assert table.criticality(*table.critical) == 1.0
    assert table.dmax > 0.0
    # unknown connections report zero criticality, not KeyError
    assert table.criticality("ghost", "nowhere") == 0.0


# ----------------------------------------------------------------------
# property 3: negotiated factors >= 1 -> edge weights strictly positive
# ----------------------------------------------------------------------
@seeded
def test_negotiated_factors_at_least_one(seed):
    rng = random.Random(seed)
    state, pool, _ = random_state(rng)
    for node in pool:
        f = state.node_factor(node)
        assert f >= 1.0
        # an occupied or historied junction costs strictly more
        if state.occupancy.get(node, 0) or state.history.get(node):
            assert f > 1.0
    # non-junction nodes (pins) are always exactly 1
    assert state.node_factor(("P", 0, 0)) == 1.0
    assert state.node_factor("plain-node") == 1.0
    # the frozen snapshot agrees with the live state everywhere
    frozen = FrozenFactorProvider(state.sparse_factors())
    for node in pool:
        assert frozen.node_factor(node) == state.node_factor(node)
    # negotiated edge weight = base * (f(u) + f(v)) / 2 >= base > 0
    for u in pool[:3]:
        for v in pool[:3]:
            base = rng.uniform(0.1, 5.0)
            weight = base * (state.node_factor(u)
                             + state.node_factor(v)) / 2.0
            assert weight >= base > 0.0


# ----------------------------------------------------------------------
# property 4: congestion-free circuits converge in exactly one
# iteration with a valid Steiner tree per net
# ----------------------------------------------------------------------
UNCONGESTED_SPEC = CircuitSpec(
    name="prop-uncongested",
    family="xc3000",
    cols=3,
    rows=3,
    nets_2_3=3,
    nets_4_10=1,
    nets_over_10=0,
    published={},
)

#: wide enough that no junction is ever contended
UNCONGESTED_WIDTH = 8


@seeded
def test_congestion_free_converges_in_one_iteration(seed):
    circuit = synthesize_circuit(UNCONGESTED_SPEC, seed=seed % 16)
    arch = xc3000(circuit.rows, circuit.cols, UNCONGESTED_WIDTH)
    cfg = RouterConfig(mode="negotiate")
    with RoutingSession(arch, cfg) as session:
        result = session.route(circuit)
    assert result.passes_used == 1
    assert result.complete
    report = verify_result(result, circuit, arch, cfg, level="full")
    assert report.ok, [d.render() for d in report.errors]
    # each route is a connected tree: |edges| == |nodes| - 1 and every
    # sink is reachable from the source
    for route in result.routes:
        tree = route.tree()
        nodes = set()
        for u, v, _ in route.edges:
            nodes.add(u)
            nodes.add(v)
        assert len(route.edges) == len(nodes) - 1
        seen = {route.source}
        frontier = [route.source]
        while frontier:
            cur = frontier.pop()
            for nxt in tree.neighbors(cur):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert set(route.sinks) <= seen
