"""Scenario tests: congestion steering and determinism of the router."""

from __future__ import annotations

import pytest

from repro.fpga import (
    Architecture,
    PlacedCircuit,
    PlacedNet,
    RoutingResourceGraph,
    circuit_spec,
    scaled_spec,
    synthesize_circuit,
    xc4000,
)
from repro.router import (
    CongestionModel,
    FPGARouter,
    RouterConfig,
    route_circuit,
)


class TestSteering:
    def test_hot_span_weights_rise_monotonically(self):
        rrg = RoutingResourceGraph(
            Architecture(rows=2, cols=2, channel_width=4)
        )
        model = CongestionModel(rrg, alpha=2.0)
        group = ("H", 0, 1)
        keys = rrg.group_tracks(group)
        weights = []
        for u, v in keys[:-1]:
            rrg.graph.remove_node(u)  # consume one track
            model.reweight_groups([group])
            survivors = [
                k for k in keys if rrg.graph.has_edge(*k)
            ]
            if survivors:
                su, sv = survivors[0]
                weights.append(rrg.graph.weight(su, sv))
        assert all(a < b for a, b in zip(weights, weights[1:]))

    def test_congestion_spreads_usage(self):
        """With congestion on, track usage spreads across channel spans
        (lower peak utilization than congestion-off at equal width)."""
        from repro.viz import channel_occupancy

        circuit = synthesize_circuit(
            scaled_spec(circuit_spec("term1"), 0.2), seed=3
        )
        width = 8
        arch = xc4000(circuit.rows, circuit.cols, width)
        peaks = {}
        for label, cfg in (
            ("on", RouterConfig(algorithm="kmb")),
            ("off", RouterConfig(algorithm="kmb", congestion=False)),
        ):
            result = route_circuit(circuit, arch, cfg)
            counts = channel_occupancy(result, arch)
            peaks[label] = max(counts.values())
        assert peaks["on"] <= peaks["off"] + 1


class TestRouterDeterminism:
    def test_same_inputs_same_result(self):
        circuit = synthesize_circuit(
            scaled_spec(circuit_spec("9symml"), 0.2), seed=5
        )
        arch = xc4000(circuit.rows, circuit.cols, 8)
        cfg = RouterConfig(algorithm="kmb")
        r1 = route_circuit(circuit, arch, cfg)
        r2 = route_circuit(circuit, arch, cfg)
        assert r1.total_wirelength == pytest.approx(r2.total_wirelength)
        assert [n.name for n in r1.routes] == [n.name for n in r2.routes]
        for a, b in zip(r1.routes, r2.routes):
            assert sorted(map(repr, a.edges)) == sorted(map(repr, b.edges))

    def test_cross_algorithm_isolation(self):
        # running one algorithm must not perturb a later run of another
        circuit = synthesize_circuit(
            scaled_spec(circuit_spec("9symml"), 0.2), seed=5
        )
        arch = xc4000(circuit.rows, circuit.cols, 8)
        first = route_circuit(
            circuit, arch, RouterConfig(algorithm="kmb")
        ).total_wirelength
        route_circuit(circuit, arch, RouterConfig(algorithm="pfa"))
        again = route_circuit(
            circuit, arch, RouterConfig(algorithm="kmb")
        ).total_wirelength
        assert first == pytest.approx(again)


class TestPinConflictScenarios:
    def test_two_nets_same_block_different_pins(self):
        nets = [
            PlacedNet("a", (0, 0, 0), ((2, 2, 0),)),
            PlacedNet("b", (0, 0, 1), ((2, 2, 1),)),
        ]
        circuit = PlacedCircuit(name="t", rows=3, cols=3, nets=nets)
        arch = xc4000(3, 3, 4)
        result = route_circuit(circuit, arch, RouterConfig(algorithm="kmb"))
        assert result.complete

    def test_dense_block_all_pins_used(self):
        # every pin slot of the center block carries a net
        nets = [
            PlacedNet(
                f"n{p}", (1, 1, p),
                (((0, 0, p) if p % 2 == 0 else (2, 2, p)),),
            )
            for p in range(8)
        ]
        circuit = PlacedCircuit(name="dense", rows=3, cols=3, nets=nets)
        arch = xc4000(3, 3, 8)
        result = route_circuit(circuit, arch, RouterConfig(algorithm="kmb"))
        assert result.complete
        assert result.num_routed == 8
