"""Tests for KMB, ZEL, IGMST (IKMB/IZEL) and the exact solver."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import Graph, ShortestPathCache, grid_graph, is_tree
from repro.net import Net
from repro.steiner import (
    dreyfus_wagner,
    igmst,
    ikmb,
    izel,
    kmb,
    kmb_cost,
    kmb_tree_graph,
    optimal_steiner_cost,
    optimal_steiner_tree,
    zel,
    zel_steiner_points,
)
from tests.conftest import random_instance


class TestKMB:
    def test_two_terminals_is_shortest_path(self, medium_grid):
        net = Net(source=(0, 0), sinks=((5, 5),))
        tree = kmb(medium_grid, net)
        assert tree.cost == 10

    def test_spans_and_is_tree(self, medium_grid):
        net = Net(source=(0, 0), sinks=((9, 9), (0, 9), (9, 0)))
        result = kmb(medium_grid, net)
        assert is_tree(result.tree)
        for t in net.terminals:
            assert result.tree.has_node(t)

    def test_uses_steiner_point_on_hub_graph(self, triangle_graph):
        net = Net(source="A", sinks=("B", "C"))
        tree = kmb(triangle_graph, net)
        # hub solution costs 6; best hub-free solution costs 10
        assert tree.cost == 6.0
        assert tree.tree.has_node("S")

    def test_within_2x_of_optimal_random(self):
        for seed in range(12):
            g, net = random_instance(seed, num_pins=4)
            heur = kmb(g, net).cost
            opt = optimal_steiner_cost(g, net.terminals)
            assert opt <= heur + 1e-9
            assert heur <= 2.0 * opt + 1e-9

    def test_cost_matches_tree(self, medium_grid):
        terms = [(0, 0), (9, 9), (4, 2)]
        cost = kmb_cost(medium_grid, terms)
        tree = kmb_tree_graph(medium_grid, terms)
        assert cost == pytest.approx(tree.total_weight())

    def test_single_terminal(self, medium_grid):
        g = kmb_tree_graph(medium_grid, [(3, 3)])
        assert g.num_nodes == 1 and g.num_edges == 0

    def test_duplicate_terminals_deduped(self, medium_grid):
        g = kmb_tree_graph(medium_grid, [(0, 0), (3, 3), (0, 0)])
        assert g.total_weight() == 6

    def test_pendant_pruning(self):
        # a terminal layout where the expanded subgraph briefly contains
        # a non-terminal leaf: verify no non-terminal leaves remain
        g = grid_graph(5, 5)
        net = Net(source=(0, 0), sinks=((4, 0), (2, 4)))
        tree = kmb(g, net).tree
        for node in tree.nodes:
            if tree.degree(node) == 1:
                assert node in {(0, 0), (4, 0), (2, 4)}


class TestZEL:
    def test_small_nets_fall_back_to_kmb(self, medium_grid):
        net = Net(source=(0, 0), sinks=((5, 5),))
        assert zel(medium_grid, net).cost == 10

    def test_spans_and_is_tree(self, medium_grid):
        net = Net(source=(1, 1), sinks=((8, 2), (3, 9), (9, 9)))
        result = zel(medium_grid, net)
        assert is_tree(result.tree)
        for t in net.terminals:
            assert result.tree.has_node(t)

    def test_no_worse_than_11_6_optimal(self):
        for seed in range(12):
            g, net = random_instance(seed + 100, num_pins=5)
            heur = zel(g, net).cost
            opt = optimal_steiner_cost(g, net.terminals)
            assert heur <= (11.0 / 6.0) * opt + 1e-9

    def test_zel_beats_or_ties_kmb_usually(self):
        # ZEL's contraction only fires on positive win, so it should not
        # lose to KMB by more than numerical noise on average
        total_kmb = total_zel = 0.0
        for seed in range(10):
            g, net = random_instance(seed + 200, num_pins=6)
            total_kmb += kmb(g, net).cost
            total_zel += zel(g, net).cost
        assert total_zel <= total_kmb + 1e-9

    def test_steiner_points_come_from_graph(self, medium_grid):
        net = Net(source=(0, 0), sinks=((9, 0), (0, 9), (9, 9), (5, 5)))
        pts = zel_steiner_points(medium_grid, net.terminals)
        for p in pts:
            assert medium_grid.has_node(p)

    def test_hub_graph(self, triangle_graph):
        net = Net(source="A", sinks=("B", "C"))
        tree = zel(triangle_graph, net)
        assert tree.cost == 6.0


class TestIGMST:
    def test_ikmb_never_worse_than_kmb(self):
        for seed in range(10):
            g, net = random_instance(seed + 300, num_pins=5)
            assert ikmb(g, net).cost <= kmb(g, net).cost + 1e-9

    def test_izel_never_worse_than_zel(self):
        for seed in range(6):
            g, net = random_instance(seed + 400, num_pins=5)
            assert izel(g, net).cost <= zel(g, net).cost + 1e-9

    def test_ikmb_finds_hub(self, triangle_graph):
        net = Net(source="A", sinks=("B", "C"))
        result = ikmb(triangle_graph, net)
        assert result.cost == 6.0
        assert result.algorithm == "IKMB"

    def test_steiner_nodes_recorded(self):
        # cross instance: 4 corners of a plus-shape; center is the only
        # profitable Steiner point
        g = Graph()
        for arm in ("N", "S", "E", "W"):
            g.add_edge("center", arm, 1.0)
        g.add_edge("N", "E", 2.0)
        g.add_edge("E", "S", 2.0)
        g.add_edge("S", "W", 2.0)
        g.add_edge("W", "N", 2.0)
        net = Net(source="N", sinks=("S", "E", "W"))
        result = ikmb(g, net)
        assert result.cost == 4.0
        assert "center" in result.steiner_nodes

    def test_trace_records_monotone_costs(self):
        g, net = random_instance(5, num_pins=6)
        result = ikmb(g, net, record_trace=True)
        trace = result.trace
        costs = [trace.initial_cost] + [c for _, _, c in trace.steps]
        assert all(a > b for a, b in zip(costs, costs[1:]))
        assert trace.final_cost == pytest.approx(result.cost)

    def test_batched_mode_matches_quality(self):
        for seed in range(6):
            g, net = random_instance(seed + 500, num_pins=5)
            one = ikmb(g, net).cost
            batch = ikmb(g, net, batched=True).cost
            # batched is a speed/quality tradeoff; must stay within KMB
            assert batch <= kmb(g, net).cost + 1e-9
            assert batch == pytest.approx(one, rel=0.1)

    def test_batched_rounds_are_few(self):
        # the paper observes <= 3 non-interference rounds typically
        for seed in range(5):
            g, net = random_instance(seed + 600, num_pins=6)
            result = ikmb(g, net, batched=True, record_trace=True)
            assert result.trace.rounds <= 4

    def test_explicit_candidate_list(self, triangle_graph):
        net = Net(source="A", sinks=("B", "C"))
        with_hub = igmst(triangle_graph, net, candidates=["S"])
        without = igmst(triangle_graph, net, candidates=[])
        assert with_hub.cost == 6.0
        assert without.cost >= with_hub.cost

    def test_neighborhood_strategy_valid(self):
        g, net = random_instance(9, num_pins=4)
        result = ikmb(g, net, candidates="neighborhood")
        assert is_tree(result.tree)
        assert result.cost <= kmb(g, net).cost + 1e-9

    def test_unknown_strategy_raises(self, medium_grid):
        net = Net(source=(0, 0), sinks=((5, 5),))
        with pytest.raises(GraphError):
            igmst(medium_grid, net, candidates="bogus")

    def test_max_steiner_nodes_cap(self):
        g, net = random_instance(2, num_pins=6)
        result = ikmb(g, net, max_steiner_nodes=1)
        assert len(result.steiner_nodes) <= 1


class TestExact:
    def test_matches_brute_force_on_tiny_graphs(self):
        # 3x3 grid, 3 terminals: optimal cost is easy to verify by hand
        g = grid_graph(3, 3)
        terms = [(0, 0), (2, 0), (1, 2)]
        cost = optimal_steiner_cost(g, terms)
        assert cost == 4  # meet at (1,0): 1 + 1 + 2

    def test_tree_cost_matches_reported(self):
        for seed in range(8):
            g, net = random_instance(seed + 700, num_pins=4)
            tree, cost = dreyfus_wagner(g, net.terminals)
            assert tree.total_weight() == pytest.approx(cost)
            assert is_tree(tree)

    def test_exact_lower_bounds_heuristics(self):
        for seed in range(8):
            g, net = random_instance(seed + 800, num_pins=5)
            opt = optimal_steiner_cost(g, net.terminals)
            assert kmb(g, net).cost >= opt - 1e-9
            assert zel(g, net).cost >= opt - 1e-9
            assert ikmb(g, net).cost >= opt - 1e-9

    def test_terminal_limit(self, medium_grid):
        terms = [(i, j) for i in range(4) for j in range(4)]
        with pytest.raises(GraphError):
            dreyfus_wagner(medium_grid, terms, max_terminals=10)

    def test_routing_tree_wrapper(self, medium_grid):
        net = Net(source=(0, 0), sinks=((3, 3), (0, 5)))
        result = optimal_steiner_tree(medium_grid, net)
        assert result.algorithm == "OPT"
        assert is_tree(result.tree)

    def test_two_terminals(self, medium_grid):
        assert optimal_steiner_cost(medium_grid, [(0, 0), (4, 7)]) == 11
