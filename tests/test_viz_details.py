"""Additional viz coverage: heat colors, ASCII variants, 3-D absence."""

from __future__ import annotations

import pytest

from repro.fpga import PlacedCircuit, PlacedNet, xc4000
from repro.router import RouterConfig, route_circuit
from repro.viz import render_occupancy, render_svg
from repro.viz.svg import _esc, _heat


@pytest.fixture(scope="module")
def routed():
    nets = [
        PlacedNet("a", (0, 0, 0), ((2, 2, 0),)),
        PlacedNet("b", (2, 0, 1), ((0, 2, 1),)),
    ]
    circuit = PlacedCircuit(name="viz<&>", rows=3, cols=3, nets=nets)
    arch = xc4000(3, 3, 3)
    return route_circuit(circuit, arch, RouterConfig(algorithm="kmb")), arch


class TestHeat:
    def test_cold_is_near_white(self):
        assert _heat(0.0) == "rgb(255,235,235)"

    def test_hot_is_red(self):
        assert _heat(1.0) == "rgb(255,55,55)"

    def test_clamped(self):
        assert _heat(-1.0) == _heat(0.0)
        assert _heat(2.0) == _heat(1.0)

    def test_monotone_green_channel(self):
        greens = []
        for u in (0.0, 0.25, 0.5, 0.75, 1.0):
            greens.append(int(_heat(u).split(",")[1]))
        assert all(a > b for a, b in zip(greens, greens[1:]))


class TestEscaping:
    def test_xml_escape(self):
        assert _esc("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_svg_escapes_circuit_name(self, routed):
        result, arch = routed
        svg = render_svg(result, arch)
        assert "viz<&>" not in svg
        assert "viz&lt;&amp;&gt;" in svg


class TestAsciiVariants:
    def test_star_mode(self, routed):
        result, arch = routed
        text = render_occupancy(result, arch, show_numbers=False)
        assert " * " in text or " # " in text

    def test_full_span_marker(self):
        # one net per track of the same span forces a '#'
        nets = [
            PlacedNet("a", (0, 0, 0), ((1, 0, 2),)),
        ]
        circuit = PlacedCircuit(name="full", rows=1, cols=2, nets=nets)
        arch = xc4000(1, 2, 1)
        result = route_circuit(
            circuit, arch, RouterConfig(algorithm="kmb")
        )
        text = render_occupancy(result, arch)
        assert "#" in text
