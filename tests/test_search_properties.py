"""Property-based guarantees for the goal-directed search kernels.

Two families of properties:

* **Exactness** — every kernel (A* under Manhattan or ALT bounds,
  bidirectional Dijkstra, early-exit Dijkstra) reports the plain
  Dijkstra distance for arbitrary random graphs and endpoint pairs.
* **Heuristic soundness** — the Manhattan and landmark bounds are
  admissible (``h(v) ≤ d(v, t)``) and consistent
  (``h(u) ≤ w(u, v) + h(v)``), which is the precondition the exactness
  contract rests on.

Runs under `hypothesis` when it is installed; otherwise the same
property checks execute over a vendored corpus of seeds, so the suite
needs no extra dependency to stay meaningful.
"""

from __future__ import annotations

import random

import pytest

from repro.graph import (
    LandmarkIndex,
    SEARCH_BACKENDS,
    SearchPolicy,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    grid_graph,
    lattice_scale,
    manhattan_heuristic,
    multi_target_dijkstra,
    path_cost,
    random_connected_graph,
    reconstruct_path,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

#: vendored fallback corpus: (seed, nodes, extra edges)
SEED_CASES = [
    (0, 8, 4),
    (1, 12, 10),
    (2, 16, 20),
    (3, 20, 15),
    (4, 25, 30),
    (5, 30, 45),
    (6, 18, 6),
    (7, 40, 60),
    (8, 10, 25),
    (9, 22, 11),
]


def property_case(func):
    """Run ``func(seed, n, extra)`` under hypothesis or the corpus."""
    if HAVE_HYPOTHESIS:
        return settings(max_examples=30, deadline=None)(
            given(
                seed=st.integers(min_value=0, max_value=2**20),
                n=st.integers(min_value=2, max_value=40),
                extra=st.integers(min_value=0, max_value=60),
            )(func)
        )
    return pytest.mark.parametrize("seed,n,extra", SEED_CASES)(func)


def make_graph(seed, n, extra):
    rnd = random.Random(seed)
    g = random_connected_graph(n, min(n - 1 + extra, n * (n - 1) // 2), rnd)
    nodes = sorted(g.nodes, key=repr)
    rnd2 = random.Random(seed + 1)
    u = rnd2.choice(nodes)
    v = rnd2.choice(nodes)
    return g, u, v


def make_weighted_grid(seed, n, extra):
    side = 2 + (n % 7)
    rnd = random.Random(seed)
    g = grid_graph(side, side)
    for a, b, _ in list(g.edges()):
        g.set_weight(a, b, 0.25 + 2.0 * rnd.random())
    nodes = sorted(g.nodes)
    rnd2 = random.Random(seed + extra)
    return g, rnd2.choice(nodes), rnd2.choice(nodes)


@property_case
def test_bidirectional_distance_matches_dijkstra(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    ref, _ = dijkstra(g, u)
    d, path = bidirectional_dijkstra(g, u, v)
    # exact up to the last ulp: the two searches may settle on distinct
    # equal-cost shortest paths whose float sums differ by one rounding
    assert d == pytest.approx(ref.get(v, float("inf")), rel=1e-12)
    if path is not None:
        assert path[0] == u and path[-1] == v
        # the reported distance IS the forward-order sum along the path
        assert path_cost(g, path) == d


@property_case
def test_alt_astar_distance_matches_dijkstra(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    idx = LandmarkIndex(g, k=min(3, g.num_nodes))
    ref, _ = dijkstra(g, u)
    dist, _ = astar(g, u, v, idx.heuristic(v))
    assert dist.get(v, float("inf")) == ref.get(v, float("inf"))


@property_case
def test_manhattan_astar_distance_matches_dijkstra(seed, n, extra):
    g, u, v = make_weighted_grid(seed, n, extra)
    h = manhattan_heuristic(g, v)
    assert h is not None  # weighted unit grids always admit a bound
    ref, _ = dijkstra(g, u)
    dist, _ = astar(g, u, v, h)
    assert dist.get(v, float("inf")) == ref[v]


@property_case
def test_early_exit_prefix_is_bit_identical(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    full_dist, full_pred = dijkstra(g, u)
    dist, pred = multi_target_dijkstra(g, u, [v])
    # every settled node carries the full run's distance AND pred
    for node, d in dist.items():
        assert d == full_dist[node]
        if node != u:
            assert pred[node] == full_pred[node]
    if v in full_dist:
        assert reconstruct_path(pred, u, v) == reconstruct_path(
            full_pred, u, v
        )


@property_case
def test_policy_backends_agree(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    ref, _ = dijkstra(g, u)
    expected = ref.get(v, float("inf"))
    for backend in SEARCH_BACKENDS:
        got = SearchPolicy(backend).pair_distance(g, u, v)
        # general graphs have no lattice bound, so astar/auto/bidir all
        # route through the bidirectional kernel — last-ulp tolerance
        # for ties, as above
        assert got == pytest.approx(expected, rel=1e-12)


@property_case
def test_manhattan_heuristic_admissible_and_consistent(seed, n, extra):
    g, u, v = make_weighted_grid(seed, n, extra)
    scale = lattice_scale(g)
    assert scale is not None and scale > 0
    h = manhattan_heuristic(g, v, scale=scale)
    ref, _ = dijkstra(g, v)  # undirected: d(x, v) == d(v, x)
    for node in g.nodes:
        assert h(node) <= ref.get(node, float("inf")) + 1e-9
    for a, b, w in g.edges():
        assert h(a) <= w + h(b) + 1e-9
        assert h(b) <= w + h(a) + 1e-9


@property_case
def test_landmark_heuristic_admissible_and_consistent(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    idx = LandmarkIndex(g, k=min(4, g.num_nodes))
    h = idx.heuristic(v)
    ref, _ = dijkstra(g, v)
    for node in g.nodes:
        assert h(node) <= ref.get(node, float("inf")) + 1e-9
    for a, b, w in g.edges():
        assert h(a) <= w + h(b) + 1e-9
        assert h(b) <= w + h(a) + 1e-9


@property_case
def test_trusted_scale_survives_weight_increase(seed, n, extra):
    """Congestion only multiplies weights up, so a scale bound derived
    once stays admissible after weights grow — the invariant the router
    relies on when it passes the architecture scale to the policy."""
    g, u, v = make_weighted_grid(seed, n, extra)
    scale = lattice_scale(g)
    rnd = random.Random(seed + 2)
    for a, b, w in list(g.edges()):
        g.set_weight(a, b, w * (1.0 + rnd.random()))
    h = manhattan_heuristic(g, v, scale=scale)
    ref, _ = dijkstra(g, v)
    for node in g.nodes:
        assert h(node) <= ref.get(node, float("inf")) + 1e-9
    dist, _ = astar(g, u, v, h)
    full, _ = dijkstra(g, u)
    assert dist.get(v, float("inf")) == full[v]
