"""Property-based round-trip guarantees for :mod:`repro.io`.

The durable-artifact contract: ``save → load → save`` is
*byte-identical* for both circuit and result files, and every decoded
value matches the original object exactly (node ids back to tuples,
floats preserved).  Runs under `hypothesis` when installed; otherwise
the same properties execute over a vendored corpus of seeds, matching
the pattern of ``tests/test_search_properties.py``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.fpga.netlist import PlacedCircuit, PlacedNet
from repro.io import (
    circuit_from_dict,
    circuit_to_dict,
    load_circuit,
    load_result,
    result_from_dict,
    result_to_dict,
    save_circuit,
    save_result,
)
from repro.router.result import NetRoute, RoutingResult

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

SEED_CASES = [(s,) for s in range(12)]


def property_case(func):
    """Run ``func(seed)`` under hypothesis or the vendored corpus."""
    if HAVE_HYPOTHESIS:
        return settings(max_examples=30, deadline=None)(
            given(seed=st.integers(min_value=0, max_value=2**20))(func)
        )
    return pytest.mark.parametrize("seed", [s for (s,) in SEED_CASES])(func)


def random_circuit(seed: int) -> PlacedCircuit:
    rnd = random.Random(seed)
    rows, cols = rnd.randint(2, 6), rnd.randint(2, 6)
    pins_per_block = 8
    free = [
        (x, y, p)
        for x in range(cols)
        for y in range(rows)
        for p in range(pins_per_block)
    ]
    rnd.shuffle(free)
    nets = []
    for i in range(rnd.randint(1, 6)):
        fanout = rnd.randint(1, 4)
        if len(free) < fanout + 1:
            break
        pins = [free.pop() for _ in range(fanout + 1)]
        nets.append(
            PlacedNet(
                name=f"net{i}", source=pins[0], sinks=tuple(pins[1:])
            )
        )
    return PlacedCircuit(
        name=f"rand-{seed}", rows=rows, cols=cols, nets=nets
    )


def random_result(seed: int) -> RoutingResult:
    """A synthetic result with realistic node-id shapes.

    The serializer must not care whether the routes are *routable* —
    only the shapes matter: nested-tuple node ids, float weights, and
    per-sink dicts.
    """
    rnd = random.Random(seed)
    routes = []
    for i in range(rnd.randint(1, 5)):
        source = ("P", rnd.randint(0, 5), rnd.randint(0, 5), rnd.randint(0, 7))
        sinks = tuple(
            ("P", rnd.randint(0, 5), rnd.randint(0, 5), rnd.randint(0, 7))
            for _ in range(rnd.randint(1, 3))
        )
        edges = []
        prev = source
        for _ in range(rnd.randint(1, 8)):
            node = (
                "J", rnd.randint(0, 6), rnd.randint(0, 6),
                rnd.choice("NSEW"), rnd.randint(0, 4),
            )
            edges.append((prev, node, rnd.choice([0.5, 1.0, 2.25])))
            prev = node
        routes.append(
            NetRoute(
                name=f"net{i}",
                algorithm=rnd.choice(["ikmb", "izel", "pfa", "idom"]),
                source=source,
                sinks=sinks,
                edges=edges,
                wirelength=round(rnd.uniform(1, 50), 6),
                pathlengths={
                    s: round(rnd.uniform(1, 30), 6) for s in sinks
                },
                optimal_pathlengths={
                    s: round(rnd.uniform(1, 30), 6) for s in sinks
                },
            )
        )
    return RoutingResult(
        circuit=f"rand-{seed}",
        channel_width=rnd.randint(2, 10),
        algorithm="ikmb",
        passes_used=rnd.randint(1, 20),
        routes=routes,
        failed_nets=tuple(f"lost{i}" for i in range(rnd.randint(0, 2))),
    )


@property_case
def test_circuit_roundtrip_is_exact(seed):
    circuit = random_circuit(seed)
    decoded = circuit_from_dict(circuit_to_dict(circuit))
    assert decoded.name == circuit.name
    assert (decoded.rows, decoded.cols) == (circuit.rows, circuit.cols)
    assert decoded.nets == circuit.nets


@property_case
def test_circuit_save_load_save_byte_identical(seed, tmp_path_factory):
    circuit = random_circuit(seed)
    base = tmp_path_factory.mktemp("io")
    first, second = base / "a.json", base / "b.json"
    save_circuit(circuit, str(first))
    save_circuit(load_circuit(str(first)), str(second))
    assert first.read_bytes() == second.read_bytes()


@property_case
def test_result_roundtrip_is_exact(seed):
    result = random_result(seed)
    decoded = result_from_dict(result_to_dict(result))
    assert decoded.circuit == result.circuit
    assert decoded.channel_width == result.channel_width
    assert decoded.failed_nets == result.failed_nets
    assert len(decoded.routes) == len(result.routes)
    for got, want in zip(decoded.routes, result.routes):
        assert got.source == want.source
        assert got.sinks == want.sinks
        assert got.edges == want.edges
        assert got.wirelength == want.wirelength
        assert got.pathlengths == want.pathlengths
        assert got.optimal_pathlengths == want.optimal_pathlengths


@property_case
def test_result_save_load_save_byte_identical(seed, tmp_path_factory):
    result = random_result(seed)
    base = tmp_path_factory.mktemp("io")
    first, second = base / "a.json", base / "b.json"
    save_result(result, str(first))
    save_result(load_result(str(first)), str(second))
    assert first.read_bytes() == second.read_bytes()


@property_case
def test_serialized_form_is_json_clean(seed):
    # finite floats only, and the envelope survives a JSON round trip
    doc = result_to_dict(random_result(seed))
    text = json.dumps(doc, allow_nan=False)  # raises on inf/nan
    assert json.loads(text) == doc
