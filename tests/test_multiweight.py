"""Tests for the multi-weighted graph framework ([4, 7])."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import MultiWeightGraph, grid_graph, sweep_tradeoff
from repro.net import Net
from repro.steiner import kmb


@pytest.fixture
def mwg():
    m = MultiWeightGraph(objectives=("wirelength", "congestion"))
    m.add_edge("a", "b", wirelength=1.0, congestion=5.0)
    m.add_edge("b", "c", wirelength=2.0, congestion=0.0)
    m.add_edge("a", "c", wirelength=4.0, congestion=1.0)
    return m


class TestConstruction:
    def test_objectives_required(self):
        with pytest.raises(GraphError):
            MultiWeightGraph(objectives=())

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(GraphError):
            MultiWeightGraph(objectives=("a", "a"))

    def test_unknown_objective_rejected(self, mwg):
        with pytest.raises(GraphError):
            mwg.add_edge("x", "y", jogs=1.0)

    def test_missing_components_default_zero(self):
        m = MultiWeightGraph(objectives=("w", "c"))
        m.add_edge(1, 2, w=3.0)
        assert m.weight_vector(1, 2) == {"w": 3.0, "c": 0.0}

    def test_negative_weight_rejected(self):
        m = MultiWeightGraph(objectives=("w",))
        with pytest.raises(GraphError):
            m.add_edge(1, 2, w=-1.0)

    def test_self_loop_rejected(self):
        m = MultiWeightGraph(objectives=("w",))
        with pytest.raises(GraphError):
            m.add_edge(1, 1, w=1.0)

    def test_counts(self, mwg):
        assert mwg.num_nodes == 3
        assert mwg.num_edges == 3

    def test_remove_edge(self, mwg):
        mwg.remove_edge("a", "b")
        assert mwg.num_edges == 2
        with pytest.raises(GraphError):
            mwg.weight_vector("a", "b")


class TestComponents:
    def test_set_component(self, mwg):
        mwg.set_component("a", "b", "congestion", 9.0)
        assert mwg.weight_vector("a", "b")["congestion"] == 9.0

    def test_set_component_validation(self, mwg):
        with pytest.raises(GraphError):
            mwg.set_component("a", "b", "jogs", 1.0)
        with pytest.raises(GraphError):
            mwg.set_component("a", "b", "congestion", -1.0)
        with pytest.raises(GraphError):
            mwg.set_component("x", "y", "congestion", 1.0)


class TestScalarization:
    def test_weighted_sum(self, mwg):
        g = mwg.scalarize({"wirelength": 1.0, "congestion": 2.0})
        assert g.weight("a", "b") == pytest.approx(11.0)
        assert g.weight("b", "c") == pytest.approx(2.0)

    def test_missing_coefficient_is_zero(self, mwg):
        g = mwg.scalarize({"wirelength": 1.0})
        assert g.weight("a", "b") == pytest.approx(1.0)

    def test_unknown_coefficient_rejected(self, mwg):
        with pytest.raises(GraphError):
            mwg.scalarize({"jogs": 1.0})

    def test_snapshot_semantics(self, mwg):
        g = mwg.scalarize({"wirelength": 1.0})
        mwg.set_component("a", "b", "wirelength", 99.0)
        assert g.weight("a", "b") == pytest.approx(1.0)

    def test_objective_blend_changes_shortest_route(self, mwg):
        from repro.graph import dijkstra

        wire_only = mwg.scalarize({"wirelength": 1.0})
        cong_heavy = mwg.scalarize({"wirelength": 1.0, "congestion": 10.0})
        d_wire, _ = dijkstra(wire_only, "a", targets=["c"])
        d_cong, _ = dijkstra(cong_heavy, "a", targets=["c"])
        # wirelength-only prefers a-b-c (3.0); congestion-heavy avoids
        # the congested a-b edge and takes a-c directly
        assert d_wire["c"] == pytest.approx(3.0)
        assert d_cong["c"] == pytest.approx(14.0)


class TestTreeCostAndPareto:
    def test_tree_cost(self, mwg):
        totals = mwg.tree_cost([("a", "b"), ("b", "c")])
        assert totals == {"wirelength": 3.0, "congestion": 5.0}

    def test_pareto_dominance(self, mwg):
        a = [("b", "c")]                 # (2, 0)
        b = [("a", "c")]                 # (4, 1)
        assert mwg.pareto_compare(a, b) == -1
        assert mwg.pareto_compare(b, a) == 1
        assert mwg.pareto_compare(a, a) == 0

    def test_pareto_incomparable(self, mwg):
        a = [("a", "b")]                 # (1, 5)
        b = [("b", "c")]                 # (2, 0)
        assert mwg.pareto_compare(a, b) is None


class TestSweep:
    def test_tradeoff_curve_monotone(self):
        rng = random.Random(3)
        base = grid_graph(8, 8)
        mwg = MultiWeightGraph(objectives=("wirelength", "congestion"))
        for u, v, w in base.edges():
            mwg.add_edge(u, v, wirelength=w, congestion=rng.random())
        pins = rng.sample(list(base.nodes), 4)
        net = Net(source=pins[0], sinks=tuple(pins[1:]))
        curve = sweep_tradeoff(
            mwg, net, kmb, "wirelength", "congestion",
            [0.0, 0.25, 0.5, 0.75, 1.0],
        )
        wires = [x for _, x, _ in curve]
        congs = [y for _, _, y in curve]
        # as lambda shifts toward congestion, wirelength can only grow
        # and congestion can only shrink (weak monotonicity)
        assert all(a <= b + 1e-9 for a, b in zip(wires, wires[1:]))
        assert all(a >= b - 1e-9 for a, b in zip(congs, congs[1:]))

    def test_lambda_range_checked(self, mwg):
        net = Net(source="a", sinks=("c",))
        with pytest.raises(GraphError):
            sweep_tradeoff(
                mwg, net, kmb, "wirelength", "congestion", [1.5]
            )
