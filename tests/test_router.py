"""Tests for the detailed router (config, congestion, routing, width)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError, UnroutableError
from repro.fpga import (
    Architecture,
    PlacedCircuit,
    PlacedNet,
    RoutingResourceGraph,
    circuit_spec,
    scaled_spec,
    synthesize_circuit,
    xc4000,
)
from repro.router import (
    ALGORITHMS,
    CongestionModel,
    FPGARouter,
    RouterConfig,
    estimate_lower_bound,
    minimum_channel_width,
    route_circuit,
)


@pytest.fixture(scope="module")
def small_circuit():
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=1)


def tiny_circuit():
    """Four hand-placed nets on a 3x3 array."""
    nets = [
        PlacedNet("a", (0, 0, 0), ((2, 2, 0),)),
        PlacedNet("b", (0, 2, 0), ((2, 0, 0),)),
        PlacedNet("c", (1, 1, 0), ((0, 1, 0), (2, 1, 0))),
        PlacedNet("d", (1, 0, 0), ((1, 2, 0),)),
    ]
    return PlacedCircuit(name="tiny", rows=3, cols=3, nets=nets)


class TestConfig:
    def test_defaults(self):
        cfg = RouterConfig()
        assert cfg.algorithm == "ikmb"
        assert cfg.max_passes == 20

    def test_unknown_algorithm(self):
        with pytest.raises(RoutingError):
            RouterConfig(algorithm="astar")

    def test_invalid_passes(self):
        with pytest.raises(RoutingError):
            RouterConfig(max_passes=0)

    def test_invalid_order(self):
        with pytest.raises(RoutingError):
            RouterConfig(order="random")

    def test_with_algorithm(self):
        cfg = RouterConfig().with_algorithm("pfa")
        assert cfg.algorithm == "pfa"
        assert cfg.max_passes == RouterConfig().max_passes


class TestCongestionModel:
    def test_penalty_scale(self):
        rrg = RoutingResourceGraph(
            Architecture(rows=2, cols=2, channel_width=2)
        )
        model = CongestionModel(rrg, alpha=2.0)
        assert model.penalty(0.0) == 1.0
        assert model.penalty(0.5) == 2.0

    def test_reweight_after_consumption(self):
        rrg = RoutingResourceGraph(
            Architecture(rows=2, cols=2, channel_width=2)
        )
        model = CongestionModel(rrg, alpha=2.0)
        group = ("H", 0, 0)
        keys = rrg.group_tracks(group)
        u, v = keys[0]
        rrg.graph.remove_node(u)  # consume one track's junction
        model.reweight_groups([group])
        u2, v2 = keys[1]
        assert rrg.graph.weight(u2, v2) == pytest.approx(
            rrg.base_weight(u2, v2) * 2.0
        )

    def test_alpha_zero_keeps_base(self):
        rrg = RoutingResourceGraph(
            Architecture(rows=2, cols=2, channel_width=2)
        )
        model = CongestionModel(rrg, alpha=0.0)
        group = ("H", 0, 0)
        u, v = rrg.group_tracks(group)[0]
        rrg.graph.remove_edge(u, v)
        model.reweight_groups([group])
        u2, v2 = rrg.group_tracks(group)[1]
        assert rrg.graph.weight(u2, v2) == rrg.base_weight(u2, v2)


class TestRouting:
    def test_tiny_circuit_routes(self):
        circuit = tiny_circuit()
        arch = xc4000(3, 3, 4)
        result = route_circuit(circuit, arch, RouterConfig(algorithm="kmb"))
        assert result.complete
        assert result.num_routed == 4
        for route in result.routes:
            assert route.wirelength > 0
            assert route.max_pathlength > 0

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_all_algorithms_route_tiny(self, algo):
        circuit = tiny_circuit()
        arch = xc4000(3, 3, 6)
        result = route_circuit(
            circuit, arch, RouterConfig(algorithm=algo)
        )
        assert result.complete
        assert result.algorithm == algo

    def test_unroutable_at_width_one(self, small_circuit):
        arch = xc4000(small_circuit.rows, small_circuit.cols, 1)
        with pytest.raises(UnroutableError) as exc:
            route_circuit(
                small_circuit, arch,
                RouterConfig(algorithm="kmb", max_passes=3),
            )
        assert exc.value.channel_width == 1
        assert exc.value.failed_nets

    def test_routes_are_disjoint(self, small_circuit):
        w, result = minimum_channel_width(
            small_circuit, xc4000, RouterConfig(algorithm="kmb")
        )
        # no routing-resource edge may be used by two different nets
        seen = {}
        from repro.graph import edge_key

        for route in result.routes:
            for u, v, _ in route.edges:
                key = edge_key(u, v)
                assert key not in seen, (
                    f"edge {key} shared by {seen.get(key)} and {route.name}"
                )
                seen[key] = route.name

    def test_arborescence_router_pathlengths(self, small_circuit):
        w, result = minimum_channel_width(
            small_circuit, xc4000, RouterConfig(algorithm="pfa")
        )
        # PFA routes must hit the recorded optimal pathlengths exactly
        # (both measured on the same congested graph state)
        for route in result.routes:
            for sink, opt in route.optimal_pathlengths.items():
                assert route.pathlengths[sink] <= opt + 1e-6

    def test_steiner_vs_two_pin_wirelength(self, small_circuit):
        width = 14  # generous width: both algorithms route in one pass
        arch = xc4000(small_circuit.rows, small_circuit.cols, width)
        steiner = route_circuit(
            small_circuit, arch, RouterConfig(algorithm="kmb")
        )
        two_pin = route_circuit(
            small_circuit, arch, RouterConfig(algorithm="two_pin")
        )
        assert steiner.total_wirelength < two_pin.total_wirelength

    def test_input_order_preserved(self):
        circuit = tiny_circuit()
        arch = xc4000(3, 3, 6)
        result = route_circuit(
            circuit, arch, RouterConfig(algorithm="kmb", order="input")
        )
        assert [r.name for r in result.routes] == ["a", "b", "c", "d"]

    def test_summary_fields(self, small_circuit):
        arch = xc4000(small_circuit.rows, small_circuit.cols, 10)
        result = route_circuit(
            small_circuit, arch, RouterConfig(algorithm="kmb")
        )
        s = result.summary()
        assert s["routed"] == small_circuit.num_nets
        assert s["failed"] == 0
        assert s["W"] == 10


class TestChannelWidthSearch:
    def test_lower_bound_positive(self, small_circuit):
        assert estimate_lower_bound(small_circuit) >= 1

    def test_minimum_is_minimal(self, small_circuit):
        cfg = RouterConfig(algorithm="kmb")
        w, result = minimum_channel_width(small_circuit, xc4000, cfg)
        assert result.complete
        assert result.channel_width == w
        # one width below must fail (when above the search floor)
        if w > 1:
            arch = xc4000(small_circuit.rows, small_circuit.cols, w - 1)
            with pytest.raises(UnroutableError):
                FPGARouter(arch, cfg).route(small_circuit)

    def test_w_max_exhaustion(self, small_circuit):
        with pytest.raises(RoutingError):
            minimum_channel_width(
                small_circuit, xc4000,
                RouterConfig(algorithm="kmb", max_passes=1),
                w_start=1, w_max=1,
            )


class TestNetRoute:
    def test_route_tree_reconstruction(self, small_circuit):
        arch = xc4000(small_circuit.rows, small_circuit.cols, 10)
        result = route_circuit(
            small_circuit, arch, RouterConfig(algorithm="kmb")
        )
        route = result.routes[0]
        tree = route.tree()
        assert tree.total_weight() == pytest.approx(route.wirelength)

    def test_route_by_name(self, small_circuit):
        arch = xc4000(small_circuit.rows, small_circuit.cols, 10)
        result = route_circuit(
            small_circuit, arch, RouterConfig(algorithm="kmb")
        )
        name = result.routes[3].name
        assert result.route_by_name(name).name == name
        with pytest.raises(KeyError):
            result.route_by_name("ghost")

    def test_pathlength_stretch(self, small_circuit):
        arch = xc4000(small_circuit.rows, small_circuit.cols, 10)
        result = route_circuit(
            small_circuit, arch, RouterConfig(algorithm="djka")
        )
        assert result.mean_pathlength_stretch() <= 1.0 + 1e-6
