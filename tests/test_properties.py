"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic properties every component must satisfy on
*arbitrary* inputs: metric properties of shortest paths, tree-ness and
spanning of every heuristic's output, the GSA pathlength constraint,
bound relationships between heuristics and exact optima, and the
dominance relation's defining equalities.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arborescence import (
    DominanceOracle,
    djka,
    dom,
    idom,
    optimal_arborescence_cost,
    pfa,
)
from repro.graph import (
    Graph,
    ShortestPathCache,
    dijkstra,
    grid_graph,
    is_tree,
    prim_mst,
    random_connected_graph,
)
from repro.net import Net
from repro.steiner import (
    ikmb,
    kmb,
    optimal_steiner_cost,
    zel,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_graph_and_net(draw, max_nodes=24, max_pins=5):
    """A connected random weighted graph plus a net within it."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    m = min(n - 1 + extra, n * (n - 1) // 2)
    g = random_connected_graph(n, m, rng)
    pins = draw(
        st.integers(min_value=2, max_value=min(max_pins, n))
    )
    terminals = rng.sample(range(n), pins)
    return g, Net(source=terminals[0], sinks=tuple(terminals[1:]))


@st.composite
def perturbed_grid_and_net(draw, size=6, max_pins=4):
    """A weight-perturbed grid graph plus a net (tie-free instances)."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    g = grid_graph(size, size)
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0 + rng.random())
    pins = draw(st.integers(min_value=2, max_value=max_pins))
    terminals = rng.sample(list(g.nodes), pins)
    return g, Net(source=terminals[0], sinks=tuple(terminals[1:]))


class TestShortestPathProperties:
    @SETTINGS
    @given(weighted_graph_and_net())
    def test_triangle_inequality(self, gn):
        g, net = gn
        cache = ShortestPathCache(g)
        a, b = net.source, net.sinks[0]
        for c in list(g.nodes)[:6]:
            dab = cache.dist(a, b)
            dac = cache.dist(a, c)
            dcb = cache.dist(c, b)
            assert dab <= dac + dcb + 1e-9

    @SETTINGS
    @given(weighted_graph_and_net())
    def test_symmetry(self, gn):
        g, net = gn
        cache = ShortestPathCache(g)
        assert cache.dist(net.source, net.sinks[0]) == pytest.approx(
            cache.dist(net.sinks[0], net.source)
        )

    @SETTINGS
    @given(weighted_graph_and_net())
    def test_path_cost_equals_distance(self, gn):
        g, net = gn
        cache = ShortestPathCache(g)
        path = cache.path(net.source, net.sinks[0])
        cost = sum(g.weight(u, v) for u, v in zip(path, path[1:]))
        assert cost == pytest.approx(cache.dist(net.source, net.sinks[0]))


class TestMSTProperties:
    @SETTINGS
    @given(weighted_graph_and_net())
    def test_mst_is_spanning_tree(self, gn):
        g, _ = gn
        edges, cost = prim_mst(g)
        assert len(edges) == g.num_nodes - 1
        t = Graph()
        for u, v, w in edges:
            t.add_edge(u, v, w)
        for node in g.nodes:
            t.add_node(node)
        assert is_tree(t)

    @SETTINGS
    @given(weighted_graph_and_net())
    def test_mst_lower_bounds_no_edge_removal(self, gn):
        # removing any MST edge and reconnecting costs at least as much
        g, _ = gn
        edges, cost = prim_mst(g)
        assert cost <= g.total_weight() + 1e-9


class TestSteinerProperties:
    @SETTINGS
    @given(weighted_graph_and_net())
    def test_heuristics_produce_valid_steiner_trees(self, gn):
        g, net = gn
        for algo in (kmb, zel, ikmb):
            tree = algo(g, net)
            assert is_tree(tree.tree)
            for t in net.terminals:
                assert tree.tree.has_node(t)

    @SETTINGS
    @given(weighted_graph_and_net(max_nodes=16, max_pins=4))
    def test_heuristics_respect_bounds(self, gn):
        g, net = gn
        opt = optimal_steiner_cost(g, net.terminals)
        assert kmb(g, net).cost <= 2.0 * opt + 1e-6
        assert zel(g, net).cost <= (11.0 / 6.0) * opt + 1e-6
        assert ikmb(g, net).cost <= 2.0 * opt + 1e-6
        for algo in (kmb, zel, ikmb):
            assert algo(g, net).cost >= opt - 1e-6

    @SETTINGS
    @given(weighted_graph_and_net())
    def test_iteration_never_hurts(self, gn):
        g, net = gn
        cache = ShortestPathCache(g)
        assert ikmb(g, net, cache=cache).cost <= (
            kmb(g, net, cache).cost + 1e-9
        )

    @SETTINGS
    @given(weighted_graph_and_net())
    def test_two_pin_equals_shortest_path(self, gn):
        g, net = gn
        if len(net.sinks) != 1:
            return
        dist, _ = dijkstra(g, net.source)
        for algo in (kmb, zel, ikmb):
            assert algo(g, net).cost == pytest.approx(
                dist[net.sinks[0]]
            )


class TestArborescenceProperties:
    @SETTINGS
    @given(weighted_graph_and_net())
    def test_shortest_path_property(self, gn):
        g, net = gn
        dist, _ = dijkstra(g, net.source)
        for algo in (djka, dom, pfa, idom):
            tree = algo(g, net)
            assert is_tree(tree.tree)
            for sink in net.sinks:
                assert tree.pathlength(sink) == pytest.approx(dist[sink])

    @SETTINGS
    @given(weighted_graph_and_net(max_nodes=16, max_pins=4))
    def test_gsa_cost_ordering(self, gn):
        g, net = gn
        opt_gsa = optimal_arborescence_cost(g, net)
        opt_gmst = optimal_steiner_cost(g, net.terminals)
        # GMST optimum <= GSA optimum <= every GSA heuristic
        assert opt_gmst <= opt_gsa + 1e-6
        for algo in (djka, dom, pfa, idom):
            assert algo(g, net).cost >= opt_gsa - 1e-6

    @SETTINGS
    @given(weighted_graph_and_net())
    def test_idom_no_worse_than_dom(self, gn):
        g, net = gn
        cache = ShortestPathCache(g)
        assert idom(g, net, cache=cache).cost <= (
            dom(g, net, cache).cost + 1e-9
        )


class TestDominanceProperties:
    @SETTINGS
    @given(perturbed_grid_and_net())
    def test_dominance_definition(self, gn):
        g, net = gn
        oracle = DominanceOracle(g, net.source)
        cache = oracle.cache
        nodes = list(g.nodes)[:8]
        for p in nodes:
            for s in nodes:
                claimed = oracle.dominates(p, s)
                d0p = cache.dist(net.source, p)
                d0s = cache.dist(net.source, s)
                dsp = cache.dist(s, p)
                actual = abs(d0p - (d0s + dsp)) <= 1e-9 * max(1.0, d0p)
                assert claimed == actual

    @SETTINGS
    @given(perturbed_grid_and_net())
    def test_maxdom_is_dominated_by_both(self, gn):
        g, net = gn
        if len(net.sinks) < 2:
            return
        oracle = DominanceOracle(g, net.source)
        p, q = net.sinks[0], net.sinks[1]
        m, d = oracle.maxdom(p, q)
        assert oracle.dominates(p, m)
        assert oracle.dominates(q, m)
        assert d == pytest.approx(oracle.source_dist(m))
