"""Smoke tests: the fast example scripts must run end to end.

The heavier examples (full router flows) are exercised by the benchmark
harness; here we execute the quick ones as real scripts so documentation
drift (renamed APIs, changed signatures) fails CI immediately.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "worst_case_gallery.py",
    "technology_sensitive_routing.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    script = EXAMPLES / name
    assert script.exists(), f"{name} missing"
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-1500:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_shows_all_algorithms():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    for algo in ("KMB", "IKMB", "DJKA", "PFA", "IDOM"):
        assert algo in proc.stdout


def test_all_examples_present():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    expected = {
        "quickstart.py",
        "route_fpga_circuit.py",
        "critical_net_tradeoffs.py",
        "worst_case_gallery.py",
        "iterated_steiner_trace.py",
        "technology_sensitive_routing.py",
        "three_d_fpga.py",
    }
    assert expected <= names
