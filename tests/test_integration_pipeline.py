"""End-to-end integration tests: the full §5 pipeline in one pass.

Each test exercises an entire user workflow across module boundaries —
synthesize → route → measure → render → serialize — asserting the
cross-module invariants that unit tests cannot see.
"""

from __future__ import annotations

import pytest

from repro.analysis import RCParameters, routing_tree_delay
from repro.fpga import (
    circuit_spec,
    scaled_spec,
    synthesize_circuit,
    xc3000,
    xc4000,
)
from repro.graph import edge_key
from repro.io import result_from_dict, result_to_dict
from repro.router import (
    RouterConfig,
    minimum_channel_width,
    route_circuit,
)
from repro.viz import channel_occupancy, render_occupancy, render_svg


@pytest.fixture(scope="module")
def pipeline():
    """Synthesize + route one circuit once for the whole module."""
    spec = scaled_spec(circuit_spec("9symml"), 0.25)
    circuit = synthesize_circuit(spec, seed=11)
    width, result = minimum_channel_width(
        circuit, xc4000, RouterConfig(algorithm="ikmb")
    )
    arch = xc4000(circuit.rows, circuit.cols, width)
    return circuit, arch, width, result


class TestFullPipeline:
    def test_every_net_routed_once(self, pipeline):
        circuit, _, _, result = pipeline
        routed = {r.name for r in result.routes}
        assert routed == {n.name for n in circuit.nets}

    def test_wirelength_consistency_across_layers(self, pipeline):
        circuit, arch, _, result = pipeline
        # per-route wirelength == recomputed tree weight == edge sums
        for route in result.routes:
            tree = route.tree()
            assert tree.total_weight() == pytest.approx(route.wirelength)
            assert sum(w for _, _, w in route.edges) == pytest.approx(
                route.wirelength
            )

    def test_occupancy_consistent_with_routes(self, pipeline):
        circuit, arch, width, result = pipeline
        counts = channel_occupancy(result, arch)
        # total track-consumptions equals total segment edges used
        from repro.fpga import RoutingResourceGraph

        rrg = RoutingResourceGraph(arch)
        segments_used = sum(
            1
            for route in result.routes
            for u, v, _ in route.edges
            if rrg.segment_info(u, v) is not None
        )
        assert sum(counts.values()) == segments_used

    def test_render_and_serialize_agree(self, pipeline):
        circuit, arch, _, result = pipeline
        restored = result_from_dict(result_to_dict(result))
        assert render_occupancy(result, arch) == render_occupancy(
            restored, arch
        )
        assert render_svg(result, arch) == render_svg(restored, arch)

    def test_delay_evaluation_over_routed_trees(self, pipeline):
        circuit, arch, _, result = pipeline
        from repro.net import Net
        from repro.steiner.tree import RoutingTree

        for route in result.routes[:5]:
            net = Net(source=route.source, sinks=route.sinks)
            rt = RoutingTree(net=net, tree=route.tree())
            delay = routing_tree_delay(rt, RCParameters())
            assert delay > 0

    def test_xc3000_pipeline_also_works(self):
        spec = scaled_spec(circuit_spec("busc"), 0.12)
        circuit = synthesize_circuit(spec, seed=2)
        width, result = minimum_channel_width(
            circuit, xc3000, RouterConfig(algorithm="kmb")
        )
        assert result.complete
        # xc3000 uses Fc = ceil(0.6 W): the arch must reflect it
        arch = xc3000(circuit.rows, circuit.cols, width)
        assert arch.fc <= width
        assert arch.fs == 6


class TestCrossAlgorithmInvariants:
    def test_all_tree_algorithms_share_resource_accounting(self, pipeline):
        circuit, _, width, _ = pipeline
        # arborescence algorithms may need more width than IKMB's
        # minimum (Table 4); give everyone slack for this invariant test
        arch = xc4000(circuit.rows, circuit.cols, width + 3)
        for algo in ("kmb", "pfa", "idom"):
            res = route_circuit(
                circuit, arch, RouterConfig(algorithm=algo)
            )
            seen = {}
            for route in res.routes:
                for u, v, _ in route.edges:
                    key = edge_key(u, v)
                    assert key not in seen
                    seen[key] = route.name

    def test_arborescence_router_never_longer_paths(self, pipeline):
        """PFA routes must satisfy their per-net recorded optima; the
        steiner router generally does not — both on the same device."""
        circuit, _, width, _ = pipeline
        arch = xc4000(circuit.rows, circuit.cols, width + 3)
        pfa_res = route_circuit(
            circuit, arch, RouterConfig(algorithm="pfa")
        )
        violations = 0
        for route in pfa_res.routes:
            for sink, opt in route.optimal_pathlengths.items():
                if route.pathlengths[sink] > opt + 1e-6:
                    violations += 1
        assert violations == 0
