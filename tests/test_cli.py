"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCircuits:
    def test_lists_all(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        for name in ("busc", "z03", "alu4", "alu2"):
            assert name in out


class TestNet:
    def test_runs_all_algorithms(self, capsys):
        assert main(["net", "--grid", "10", "--pins", "4",
                     "--congestion", "3"]) == 0
        out = capsys.readouterr().out
        for algo in ("KMB", "IZEL", "DJKA", "IDOM"):
            assert algo in out


class TestTable1:
    def test_small_run(self, capsys):
        assert main(
            ["table1", "--trials", "1", "--grid", "8", "--no-published"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "IDOM" in out


class TestWidth:
    def test_compare(self, capsys):
        assert main(
            ["width", "term1", "--fraction", "0.15",
             "--algorithms", "kmb", "two_pin"]
        ) == 0
        out = capsys.readouterr().out
        assert "kmb" in out and "two_pin" in out

    def test_unknown_circuit(self, capsys):
        assert main(["width", "nosuch"]) == 1
        assert "unknown circuit" in capsys.readouterr().err


class TestRoute:
    def test_route_with_map_and_svg(self, capsys, tmp_path):
        svg = tmp_path / "out.svg"
        assert main(
            ["route", "term1", "--fraction", "0.15",
             "--algorithm", "kmb", "--map", "--svg", str(svg)]
        ) == 0
        out = capsys.readouterr().out
        assert "complete routing at W=" in out
        assert "legend" in out
        assert svg.stat().st_size > 500

    def test_bad_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["route", "term1", "--algorithm", "bogus"])
