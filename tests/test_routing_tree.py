"""Tests for the RoutingTree result type."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import Graph, grid_graph
from repro.net import Net
from repro.steiner import RoutingTree, tree_from_edges


@pytest.fixture
def simple_tree():
    #       a --1-- s --2-- b
    #               |
    #               3
    #               |
    #               c
    g = Graph()
    g.add_edge("a", "s", 1.0)
    g.add_edge("s", "b", 2.0)
    g.add_edge("s", "c", 3.0)
    net = Net(source="a", sinks=("b", "c"))
    return RoutingTree(net=net, tree=g, algorithm="X")


class TestMetrics:
    def test_cost(self, simple_tree):
        assert simple_tree.cost == 6.0

    def test_pathlengths(self, simple_tree):
        assert simple_tree.pathlength("b") == 3.0
        assert simple_tree.pathlength("c") == 4.0

    def test_max_and_total_pathlength(self, simple_tree):
        assert simple_tree.max_pathlength == 4.0
        assert simple_tree.total_pathlength == 7.0

    def test_path_to(self, simple_tree):
        assert simple_tree.path_to("c") == ["a", "s", "c"]

    def test_pathlength_unreachable_raises(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_node("c")
        tree = RoutingTree(
            net=Net(source="a", sinks=("b",)), tree=g
        )
        with pytest.raises(GraphError):
            tree.pathlength("c")


class TestValidation:
    def test_validate_passes(self, simple_tree):
        assert simple_tree.validate() is simple_tree

    def test_validate_against_host(self, medium_grid):
        net = Net(source=(0, 0), sinks=((0, 2),))
        tree = medium_grid.edge_subgraph(
            [((0, 0), (0, 1)), ((0, 1), (0, 2))]
        )
        RoutingTree(net=net, tree=tree).validate(host=medium_grid)

    def test_validate_rejects_cycles(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(3, 1, 1.0)
        tree = RoutingTree(net=Net(source=1, sinks=(2,)), tree=g)
        with pytest.raises(GraphError):
            tree.validate()


class TestArborescenceCheck:
    def test_true_for_shortest_paths(self, medium_grid):
        net = Net(source=(0, 0), sinks=((0, 3),))
        tree = medium_grid.edge_subgraph(
            [((0, i), (0, i + 1)) for i in range(3)]
        )
        rt = RoutingTree(net=net, tree=tree)
        assert rt.is_arborescence(medium_grid)

    def test_false_for_detour(self, medium_grid):
        net = Net(source=(0, 0), sinks=((0, 1),))
        # route the long way around a 2x2 block
        tree = medium_grid.edge_subgraph(
            [((0, 0), (1, 0)), ((1, 0), (1, 1)), ((1, 1), (0, 1))]
        )
        rt = RoutingTree(net=net, tree=tree)
        assert not rt.is_arborescence(medium_grid)


class TestFromEdges:
    def test_builds_and_validates(self, medium_grid):
        net = Net(source=(0, 0), sinks=((2, 0),))
        rt = tree_from_edges(
            medium_grid,
            [((0, 0), (1, 0), 1.0), ((1, 0), (2, 0), 1.0)],
            net,
            algorithm="manual",
        )
        assert rt.cost == 2.0
        assert rt.algorithm == "manual"

    def test_rejects_disconnected(self, medium_grid):
        net = Net(source=(0, 0), sinks=((5, 5),))
        with pytest.raises(GraphError):
            tree_from_edges(
                medium_grid, [((0, 0), (1, 0), 1.0)], net
            )

    def test_steiner_nodes_carried(self, medium_grid):
        net = Net(source=(0, 0), sinks=((2, 0),))
        rt = tree_from_edges(
            medium_grid,
            [((0, 0), (1, 0), 1.0), ((1, 0), (2, 0), 1.0)],
            net,
            steiner_nodes=((1, 0),),
        )
        assert rt.steiner_nodes == ((1, 0),)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.errors import (
            ArchitectureError,
            DisconnectedError,
            GraphError,
            NetError,
            ReproError,
            RoutingError,
            UnroutableError,
        )

        for err in (
            GraphError,
            DisconnectedError,
            NetError,
            ArchitectureError,
            RoutingError,
            UnroutableError,
        ):
            assert issubclass(err, ReproError)

    def test_unroutable_payload(self):
        from repro.errors import UnroutableError

        exc = UnroutableError(5, 20, ["a", "b"])
        assert exc.channel_width == 5
        assert exc.passes == 20
        assert exc.failed_nets == ("a", "b")
        assert "width 5" in str(exc)

    def test_disconnected_payload(self):
        from repro.errors import DisconnectedError

        exc = DisconnectedError("x", "y")
        assert exc.source == "x" and exc.target == "y"
