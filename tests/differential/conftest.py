"""Fixtures for the search-backend differential harness.

The harness replays the same routing workload under every
``RouterConfig.search`` backend and asserts the results are
bit-identical to the plain-Dijkstra reference — same trees, same
wirelengths, same pass counts, same channel widths.  The fixture
circuits are deliberately tiny (3×3 / 4×4 arrays) so the full
``algorithms × backends × engines`` matrix stays fast; the point is
coverage of every code path, not routing pressure.
"""

from __future__ import annotations

import pytest

from repro.engine import RoutingSession
from repro.fpga import CircuitSpec, synthesize_circuit, xc3000, xc4000
from repro.graph.core import edge_key
from repro.router import RouterConfig

#: enough tracks that the tiny fixtures route in one or two passes
TINY_XC3000_WIDTH = 6
TINY_XC4000_WIDTH = 6
MINI_WIDTH = 5

TINY_XC3000_SPEC = CircuitSpec(
    name="diff-tiny3k",
    family="xc3000",
    cols=4,
    rows=4,
    nets_2_3=8,
    nets_4_10=3,
    nets_over_10=1,
    published={},
)

TINY_XC4000_SPEC = CircuitSpec(
    name="diff-tiny4k",
    family="xc4000",
    cols=4,
    rows=4,
    nets_2_3=8,
    nets_4_10=3,
    nets_over_10=1,
    published={},
)

#: even smaller: IZEL's meeting-node scan is cubic in practice
MINI_SPEC = CircuitSpec(
    name="diff-mini",
    family="xc3000",
    cols=3,
    rows=3,
    nets_2_3=5,
    nets_4_10=1,
    nets_over_10=0,
    published={},
)


@pytest.fixture(scope="session")
def tiny_xc3000():
    circuit = synthesize_circuit(TINY_XC3000_SPEC, seed=3)
    arch = xc3000(circuit.rows, circuit.cols, TINY_XC3000_WIDTH)
    return arch, circuit


@pytest.fixture(scope="session")
def tiny_xc4000():
    circuit = synthesize_circuit(TINY_XC4000_SPEC, seed=5)
    arch = xc4000(circuit.rows, circuit.cols, TINY_XC4000_WIDTH)
    return arch, circuit


@pytest.fixture(scope="session")
def mini_xc3000():
    circuit = synthesize_circuit(MINI_SPEC, seed=3)
    arch = xc3000(circuit.rows, circuit.cols, MINI_WIDTH)
    return arch, circuit


def route_once(arch, circuit, *, backend, algorithm="ikmb",
               engine="serial", max_passes=6, max_workers=None,
               **cfg_kwargs):
    """One full routing session under the given search backend."""
    cfg = RouterConfig(
        algorithm=algorithm,
        search=backend,
        max_passes=max_passes,
        **cfg_kwargs,
    )
    session = RoutingSession(arch, cfg, engine=engine,
                             max_workers=max_workers)
    return session.route(circuit)


def result_signature(result):
    """A stable, exact, comparable image of a routing result.

    Edges are canonicalized with :func:`edge_key` and sorted by repr;
    floats are kept at full precision — the differential contract is
    bit-identity, not approximate agreement.
    """
    routes = {}
    for r in result.routes:
        edges = sorted(
            (repr(edge_key(u, v)), w) for u, v, w in r.edges
        )
        routes[r.name] = {
            "algorithm": r.algorithm,
            "wirelength": r.wirelength,
            "edges": edges,
        }
    return {
        "passes": result.passes_used,
        "wirelength": result.total_wirelength,
        "routes": routes,
    }
