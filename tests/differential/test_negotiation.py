"""Differential certification of PathFinder negotiated routing.

Negotiation has no bit-identity oracle: unlike the arborescence modes
there is no independent definition of "the" correct result to replay
against, so this suite certifies every converged result through the
independent checker (``verify_result(level="full")``) plus the
PathFinder-specific invariant the checker's occupancy layer encodes —
**zero overuse**: no junction is claimed by two nets.  On top of that
it pins the things that *are* deterministic:

* the serial schedule is a pure function of (circuit, arch, config) —
  identical across repeats and bit-identical under checkpoint/resume
  interrupted mid-negotiation;
* golden JSON fixtures freeze iteration counts, converged channel
  width, wirelength and critical-path delay for seeded XC3000/XC4000
  circuits (regenerate deliberately with ``--update-goldens``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import max_sink_delay
from repro.engine import RoutingSession
from repro.engine.checkpoint import load_checkpoint
from repro.fpga import xc3000, xc4000
from repro.router import RouterConfig, minimum_channel_width
from repro.validate import verify_result

from .conftest import result_signature

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: congested enough that negotiation genuinely iterates; the xc4000
#: fixture gets one extra track — its Fs=3 switchboxes make W=3
#: borderline-infeasible and the point here is certification coverage,
#: not routing pressure
NEGO_XC3000_WIDTH = 3
NEGO_XC4000_WIDTH = 4

ENGINES = ("serial", "thread", "process")
GRAPH_BACKENDS = ("dict", "flat")
SEARCH_BACKENDS = ("dijkstra", "astar", "bidir")


def nego_config(**kwargs):
    kwargs.setdefault("mode", "negotiate")
    return RouterConfig(**kwargs)


def route_negotiated(arch, circuit, *, engine="serial", max_workers=None,
                     **cfg_kwargs):
    cfg = nego_config(**cfg_kwargs)
    with RoutingSession(arch, cfg, engine=engine,
                        max_workers=max_workers) as session:
        return session.route(circuit), cfg


def junction_usage(result):
    """junction node -> set of nets whose tree touches it."""
    usage = {}
    for route in result.routes:
        nodes = {route.source}
        for u, v, _ in route.edges:
            nodes.add(u)
            nodes.add(v)
        for n in nodes:
            if isinstance(n, tuple) and len(n) == 5 and n[0] == "J":
                usage.setdefault(n, set()).add(route.name)
    return usage


def assert_certified(result, circuit, arch, cfg):
    """The two negotiation acceptance gates: checker + zero overuse."""
    report = verify_result(result, circuit, arch, cfg, level="full")
    assert report.ok, [d.render() for d in report.errors]
    overused = {
        n: sorted(nets)
        for n, nets in junction_usage(result).items()
        if len(nets) > 1
    }
    assert not overused, f"overused junctions at convergence: {overused}"
    assert result.complete
    assert result.algorithm == "negotiate"
    for route in result.routes:
        assert route.algorithm == "negotiate"


# ----------------------------------------------------------------------
# the execution matrix: every engine x graph backend x search backend
# ----------------------------------------------------------------------
class TestNegotiationMatrix:
    @pytest.mark.parametrize("search", SEARCH_BACKENDS)
    @pytest.mark.parametrize("graph_backend", GRAPH_BACKENDS)
    def test_serial_xc3000(self, tiny_xc3000, graph_backend, search):
        _, circuit = tiny_xc3000
        arch = xc3000(circuit.rows, circuit.cols, NEGO_XC3000_WIDTH)
        result, cfg = route_negotiated(
            arch, circuit, graph_backend=graph_backend, search=search
        )
        assert_certified(result, circuit, arch, cfg)

    @pytest.mark.parametrize("search", SEARCH_BACKENDS)
    @pytest.mark.parametrize("graph_backend", GRAPH_BACKENDS)
    def test_serial_xc4000(self, tiny_xc4000, graph_backend, search):
        _, circuit = tiny_xc4000
        arch = xc4000(circuit.rows, circuit.cols, NEGO_XC4000_WIDTH)
        result, cfg = route_negotiated(
            arch, circuit, graph_backend=graph_backend, search=search
        )
        assert_certified(result, circuit, arch, cfg)

    @pytest.mark.parametrize("search", SEARCH_BACKENDS)
    @pytest.mark.parametrize("graph_backend", GRAPH_BACKENDS)
    @pytest.mark.parametrize("engine", ("thread", "process"))
    def test_parallel_engines(self, mini_xc3000, engine, graph_backend,
                              search):
        """Chunked parallel negotiation converges to certified routings.

        Parallel chunks reroute against frozen cost snapshots, so the
        result may differ from serial — validity, not bit-identity, is
        the parallel contract (the mini fixture keeps the full matrix
        affordable).
        """
        _, circuit = mini_xc3000
        arch = xc3000(circuit.rows, circuit.cols, NEGO_XC3000_WIDTH)
        result, cfg = route_negotiated(
            arch, circuit, engine=engine, max_workers=2,
            graph_backend=graph_backend, search=search,
        )
        assert_certified(result, circuit, arch, cfg)

    def test_timing_driven_converges_and_certifies(self, tiny_xc3000):
        _, circuit = tiny_xc3000
        arch = xc3000(circuit.rows, circuit.cols, NEGO_XC3000_WIDTH)
        result, cfg = route_negotiated(arch, circuit, timing=True)
        assert_certified(result, circuit, arch, cfg)

    def test_dict_and_flat_kernels_bit_identical(self, tiny_xc3000):
        """The CSR seam changes throughput, never results."""
        _, circuit = tiny_xc3000
        arch = xc3000(circuit.rows, circuit.cols, NEGO_XC3000_WIDTH)
        a, _ = route_negotiated(arch, circuit, graph_backend="dict")
        b, _ = route_negotiated(arch, circuit, graph_backend="flat")
        assert result_signature(a) == result_signature(b)


# ----------------------------------------------------------------------
# determinism: repeats and checkpoint/resume
# ----------------------------------------------------------------------
class TestNegotiationDeterminism:
    def test_serial_repeats_bit_identical(self, tiny_xc3000):
        _, circuit = tiny_xc3000
        arch = xc3000(circuit.rows, circuit.cols, NEGO_XC3000_WIDTH)
        a, _ = route_negotiated(arch, circuit, timing=True)
        b, _ = route_negotiated(arch, circuit, timing=True)
        assert result_signature(a) == result_signature(b)

    def test_resume_mid_negotiation_bit_identical(
        self, tiny_xc3000, tmp_path, monkeypatch
    ):
        _, circuit = tiny_xc3000
        arch = xc3000(circuit.rows, circuit.cols, NEGO_XC3000_WIDTH)
        cfg = nego_config(timing=True)

        reference = RoutingSession(arch, cfg).route(circuit)
        assert reference.passes_used > 1  # there is a "mid" to resume at

        ck = str(tmp_path / "nego.ck")
        original = RoutingSession._negotiate_route_one

        def interrupted(self, *args, **kwargs):
            if os.path.exists(ck):
                raise KeyboardInterrupt
            return original(self, *args, **kwargs)

        monkeypatch.setattr(
            RoutingSession, "_negotiate_route_one", interrupted
        )
        with pytest.raises(KeyboardInterrupt):
            RoutingSession(arch, cfg).route(circuit, checkpoint=ck)
        monkeypatch.setattr(
            RoutingSession, "_negotiate_route_one", original
        )

        state = load_checkpoint(ck)
        assert state["outcome"] == "in_progress"
        assert state["next_pass"] == 2
        assert state["negotiation"]["trees"]  # iteration 1's routing

        session = RoutingSession(arch, cfg)
        resumed = session.route(circuit, resume=ck)
        assert result_signature(resumed) == result_signature(reference)
        assert session.trace.resumed_from == {"path": ck, "next_pass": 2}
        assert len(session.trace.pass_dicts()) == reference.passes_used

    def test_paper_checkpoint_refused_by_negotiate_run(
        self, tiny_xc3000, tmp_path, monkeypatch
    ):
        """Mode is in the config fingerprint: cross-mode resume fails."""
        from repro.errors import CheckpointError
        from repro.router.router import FPGARouter

        _, circuit = tiny_xc3000
        arch = xc3000(circuit.rows, circuit.cols, NEGO_XC3000_WIDTH)
        ck = str(tmp_path / "paper.ck")
        original = FPGARouter._route_one

        def interrupted(self, *args, **kwargs):
            if os.path.exists(ck):
                raise KeyboardInterrupt
            return original(self, *args, **kwargs)

        monkeypatch.setattr(FPGARouter, "_route_one", interrupted)
        with pytest.raises((KeyboardInterrupt, Exception)):
            RoutingSession(
                arch, RouterConfig(algorithm="kmb")
            ).route(circuit, checkpoint=ck)
        monkeypatch.setattr(FPGARouter, "_route_one", original)
        if not os.path.exists(ck):
            pytest.skip("paper run finished before checkpointing")
        with pytest.raises(CheckpointError):
            RoutingSession(arch, nego_config()).route(circuit, resume=ck)


# ----------------------------------------------------------------------
# golden fixtures: iterations, width, wirelength, critical-path delay
# ----------------------------------------------------------------------
def critical_path_of(result, circuit):
    by_name = {n.name: n for n in circuit.nets}
    return max(
        max_sink_delay(r.tree(), by_name[r.name].to_graph_net())
        for r in result.routes
    )


NEGO_GOLDEN_CASES = {
    "nego_tiny_xc3000": ("tiny_xc3000", xc3000, NEGO_XC3000_WIDTH,
                         dict()),
    "nego_tiny_xc3000_timing": ("tiny_xc3000", xc3000, NEGO_XC3000_WIDTH,
                                dict(timing=True)),
    "nego_tiny_xc4000": ("tiny_xc4000", xc4000, NEGO_XC4000_WIDTH,
                         dict()),
}


class TestNegotiationGoldens:
    @pytest.mark.parametrize("golden_id", sorted(NEGO_GOLDEN_CASES))
    def test_golden(self, request, update_goldens, golden_id):
        fixture, family, width, cfg_kwargs = NEGO_GOLDEN_CASES[golden_id]
        _, circuit = request.getfixturevalue(fixture)
        arch = family(circuit.rows, circuit.cols, width)
        result, _ = route_negotiated(arch, circuit, **cfg_kwargs)
        min_w, _ = minimum_channel_width(
            circuit, family, nego_config(**cfg_kwargs)
        )
        signature = json.loads(json.dumps({
            "iterations": result.passes_used,
            "channel_width": result.channel_width,
            "minimum_channel_width": min_w,
            "total_wirelength": result.total_wirelength,
            "critical_path_delay": critical_path_of(result, circuit),
        }))
        path = os.path.join(GOLDEN_DIR, f"{golden_id}.json")
        if update_goldens:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(signature, fh, indent=2, sort_keys=True)
                fh.write("\n")
            return
        if not os.path.exists(path):
            pytest.fail(
                f"golden file {path} missing - generate it with "
                f"`pytest {__file__} --update-goldens` and commit it"
            )
        with open(path, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        assert signature == golden, (
            f"negotiated routing diverged from {path}; if intentional, "
            f"regenerate with --update-goldens and commit the diff"
        )
