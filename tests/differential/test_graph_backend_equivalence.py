"""The flat CSR graph core must be indistinguishable from dict search.

``RouterConfig.graph_backend`` promises that ``"flat"`` (and ``"auto"``
when it resolves to flat) changes *how fast* searches run, never *what*
gets routed.  This module replays the same workloads — the acceptance
algorithms (PFA / IDOM / DJKA / DOM), each execution engine, the
search-backend matrix, and the full channel-width negotiation — under
the flat backend and asserts bit-identical results against the
``"dict"`` reference: identical trees edge-for-edge, identical
wirelengths, identical pass counts and channel widths.
"""

from __future__ import annotations

import pytest

from repro.fpga import xc3000
from repro.graph import SEARCH_BACKENDS
from repro.router import RouterConfig, minimum_channel_width

from .conftest import route_once, result_signature

#: backends that must match "dict" exactly (auto must match whichever
#: way its size heuristic resolves)
FLAT_BACKENDS = ["flat", "auto"]


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("graph_backend", FLAT_BACKENDS)
    @pytest.mark.parametrize("algorithm", ["pfa", "idom", "djka", "dom"])
    def test_backend_matches_reference(
        self, tiny_xc3000, algorithm, graph_backend
    ):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       algorithm=algorithm, graph_backend="dict")
        )
        got = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       algorithm=algorithm, graph_backend=graph_backend)
        )
        assert got == ref

    def test_steiner_matches(self, tiny_xc3000):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       algorithm="ikmb", graph_backend="dict")
        )
        got = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       algorithm="ikmb", graph_backend="flat")
        )
        assert got == ref

    def test_xc4000_family_matches_reference(self, tiny_xc4000):
        arch, circuit = tiny_xc4000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       graph_backend="dict")
        )
        got = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       graph_backend="flat")
        )
        assert got == ref


class TestSearchBackendMatrix:
    """The flat kernels sit underneath every SearchPolicy backend —
    goal-directed dispatch (A*, bidirectional) must stay bit-identical
    when the policy routes it to the CSR kernels."""

    @pytest.mark.parametrize("search", SEARCH_BACKENDS)
    def test_search_times_graph_backend(self, tiny_xc3000, search):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       algorithm="pfa", graph_backend="dict")
        )
        got = result_signature(
            route_once(arch, circuit, backend=search,
                       algorithm="pfa", graph_backend="flat")
        )
        assert got == ref


class TestEngineEquivalence:
    """Flat shipping (shared CSR + per-net pin taps) must commit the
    exact trees the per-net dict snapshots produce."""

    @pytest.mark.parametrize("graph_backend", FLAT_BACKENDS)
    @pytest.mark.parametrize("engine", ["serial", "thread"])
    def test_engine_backend_matrix(self, tiny_xc3000, engine, graph_backend):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra", engine="serial",
                       graph_backend="dict")
        )
        got = result_signature(
            route_once(arch, circuit, backend="dijkstra", engine=engine,
                       graph_backend=graph_backend)
        )
        assert got == ref

    def test_process_engine_matches(self, tiny_xc3000):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra", engine="serial",
                       graph_backend="dict")
        )
        got = result_signature(
            route_once(arch, circuit, backend="dijkstra", engine="process",
                       graph_backend="flat", max_workers=2)
        )
        assert got == ref


class TestChannelWidthEquivalence:
    @pytest.mark.parametrize("algorithm", ["pfa", "djka"])
    def test_negotiated_width_identical(self, tiny_xc3000, algorithm):
        _, circuit = tiny_xc3000
        ref_cfg = RouterConfig(algorithm=algorithm, search="dijkstra",
                               graph_backend="dict", max_passes=4)
        cfg = RouterConfig(algorithm=algorithm, search="dijkstra",
                           graph_backend="flat", max_passes=4)
        w_ref, res_ref = minimum_channel_width(
            circuit, xc3000, ref_cfg, w_start=3, w_max=10
        )
        w_got, res_got = minimum_channel_width(
            circuit, xc3000, cfg, w_start=3, w_max=10
        )
        assert w_got == w_ref
        assert result_signature(res_got) == result_signature(res_ref)
