"""Every search backend must be indistinguishable from plain Dijkstra.

``RouterConfig.search`` promises that ``"astar"``, ``"bidir"`` and
``"auto"`` change *how fast* distances are computed, never *what* gets
routed.  This module replays the same workloads — each iterated
algorithm, each execution engine, and the channel-width negotiation —
under all four backends and asserts bit-identical results against the
``"dijkstra"`` reference: identical trees edge-for-edge, identical
wirelengths, identical pass counts and channel widths.
"""

from __future__ import annotations

import pytest

from repro.fpga import xc3000
from repro.graph import SEARCH_BACKENDS
from repro.router import RouterConfig, minimum_channel_width

from .conftest import route_once, result_signature

ACCEL_BACKENDS = [b for b in SEARCH_BACKENDS if b != "dijkstra"]


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("backend", ACCEL_BACKENDS)
    @pytest.mark.parametrize("algorithm", ["ikmb", "pfa", "idom"])
    def test_backend_matches_reference(
        self, tiny_xc3000, algorithm, backend
    ):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra",
                       algorithm=algorithm)
        )
        got = result_signature(
            route_once(arch, circuit, backend=backend,
                       algorithm=algorithm)
        )
        assert got == ref

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS)
    def test_izel_matches_reference(self, mini_xc3000, backend):
        arch, circuit = mini_xc3000
        kwargs = dict(algorithm="izel", steiner_candidate_depth=1,
                      max_steiner_nodes=4)
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra", **kwargs)
        )
        got = result_signature(
            route_once(arch, circuit, backend=backend, **kwargs)
        )
        assert got == ref

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS)
    def test_xc4000_family_matches_reference(self, tiny_xc4000, backend):
        arch, circuit = tiny_xc4000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra")
        )
        got = result_signature(route_once(arch, circuit, backend=backend))
        assert got == ref

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS)
    def test_congestion_free_config_matches(self, tiny_xc3000, backend):
        arch, circuit = tiny_xc3000
        kwargs = dict(congestion=False, algorithm="pfa")
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra", **kwargs)
        )
        got = result_signature(
            route_once(arch, circuit, backend=backend, **kwargs)
        )
        assert got == ref


class TestEngineEquivalence:
    """The engines share the worker/search wiring: the speculative
    parallel paths must stay deterministic under every backend."""

    @pytest.mark.parametrize("backend", SEARCH_BACKENDS)
    @pytest.mark.parametrize("engine", ["serial", "thread"])
    def test_engine_backend_matrix(self, tiny_xc3000, engine, backend):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra", engine="serial")
        )
        got = result_signature(
            route_once(arch, circuit, backend=backend, engine=engine)
        )
        assert got == ref

    @pytest.mark.parametrize("backend", ["auto"])
    def test_process_engine_matches(self, tiny_xc3000, backend):
        arch, circuit = tiny_xc3000
        ref = result_signature(
            route_once(arch, circuit, backend="dijkstra", engine="serial")
        )
        got = result_signature(
            route_once(arch, circuit, backend=backend, engine="process",
                       max_workers=2)
        )
        assert got == ref


class TestChannelWidthEquivalence:
    @pytest.mark.parametrize("backend", ACCEL_BACKENDS)
    def test_negotiated_width_identical(self, tiny_xc3000, backend):
        _, circuit = tiny_xc3000
        ref_cfg = RouterConfig(algorithm="pfa", search="dijkstra",
                               max_passes=4)
        cfg = RouterConfig(algorithm="pfa", search=backend, max_passes=4)
        w_ref, res_ref = minimum_channel_width(
            circuit, xc3000, ref_cfg, w_start=3, w_max=10
        )
        w_got, res_got = minimum_channel_width(
            circuit, xc3000, cfg, w_start=3, w_max=10
        )
        assert w_got == w_ref
        assert result_signature(res_got) == result_signature(res_ref)
