"""Golden-file regression tests for the routing pipeline.

Each golden is the full :func:`result_signature` of one fixture
circuit routed with a fixed configuration, committed as JSON.  Any
change to routing behaviour — tie-breaking, search kernels, pass
negotiation, congestion weighting — shows up as a diff against these
files instead of silently shifting results.

Regenerate deliberately with::

    pytest tests/differential/test_goldens.py --update-goldens

and commit the diff together with the change that explains it.
"""

from __future__ import annotations

import json
import os

import pytest

from .conftest import result_signature, route_once

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: golden id -> (fixture name, route_once kwargs)
GOLDEN_CASES = {
    "tiny_xc3000_ikmb": ("tiny_xc3000", dict(algorithm="ikmb")),
    "tiny_xc3000_pfa": ("tiny_xc3000", dict(algorithm="pfa")),
    "tiny_xc3000_idom": ("tiny_xc3000", dict(algorithm="idom")),
    "tiny_xc4000_ikmb": ("tiny_xc4000", dict(algorithm="ikmb")),
    "mini_xc3000_izel": (
        "mini_xc3000",
        dict(algorithm="izel", steiner_candidate_depth=1,
             max_steiner_nodes=4),
    ),
}


def golden_path(golden_id: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{golden_id}.json")


def compute_signature(request, golden_id: str):
    fixture_name, kwargs = GOLDEN_CASES[golden_id]
    arch, circuit = request.getfixturevalue(fixture_name)
    result = route_once(arch, circuit, backend="dijkstra", **kwargs)
    # JSON round-trip normalizes tuples to lists; float repr in json
    # is shortest-roundtrip, so equality stays exact
    return json.loads(json.dumps(result_signature(result)))


@pytest.mark.parametrize("golden_id", sorted(GOLDEN_CASES))
def test_golden(request, update_goldens, golden_id):
    signature = compute_signature(request, golden_id)
    path = golden_path(golden_id)
    if update_goldens:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(signature, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    if not os.path.exists(path):
        pytest.fail(
            f"golden file {path} missing - generate it with "
            f"`pytest {__file__} --update-goldens` and commit it"
        )
    with open(path, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    assert signature == golden, (
        f"routing output diverged from {path}; if the change is "
        f"intentional, regenerate with --update-goldens and commit "
        f"the diff"
    )


def test_goldens_complete():
    """Every committed golden corresponds to a live case (no orphans)."""
    if not os.path.isdir(GOLDEN_DIR):
        pytest.skip("goldens not generated yet")
    on_disk = {
        os.path.splitext(name)[0]
        for name in os.listdir(GOLDEN_DIR)
        if name.endswith(".json")
        # negotiation goldens are owned by test_negotiation.py
        and not name.startswith("nego_")
    }
    assert on_disk == set(GOLDEN_CASES)
