"""Differential tests: every search backend must route identically."""
