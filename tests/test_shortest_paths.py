"""Tests for Dijkstra and the ShortestPathCache."""

from __future__ import annotations

import random

import pytest

from repro.errors import DisconnectedError, GraphError
from repro.graph import (
    Graph,
    ShortestPathCache,
    dijkstra,
    grid_graph,
    path_cost,
    random_connected_graph,
    reconstruct_path,
    shortest_path,
)


class TestDijkstra:
    def test_distances_on_path_graph(self, path_graph):
        dist, pred = dijkstra(path_graph, "a")
        assert dist == {"a": 0, "b": 1, "c": 2, "d": 3, "e": 4}
        assert pred["e"] == "d"

    def test_grid_distances_are_rectilinear(self):
        # Figure 3(a): before routing, shortest paths = Manhattan distance
        g = grid_graph(8, 8)
        dist, _ = dijkstra(g, (0, 0))
        for (x, y), d in dist.items():
            assert d == x + y

    def test_weighted_detour(self):
        g = Graph()
        g.add_edge("s", "a", 10.0)
        g.add_edge("s", "b", 1.0)
        g.add_edge("b", "a", 2.0)
        dist, _ = dijkstra(g, "s")
        assert dist["a"] == 3.0

    def test_missing_source_raises(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(GraphError):
            dijkstra(g, 99)

    def test_unreachable_nodes_absent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        dist, _ = dijkstra(g, 1)
        assert 3 not in dist

    def test_early_exit_with_targets(self):
        g = grid_graph(30, 30)
        dist, _ = dijkstra(g, (0, 0), targets=[(1, 1)])
        assert dist[(1, 1)] == 2
        # early exit must have skipped most of the grid
        assert len(dist) < 900

    def test_targets_all_settled(self):
        g = grid_graph(10, 10)
        targets = [(9, 9), (5, 5), (0, 9)]
        dist, _ = dijkstra(g, (0, 0), targets=targets)
        for t in targets:
            assert t in dist

    def test_cutoff_limits_exploration(self):
        g = grid_graph(20, 20)
        dist, _ = dijkstra(g, (0, 0), cutoff=3.0)
        assert all(d <= 3.0 for d in dist.values())
        assert (10, 10) not in dist

    def test_zero_weight_edges(self):
        g = Graph()
        g.add_edge("s", "a", 0.0)
        g.add_edge("a", "b", 0.0)
        g.add_edge("b", "t", 1.0)
        dist, _ = dijkstra(g, "s")
        assert dist["t"] == 1.0

    def test_matches_networkx_on_random_graphs(self):
        nx = pytest.importorskip("networkx")
        rng = random.Random(42)
        for trial in range(5):
            g = random_connected_graph(40, 150, rng)
            ng = nx.Graph()
            for u, v, w in g.edges():
                ng.add_edge(u, v, weight=w)
            dist, _ = dijkstra(g, 0)
            nx_dist = nx.single_source_dijkstra_path_length(ng, 0)
            for node, d in nx_dist.items():
                assert dist[node] == pytest.approx(d)


class TestPathReconstruction:
    def test_reconstruct_trivial(self):
        assert reconstruct_path({}, "a", "a") == ["a"]

    def test_reconstruct_raises_when_unreached(self):
        with pytest.raises(DisconnectedError):
            reconstruct_path({}, "a", "b")

    def test_shortest_path_cost_consistency(self, medium_grid):
        path, cost = shortest_path(medium_grid, (0, 0), (7, 4))
        assert cost == 11
        assert path[0] == (0, 0) and path[-1] == (7, 4)
        assert path_cost(medium_grid, path) == cost

    def test_path_edges_exist(self, medium_grid):
        path, _ = shortest_path(medium_grid, (2, 3), (8, 8))
        for u, v in zip(path, path[1:]):
            assert medium_grid.has_edge(u, v)

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(DisconnectedError):
            shortest_path(g, 1, 3)


class TestCache:
    def test_dist_symmetry_via_either_endpoint(self, medium_grid):
        cache = ShortestPathCache(medium_grid)
        d1 = cache.dist((0, 0), (5, 5))
        assert d1 == 10
        # now (0,0) is cached; querying the reverse should reuse it
        assert cache.dist((5, 5), (0, 0)) == 10
        assert cache.cached_sources() == [(0, 0)]

    def test_path_without_source_sssp(self, medium_grid):
        cache = ShortestPathCache(medium_grid)
        cache.sssp((0, 0))
        # path from an uncached node to a cached one must not add an entry
        p = cache.path((5, 5), (0, 0))
        assert p[0] == (5, 5) and p[-1] == (0, 0)
        assert len(cache) == 1

    def test_invalidation_on_mutation(self, medium_grid):
        cache = ShortestPathCache(medium_grid)
        assert cache.dist((0, 0), (3, 0)) == 3
        assert len(cache) == 1
        # sever the direct corridor; distances must refresh
        medium_grid.remove_edge((1, 0), (2, 0))
        assert cache.dist((0, 0), (3, 0)) == 5
        assert len(cache) == 1  # old entry dropped, new one stored

    def test_weight_update_invalidates(self, medium_grid):
        cache = ShortestPathCache(medium_grid)
        assert cache.dist((0, 0), (1, 0)) == 1
        medium_grid.set_weight((0, 0), (1, 0), 10.0)
        assert cache.dist((0, 0), (1, 0)) == 3.0  # around the block

    def test_warm(self, small_grid):
        cache = ShortestPathCache(small_grid)
        cache.warm([(0, 0), (5, 5)])
        assert len(cache) == 2

    def test_unreachable_is_inf(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        cache = ShortestPathCache(g)
        assert cache.dist(1, 3) == float("inf")

    def test_path_raises_for_unreachable(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        cache = ShortestPathCache(g)
        with pytest.raises(DisconnectedError):
            cache.path(1, 3)
