"""Tests for MST construction (Prim, Kruskal, dense Prim)."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    UnionFind,
    dense_mst,
    kruskal_mst,
    mst_cost,
    prim_mst,
    random_connected_graph,
)


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.union(1, 2)

    def test_transitive(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)


class TestPrim:
    def test_empty(self):
        edges, cost = prim_mst(Graph())
        assert edges == [] and cost == 0.0

    def test_single_node(self):
        g = Graph()
        g.add_node("x")
        edges, cost = prim_mst(g)
        assert edges == [] and cost == 0.0

    def test_triangle(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 2.0)
        g.add_edge(1, 3, 3.0)
        edges, cost = prim_mst(g)
        assert len(edges) == 2
        assert cost == 3.0

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(GraphError):
            prim_mst(g)

    def test_within_subset(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(1, 3, 5.0)
        edges, cost = prim_mst(g, within=[1, 3])
        assert cost == 5.0  # node 2 excluded, direct edge forced

    def test_matches_kruskal(self):
        rng = random.Random(7)
        for trial in range(5):
            g = random_connected_graph(30, 90, rng)
            _, prim_cost = prim_mst(g)
            _, kruskal_cost = kruskal_mst(list(g.edges()))
            assert prim_cost == pytest.approx(kruskal_cost)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        rng = random.Random(3)
        g = random_connected_graph(25, 80, rng)
        ng = nx.Graph()
        for u, v, w in g.edges():
            ng.add_edge(u, v, weight=w)
        _, cost = prim_mst(g)
        nx_cost = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_tree(ng).edges(data=True)
        )
        assert cost == pytest.approx(nx_cost)


class TestKruskal:
    def test_basic(self):
        edges, cost = kruskal_mst([(1, 2, 1.0), (2, 3, 2.0), (1, 3, 3.0)])
        assert cost == 3.0

    def test_declared_nodes_detect_disconnection(self):
        with pytest.raises(GraphError):
            kruskal_mst([(1, 2, 1.0)], nodes=[1, 2, 3])

    def test_inferred_nodes(self):
        edges, cost = kruskal_mst([(1, 2, 2.0)])
        assert len(edges) == 1


class TestDenseMST:
    def test_empty(self):
        assert dense_mst({}) == ([], 0.0)

    def test_two_nodes(self):
        dist = {"a": {"b": 4.0}, "b": {"a": 4.0}}
        edges, cost = dense_mst(dist)
        assert cost == 4.0

    def test_matches_prim_on_closure(self):
        # metric closure of a path a-b-c with unit edges
        dist = {
            "a": {"b": 1.0, "c": 2.0},
            "b": {"a": 1.0, "c": 1.0},
            "c": {"a": 2.0, "b": 1.0},
        }
        _, cost = dense_mst(dist)
        assert cost == 2.0

    def test_disconnected_matrix_raises(self):
        dist = {"a": {"b": 1.0}, "b": {"a": 1.0}, "c": {}}
        with pytest.raises(GraphError):
            dense_mst(dist, nodes=["a", "b", "c"])

    def test_mst_cost_helper(self):
        dist = {
            "a": {"b": 1.0, "c": 5.0},
            "b": {"a": 1.0, "c": 1.0},
            "c": {"a": 5.0, "b": 1.0},
        }
        assert mst_cost(dist) == 2.0

    def test_random_agreement_with_kruskal(self):
        rng = random.Random(11)
        for trial in range(10):
            nodes = list(range(8))
            dist = {u: {} for u in nodes}
            edges = []
            for i in nodes:
                for j in nodes:
                    if i < j:
                        w = rng.uniform(1, 10)
                        dist[i][j] = w
                        dist[j][i] = w
                        edges.append((i, j, w))
            _, dcost = dense_mst(dist, nodes)
            _, kcost = kruskal_mst(edges, nodes)
            assert dcost == pytest.approx(kcost)
