"""Tests for placed circuits and the synthetic benchmark generator."""

from __future__ import annotations

import pytest

from repro.errors import NetError
from repro.fpga import (
    PlacedCircuit,
    PlacedNet,
    XC3000_CIRCUITS,
    XC4000_CIRCUITS,
    circuit_spec,
    scaled_spec,
    synthesize_circuit,
)


class TestPlacedNet:
    def test_basic(self):
        net = PlacedNet("n", source=(0, 0, 0), sinks=((1, 1, 0),))
        assert net.num_pins == 2
        assert net.pins == ((0, 0, 0), (1, 1, 0))

    def test_duplicate_pin_rejected(self):
        with pytest.raises(NetError):
            PlacedNet("n", source=(0, 0, 0), sinks=((0, 0, 0),))

    def test_no_sinks_rejected(self):
        with pytest.raises(NetError):
            PlacedNet("n", source=(0, 0, 0), sinks=())

    def test_to_graph_net(self):
        net = PlacedNet("n", source=(0, 0, 1), sinks=((2, 3, 0),))
        gnet = net.to_graph_net()
        assert gnet.source == ("P", 0, 0, 1)
        assert gnet.sinks == (("P", 2, 3, 0),)
        assert gnet.name == "n"

    def test_bounding_box_and_hpwl(self):
        net = PlacedNet(
            "n", source=(1, 2, 0), sinks=((4, 0, 0), (2, 5, 1))
        )
        assert net.bounding_box() == (1, 0, 4, 5)
        assert net.half_perimeter() == 3 + 5


class TestPlacedCircuit:
    def _circuit(self, nets):
        return PlacedCircuit(name="c", rows=4, cols=4, nets=nets)

    def test_validate_ok(self):
        c = self._circuit(
            [PlacedNet("a", (0, 0, 0), ((1, 1, 0),))]
        )
        c.validate(pins_per_block=4)

    def test_out_of_array_rejected(self):
        c = self._circuit([PlacedNet("a", (0, 0, 0), ((9, 0, 0),))])
        with pytest.raises(NetError):
            c.validate(pins_per_block=4)

    def test_pin_slot_out_of_range(self):
        c = self._circuit([PlacedNet("a", (0, 0, 7), ((1, 1, 0),))])
        with pytest.raises(NetError):
            c.validate(pins_per_block=4)

    def test_shared_pin_across_nets_rejected(self):
        c = self._circuit(
            [
                PlacedNet("a", (0, 0, 0), ((1, 1, 0),)),
                PlacedNet("b", (2, 2, 0), ((1, 1, 0),)),
            ]
        )
        with pytest.raises(NetError):
            c.validate(pins_per_block=4)

    def test_histogram(self):
        c = self._circuit(
            [
                PlacedNet("a", (0, 0, 0), ((1, 1, 0),)),          # 2 pins
                PlacedNet(
                    "b", (2, 2, 0),
                    tuple((x, y, 1) for x in range(2) for y in range(2)),
                ),                                                # 5 pins
            ]
        )
        hist = c.pin_histogram()
        assert hist == {"2-3": 1, "4-10": 1, ">10": 0}
        assert c.total_pins() == 7


class TestPublishedSpecs:
    def test_table2_totals(self):
        # the paper's Table 2 totals: 1744 nets = 1268 + 352 + 124
        assert sum(s.num_nets for s in XC3000_CIRCUITS) == 1744
        assert sum(s.nets_2_3 for s in XC3000_CIRCUITS) == 1268
        assert sum(s.nets_4_10 for s in XC3000_CIRCUITS) == 352
        assert sum(s.nets_over_10 for s in XC3000_CIRCUITS) == 124

    def test_table2_width_totals(self):
        assert sum(s.published["CGE"] for s in XC3000_CIRCUITS) == 55
        assert sum(s.published["paper"] for s in XC3000_CIRCUITS) == 45

    def test_table3_totals(self):
        assert sum(s.num_nets for s in XC4000_CIRCUITS) == 1710
        assert sum(s.nets_2_3 for s in XC4000_CIRCUITS) == 1154
        assert sum(s.nets_4_10 for s in XC4000_CIRCUITS) == 454
        assert sum(s.nets_over_10 for s in XC4000_CIRCUITS) == 102

    def test_table3_width_totals(self):
        assert sum(s.published["SEGA"] for s in XC4000_CIRCUITS) == 118
        assert sum(s.published["GBP"] for s in XC4000_CIRCUITS) == 110
        assert sum(s.published["paper"] for s in XC4000_CIRCUITS) == 94

    def test_table4_width_totals(self):
        assert sum(s.published["paper_pfa"] for s in XC4000_CIRCUITS) == 110
        assert sum(s.published["paper_idom"] for s in XC4000_CIRCUITS) == 106

    def test_lookup(self):
        assert circuit_spec("busc").family == "xc3000"
        assert circuit_spec("k2").family == "xc4000"
        with pytest.raises(KeyError):
            circuit_spec("nope")


class TestSynthesis:
    def test_matches_spec_statistics(self):
        spec = circuit_spec("busc")
        circuit = synthesize_circuit(spec, seed=0)
        hist = circuit.pin_histogram()
        assert circuit.num_nets == spec.num_nets
        assert hist["2-3"] == spec.nets_2_3
        assert hist["4-10"] == spec.nets_4_10
        assert hist[">10"] == spec.nets_over_10
        assert circuit.rows == spec.rows and circuit.cols == spec.cols

    def test_deterministic(self):
        spec = circuit_spec("term1")
        a = synthesize_circuit(spec, seed=5)
        b = synthesize_circuit(spec, seed=5)
        assert [n.pins for n in a.nets] == [n.pins for n in b.nets]

    def test_different_seeds_differ(self):
        spec = circuit_spec("term1")
        a = synthesize_circuit(spec, seed=1)
        b = synthesize_circuit(spec, seed=2)
        assert [n.pins for n in a.nets] != [n.pins for n in b.nets]

    def test_valid_placement(self):
        spec = circuit_spec("9symml")
        circuit = synthesize_circuit(spec, seed=2, pins_per_block=8)
        circuit.validate(pins_per_block=8)  # raises on any violation

    def test_locality(self):
        # nets should be local: mean HPWL well below the array diagonal
        spec = circuit_spec("dma")
        circuit = synthesize_circuit(spec, seed=1)
        mean_hpwl = sum(
            n.half_perimeter() for n in circuit.nets
        ) / circuit.num_nets
        assert mean_hpwl < 0.6 * (spec.cols + spec.rows)

    def test_scaled_spec(self):
        spec = circuit_spec("z03")
        small = scaled_spec(spec, 0.1)
        assert small.num_nets < spec.num_nets
        assert small.cols < spec.cols
        assert small.published == spec.published
        # identity at fraction 1
        assert scaled_spec(spec, 1.0) is spec

    def test_scaled_spec_rejects_bad_fraction(self):
        with pytest.raises(NetError):
            scaled_spec(circuit_spec("busc"), 0.0)
