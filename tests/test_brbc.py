"""Tests for the BRBC baseline [14] and the radius/cost tradeoff."""

from __future__ import annotations

import pytest

from repro.arborescence import (
    brbc,
    djka,
    idom,
    pfa,
    radius_cost_curve,
)
from repro.errors import GraphError
from repro.graph import ShortestPathCache, dijkstra, is_tree
from repro.steiner import kmb
from tests.conftest import random_instance


class TestRadiusGuarantee:
    @pytest.mark.parametrize("epsilon", [0.0, 0.25, 0.5, 1.0, 2.0])
    def test_bounded_radius(self, epsilon):
        for seed in range(6):
            g, net = random_instance(seed + 1300, num_pins=5)
            tree = brbc(g, net, epsilon=epsilon)
            assert is_tree(tree.tree)
            dist, _ = dijkstra(g, net.source)
            for sink in net.sinks:
                assert tree.pathlength(sink) <= (
                    (1.0 + epsilon) * dist[sink] + 1e-6
                )

    def test_epsilon_zero_is_shortest_paths_tree(self):
        for seed in range(5):
            g, net = random_instance(seed + 1350, num_pins=5)
            tree = brbc(g, net, epsilon=0.0)
            assert tree.is_arborescence(g)

    def test_negative_epsilon_rejected(self):
        g, net = random_instance(0, num_pins=3)
        with pytest.raises(GraphError):
            brbc(g, net, epsilon=-0.1)


class TestTradeoff:
    def test_curve_structure(self):
        g, net = random_instance(9, num_pins=6)
        curve = radius_cost_curve(g, net, [0.0, 0.5, 1.0, 4.0])
        # radius ratio bounded by 1 + epsilon everywhere
        for eps, cost, ratio in curve:
            assert ratio <= 1.0 + eps + 1e-6
        # at the loose end, cost approaches the Steiner tree's
        loose_cost = curve[-1][1]
        assert loose_cost <= curve[0][1] + 1e-9

    def test_paper_claim_pfa_idom_beat_brbc0(self):
        """§2: tuned fully to pathlength, BRBC = Dijkstra's tree; the
        paper's arborescences achieve the same optimal radius with less
        wirelength (aggregate over instances)."""
        total_brbc0 = total_pfa = total_idom = total_djka = 0.0
        for seed in range(8):
            g, net = random_instance(seed + 1400, num_pins=6)
            cache = ShortestPathCache(g)
            total_brbc0 += brbc(g, net, epsilon=0.0, cache=cache).cost
            total_pfa += pfa(g, net, cache).cost
            total_idom += idom(g, net, cache=cache).cost
            total_djka += djka(g, net, cache).cost
        assert total_pfa <= total_brbc0 + 1e-6
        assert total_idom <= total_brbc0 + 1e-6

    def test_brbc_never_cheaper_than_steiner(self):
        for seed in range(5):
            g, net = random_instance(seed + 1450, num_pins=5)
            assert brbc(g, net, epsilon=0.5).cost >= (
                kmb(g, net).cost * 0.8  # sanity: same order of magnitude
            )
