"""Crash-recovery tests for the routing job service.

The acceptance contract is *kill-anywhere*: for every fault point in
the journal/store write protocol, killing the service there and
restarting must leave every job either still queued or in a verified
terminal state, resumed jobs must produce results bit-identical to an
uninterrupted run, and identical resubmissions must be served from the
result store without routing again.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main as cli_main
from repro.engine import RetryPolicy
from repro.engine.faults import FaultPlan, SimulatedCrash
from repro.errors import (
    AdmissionError,
    JobError,
    JournalError,
    ServiceError,
    ValidationError,
)
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit
from repro.fpga.netlist import PlacedCircuit, PlacedNet
from repro.io import result_to_dict
from repro.router import RouterConfig
from repro.service import (
    AdmissionPolicy,
    JOURNAL_SCHEMA,
    Journal,
    JobStore,
    RoutingService,
    TERMINAL_STATES,
    read_journal,
    request_fingerprint,
)

KMB = RouterConfig(algorithm="kmb")

#: every named crash point in the durable write path
FAULT_POINTS = (
    "journal.append.pre",
    "journal.append.torn",
    "journal.append.post",
    "state.write.pre",
    "state.write.post",
    "result.write.pre",
    "result.write.post",
)


@pytest.fixture(scope="module")
def small_circuit():
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=1)


@pytest.fixture(scope="module")
def reference(small_circuit, tmp_path_factory):
    """The uninterrupted service answer every crash run must match."""
    root = tmp_path_factory.mktemp("reference-store")
    service = RoutingService(str(root))
    record = service.submit(small_circuit, config=KMB, width=3)
    assert service.run_until_idle() == 1
    return service.result(record.job_id)


def _edge_set(route):
    return sorted(
        (*sorted((repr(u), repr(v))), w) for u, v, w in route.edges
    )


def _assert_routes_identical(a, b):
    assert a.channel_width == b.channel_width
    assert a.total_wirelength == pytest.approx(b.total_wirelength)
    assert len(a.routes) == len(b.routes)
    for ra, rb in zip(a.routes, b.routes):
        assert ra.name == rb.name
        assert _edge_set(ra) == _edge_set(rb)


# ----------------------------------------------------------------------
# the write-ahead journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        assert journal.next_seq == 1
        journal.append({"type": "submitted", "job": "job-000001"})
        journal.append({"type": "transition", "job": "job-000001",
                        "to": "running"})
        events, durable = read_journal(path)
        assert [e["type"] for e in events] == ["submitted", "transition"]
        assert durable == os.path.getsize(path)
        reopened = Journal(path)
        assert reopened.replayed == events
        assert reopened.next_seq == 3

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append({"type": "submitted", "job": "job-000001"})
        good_size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b'{"schema": "repro.service/journal-v1", "seq"')
        reopened = Journal(path)
        assert len(reopened.replayed) == 1
        assert os.path.getsize(path) == good_size
        # and the next append starts a clean line
        reopened.append({"type": "transition", "job": "job-000001",
                         "to": "done"})
        events, _ = read_journal(path)
        assert len(events) == 2

    def test_unterminated_final_record_is_dropped(self, tmp_path):
        # even a *parseable* unterminated tail is a crash tail: its
        # append never returned, so it gets lost-event semantics
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append({"type": "submitted", "job": "job-000001"})
        with open(path, "rb") as fh:
            line = fh.readline()
        with open(path, "ab") as fh:
            fh.write(line.rstrip(b"\n").replace(b'"seq":1', b'"seq":2'))
        events, durable = read_journal(path)
        assert len(events) == 1
        assert durable < os.path.getsize(path)

    def test_garbled_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append({"type": "submitted", "job": "job-000001"})
        with open(path, "ab") as fh:
            fh.write(b"NOT JSON AT ALL\n")
        assert len(Journal(path).replayed) == 1

    def test_midfile_damage_is_an_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append({"type": "submitted", "job": "job-000001"})
        journal.append({"type": "transition", "job": "job-000001",
                        "to": "running"})
        with open(path, "rb") as fh:
            lines = fh.readlines()
        lines[0] = b"garbage\n"
        with open(path, "wb") as fh:
            fh.writelines(lines)
        with pytest.raises(JournalError):
            read_journal(path)

    def test_checksum_and_seq_are_verified(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append({"type": "submitted", "job": "job-000001"})
        with open(path) as fh:
            record = json.loads(fh.read())
        # tamper with the event but keep the old checksum
        record["event"]["job"] = "job-000009"
        tampered = json.dumps(record) + "\n"
        with open(path, "w") as fh:
            fh.write(tampered)
            fh.write(tampered)  # two copies: damage is now mid-file
        with pytest.raises(JournalError, match="checksum"):
            read_journal(path)

    def test_missing_file_is_empty(self, tmp_path):
        events, durable = read_journal(str(tmp_path / "absent.jsonl"))
        assert events == [] and durable == 0


# ----------------------------------------------------------------------
# the job store
# ----------------------------------------------------------------------
class TestJobStore:
    def _store(self, tmp_path, **kw):
        return JobStore(str(tmp_path / "store"), **kw)

    def test_create_claim_finish_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        record = store.create_job(
            {"x": 1}, fingerprint="abc", tenant="t1"
        )
        assert record.job_id == "job-000001"
        assert record.state == "queued"
        store.claim(record.job_id, "w0")
        store.write_result(record.job_id, {"format": "repro-result"})
        done = store.finish_done(
            record.job_id, channel_width=3, passes_used=2,
            total_wirelength=10.0, verified=True,
        )
        assert done.state == "done" and done.verified
        # snapshot mirrors the record
        snapshot = store.load_snapshot(record.job_id)
        assert snapshot == done.to_dict()
        # the journal is authoritative on reopen
        reopened = self._store(tmp_path)
        assert reopened.get(record.job_id).to_dict() == done.to_dict()

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(JobError):
            self._store(tmp_path).get("job-999999")

    def test_job_ids_skip_orphan_directories(self, tmp_path):
        store = self._store(tmp_path)
        os.makedirs(store.job_dir("job-000041"))
        assert store.next_job_id() == "job-000042"

    def test_corrupt_snapshot_is_rebuilt_from_journal(self, tmp_path):
        store = self._store(tmp_path)
        record = store.create_job({}, fingerprint="f", tenant="t")
        with open(store.state_path(record.job_id), "w") as fh:
            fh.write("{} definitely not the snapshot")
        assert store.load_snapshot(record.job_id) is None
        reopened = self._store(tmp_path)
        summary = reopened.reconcile()
        assert record.job_id in summary["snapshot_rebuilt"]
        assert reopened.load_snapshot(record.job_id) is not None

    def test_corrupt_job_state_fault_cannot_change_a_job(self, tmp_path):
        plan = FaultPlan(
            corrupt_job_state=True, state_dir=str(tmp_path / "faults")
        )
        store = self._store(tmp_path, faults=plan)
        record = store.create_job({}, fingerprint="f", tenant="t")
        assert plan.fired("corrupt-state") == 1
        assert store.load_snapshot(record.job_id) is None  # garbled
        reopened = self._store(tmp_path)
        summary = reopened.reconcile()
        assert record.job_id in summary["snapshot_rebuilt"]
        healed = reopened.get(record.job_id)
        assert healed.state == "queued"
        assert reopened.load_snapshot(record.job_id) == healed.to_dict()


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_depth_limit(self, small_circuit, tmp_path):
        service = RoutingService(
            str(tmp_path), policy=AdmissionPolicy(max_queue_depth=1)
        )
        service.submit(small_circuit, config=KMB, width=3)
        with pytest.raises(AdmissionError) as info:
            service.submit(small_circuit, config=KMB, width=4)
        assert info.value.code == "QUEUE_FULL"

    def test_tenant_limit(self, small_circuit, tmp_path):
        service = RoutingService(
            str(tmp_path),
            policy=AdmissionPolicy(
                max_queue_depth=10, max_jobs_per_tenant=1
            ),
        )
        service.submit(small_circuit, config=KMB, width=3, tenant="a")
        # a different tenant still fits
        service.submit(small_circuit, config=KMB, width=4, tenant="b")
        with pytest.raises(AdmissionError) as info:
            service.submit(small_circuit, config=KMB, width=5, tenant="a")
        assert info.value.code == "TENANT_LIMIT"

    def test_finished_jobs_free_their_slot(self, small_circuit, tmp_path):
        service = RoutingService(
            str(tmp_path), policy=AdmissionPolicy(max_queue_depth=1)
        )
        service.submit(small_circuit, config=KMB, width=3)
        service.run_until_idle()
        service.submit(small_circuit, config=KMB, width=4)  # admitted

    def test_invalid_circuit_fails_fast(self, tmp_path):
        # duplicate net names: the lint rejects this at submit, before
        # anything is journaled
        bad = PlacedCircuit(
            name="bad", rows=4, cols=4,
            nets=[
                PlacedNet("n", (0, 0, 0), ((1, 1, 0),)),
                PlacedNet("n", (2, 2, 0), ((3, 3, 0),)),
            ],
        )
        service = RoutingService(str(tmp_path))
        with pytest.raises(ValidationError):
            service.submit(bad, config=KMB, width=3)
        assert service.jobs() == []

    def test_unknown_family_is_a_job_error(self, small_circuit, tmp_path):
        with pytest.raises(JobError):
            RoutingService(str(tmp_path)).submit(
                small_circuit, family="xc9000"
            )


# ----------------------------------------------------------------------
# lifecycle: run, fail, cancel
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_submit_route_verify_done(
        self, small_circuit, tmp_path, reference
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        assert service.run_until_idle() == 1
        status = service.status(record.job_id)
        assert status["state"] == "done"
        assert status["verified"] is True
        assert status["attempts"] == 1
        _assert_routes_identical(service.result(record.job_id), reference)
        # progress was streamed into the per-job log as it happened
        log = service.store.log_path(record.job_id)
        events = [json.loads(l) for l in open(log)]
        assert any(e.get("type") == "pass" for e in events)

    def test_unroutable_job_fails_with_cause(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(
            small_circuit,
            config=RouterConfig(algorithm="kmb", max_passes=1),
            width=1,
        )
        service.run_until_idle()
        status = service.status(record.job_id)
        assert status["state"] == "failed"
        assert "Unroutable" in status["error"]
        with pytest.raises(JobError):
            service.result(record.job_id)

    def test_deadline_maps_onto_pass_budget(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(
            small_circuit, config=KMB, width=3, deadline_s=1e-9
        )
        service.run_until_idle()
        status = service.status(record.job_id)
        assert status["state"] == "failed"
        assert "Timeout" in status["error"]

    def test_cancel_queued_is_immediate(self, small_circuit, tmp_path):
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        cancelled = service.cancel(record.job_id)
        assert cancelled.state == "cancelled"
        assert service.run_until_idle() == 0

    def test_cancel_claimed_job_is_honoured_at_run(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        claimed = service.supervisor.claim_next("w0")
        assert claimed.job_id == record.job_id
        service.cancel(record.job_id)  # running: cooperative
        assert service.status(record.job_id)["state"] == "running"
        service.supervisor.run_job(claimed, "w0")
        assert service.status(record.job_id)["state"] == "cancelled"

    def test_cancel_terminal_job_is_an_error(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        service.run_until_idle()
        with pytest.raises(JobError):
            service.cancel(record.job_id)


# ----------------------------------------------------------------------
# sweep jobs, the worker pool, and infrastructure retry
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_sweep_job_finds_minimum_width(
        self, small_circuit, tmp_path, reference
    ):
        # no width given: the job runs the paper's minimum-channel-width
        # sweep and lands on the same answer as the fixed-width run
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, w_max=6)
        service.run_until_idle()
        status = service.status(record.job_id)
        assert status["state"] == "done"
        assert status["channel_width"] == reference.channel_width
        _assert_routes_identical(service.result(record.job_id), reference)

    def test_serve_pool_drains_queue_when_idle(
        self, small_circuit, tmp_path, reference
    ):
        service = RoutingService(str(tmp_path))
        for width in (3, 4, 5):
            service.submit(small_circuit, config=KMB, width=width)
        processed = service.serve(
            workers=2, exit_when_idle=True,
            install_signal_handlers=False,
        )
        assert processed == 3
        for record in service.jobs():
            assert record["state"] == "done"
            assert record["verified"] is True

    def test_drain_stops_claiming(self, small_circuit, tmp_path):
        service = RoutingService(str(tmp_path))
        service.submit(small_circuit, config=KMB, width=3)
        service.supervisor.request_drain()
        assert service.supervisor.claim_next("w0") is None
        assert service.run_until_idle() == 0

    def test_infrastructure_crash_is_retried_and_journaled(
        self, small_circuit, tmp_path, monkeypatch
    ):
        service = RoutingService(
            str(tmp_path),
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0, max_delay_s=0.0
            ),
        )
        record = service.submit(small_circuit, config=KMB, width=3)
        original = type(service.supervisor)._attempt
        crashes = []

        def flaky(self, rec, worker):
            if not crashes:
                crashes.append(1)
                raise OSError("transient: disk fell over")
            return original(self, rec, worker)

        monkeypatch.setattr(type(service.supervisor), "_attempt", flaky)
        service.run_until_idle()
        status = service.status(record.job_id)
        assert status["state"] == "done"
        assert status["attempts"] == 2  # the retry was journaled
        assert any(r.startswith("retry:") for r in status["requeues"])

    def test_retry_exhaustion_fails_the_job(
        self, small_circuit, tmp_path, monkeypatch
    ):
        service = RoutingService(
            str(tmp_path),
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.0, max_delay_s=0.0
            ),
        )
        record = service.submit(small_circuit, config=KMB, width=3)

        def always_down(self, rec, worker):
            raise OSError("the disk is gone for good")

        monkeypatch.setattr(
            type(service.supervisor), "_attempt", always_down
        )
        service.run_until_idle()
        status = service.status(record.job_id)
        assert status["state"] == "failed"
        assert "crashed 2 time(s)" in status["error"]


# ----------------------------------------------------------------------
# idempotent result dedupe
# ----------------------------------------------------------------------
class TestDedupe:
    def test_identical_resubmit_served_from_cache(
        self, small_circuit, tmp_path, reference
    ):
        service = RoutingService(str(tmp_path))
        first = service.submit(small_circuit, config=KMB, width=3)
        service.run_until_idle()
        again = service.submit(small_circuit, config=KMB, width=3)
        # immediately done, no queue, no routing
        assert again.state == "done"
        assert again.deduped_from == first.job_id
        assert again.attempts == 0
        assert not os.path.exists(service.store.log_path(again.job_id))
        _assert_routes_identical(service.result(again.job_id), reference)

    def test_different_config_is_not_deduped(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        service.submit(small_circuit, config=KMB, width=3)
        service.run_until_idle()
        other = service.submit(
            small_circuit,
            config=RouterConfig(algorithm="ikmb"),
            width=3,
        )
        assert other.state == "queued"

    def test_fingerprint_ignores_execution_knobs(self, small_circuit):
        base = request_fingerprint(
            small_circuit, KMB, family="xc3000", width=3, w_max=40
        )
        flat = request_fingerprint(
            small_circuit,
            RouterConfig(algorithm="kmb", graph_backend="flat",
                         search="astar"),
            family="xc3000", width=3, w_max=40,
        )
        assert base == flat  # engines are bit-identical by contract
        other_width = request_fingerprint(
            small_circuit, KMB, family="xc3000", width=4, w_max=40
        )
        assert base != other_width

    def test_queued_duplicate_adopts_result_at_claim(
        self, small_circuit, tmp_path, reference
    ):
        # both jobs enter the queue before either runs; the second is
        # served from the first one's verified result at claim time
        service = RoutingService(str(tmp_path))
        a = service.submit(small_circuit, config=KMB, width=3)
        b = service.submit(small_circuit, config=KMB, width=3)
        assert b.state == "queued"  # nothing cached yet
        service.run_until_idle()
        status = service.status(b.job_id)
        assert status["state"] == "done"
        assert status["deduped_from"] == a.job_id
        assert not os.path.exists(service.store.log_path(b.job_id))


# ----------------------------------------------------------------------
# the kill-anywhere crash matrix
# ----------------------------------------------------------------------
class TestCrashMatrix:
    @pytest.mark.parametrize("point", FAULT_POINTS)
    def test_kill_and_restart_reaches_verified_terminal(
        self, small_circuit, tmp_path, reference, point
    ):
        root = str(tmp_path / "store")
        record = RoutingService(root).submit(
            small_circuit, config=KMB, width=3
        )
        plan = FaultPlan(kill_at=point, state_dir=str(tmp_path / "f"))
        crashing = RoutingService(root, faults=plan)
        with pytest.raises(SimulatedCrash):
            crashing.run_until_idle()
        assert plan.fired(f"at-{point}") == 1
        # "restart": a fresh process would see exactly this disk state
        revived = RoutingService(root)
        revived.run_until_idle()
        status = revived.status(record.job_id)
        assert status["state"] in TERMINAL_STATES
        assert status["state"] == "done"
        assert status["verified"] is True
        _assert_routes_identical(revived.result(record.job_id), reference)
        # journal replay stays idempotent: reopening changes nothing
        again = RoutingService(root)
        assert not any(again.recovered.values())
        assert again.status(record.job_id) == status

    def test_kill_mid_route_resumes_from_checkpoint(
        self, small_circuit, tmp_path, reference
    ):
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        claimed = service.supervisor.claim_next("w0")
        # arm the crash only now: the next journal append is the
        # running -> checkpointed transition, i.e. mid-negotiation
        # with a checkpoint already on disk
        plan = FaultPlan(
            kill_at="journal.append.post", state_dir=str(tmp_path / "f")
        )
        service.store.faults = plan
        service.store.journal.faults = plan
        with pytest.raises(SimulatedCrash):
            service.supervisor.run_job(claimed, "w0")
        assert os.path.exists(service.store.checkpoint_path(record.job_id))

        revived = RoutingService(root)
        assert record.job_id in revived.recovered["requeued"]
        revived.run_until_idle()
        status = revived.status(record.job_id)
        assert status["state"] == "done"
        assert status["resumes"] >= 1  # it picked up the checkpoint
        _assert_routes_identical(revived.result(record.job_id), reference)
        # the checkpoint was consumed by the successful finish
        assert not os.path.exists(
            revived.store.checkpoint_path(record.job_id)
        )

    def test_crash_between_result_write_and_done_adopts_result(
        self, small_circuit, tmp_path, reference
    ):
        # the result.write.post crash leaves result.json on disk with
        # the job still journaled running; recovery must adopt the
        # (re-verified) result instead of routing again
        root = str(tmp_path / "store")
        record = RoutingService(root).submit(
            small_circuit, config=KMB, width=3
        )
        plan = FaultPlan(
            kill_at="result.write.post", state_dir=str(tmp_path / "f")
        )
        with pytest.raises(SimulatedCrash):
            RoutingService(root, faults=plan).run_until_idle()
        revived = RoutingService(root)
        revived.run_until_idle()
        status = revived.status(record.job_id)
        assert status["state"] == "done" and status["verified"]
        _assert_routes_identical(revived.result(record.job_id), reference)

    def test_done_job_with_lost_result_is_rerouted(
        self, small_circuit, tmp_path, reference
    ):
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        service.run_until_idle()
        os.unlink(service.store.result_path(record.job_id))
        revived = RoutingService(root)
        assert record.job_id in revived.recovered["result_lost"]
        revived.run_until_idle()
        assert revived.status(record.job_id)["state"] == "done"
        _assert_routes_identical(revived.result(record.job_id), reference)

    def test_orphan_request_directory_is_adopted(
        self, small_circuit, tmp_path, reference
    ):
        # a crash between the request.json write and the journal append
        # leaves a job directory the journal never heard of
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        orphan = "job-000007"
        os.makedirs(service.store.job_dir(orphan))
        with open(service.store.request_path(record.job_id)) as fh:
            request = fh.read()
        with open(service.store.request_path(orphan), "w") as fh:
            fh.write(request)
        revived = RoutingService(root)
        assert orphan in revived.recovered["adopted"]
        revived.run_until_idle()
        assert revived.status(orphan)["state"] == "done"
        _assert_routes_identical(revived.result(orphan), reference)

    def test_stale_running_job_is_taken_over(
        self, small_circuit, tmp_path, reference
    ):
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        service.supervisor.claim_next("w0")
        # a heartbeat from a process that no longer exists is stale
        # regardless of age
        with open(
            service.store.heartbeat_path(record.job_id), "w"
        ) as fh:
            json.dump(
                {"worker": "w0", "pid": 2 ** 22 + 12345,
                 "at": time.time()},
                fh,
            )
        assert service.supervisor.reclaim_stale() == 1
        assert service.status(record.job_id)["state"] == "queued"
        service.run_until_idle()
        assert service.status(record.job_id)["state"] == "done"
        _assert_routes_identical(service.result(record.job_id), reference)

    def test_missing_heartbeat_counts_as_stale(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        service.supervisor.claim_next("w0")
        os.unlink(service.store.heartbeat_path(record.job_id))
        assert service.supervisor.reclaim_stale() == 1

    def test_corrupt_checkpoint_never_wedges_a_job(
        self, small_circuit, tmp_path, reference
    ):
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        with open(
            service.store.checkpoint_path(record.job_id), "w"
        ) as fh:
            fh.write("not a checkpoint")
        # recovery requires nothing; the claim path drops the damaged
        # file and routes from scratch
        service.run_until_idle()
        assert service.status(record.job_id)["state"] == "done"
        _assert_routes_identical(service.result(record.job_id), reference)


# ----------------------------------------------------------------------
# CLI + a real hard-kill (os._exit) smoke
# ----------------------------------------------------------------------
class TestCLI:
    def _submit(self, root, capsys):
        code = cli_main(
            ["jobs", "submit", "term1", "--root", root,
             "--algorithm", "kmb", "--fraction", "0.22", "--width", "3",
             "--family", "xc3000"]
        )
        assert code == 0
        return capsys.readouterr().out.split(":")[0].strip()

    def test_submit_serve_status_result(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        job = self._submit(root, capsys)
        assert cli_main(
            ["jobs", "serve", "--root", root, "--exit-when-idle"]
        ) == 0
        capsys.readouterr()
        assert cli_main(["jobs", "status", job, "--root", root]) == 0
        out = capsys.readouterr().out
        assert "state=done" in out and "verified=True" in out
        saved = str(tmp_path / "result.json")
        assert cli_main(
            ["jobs", "result", job, "--root", root, "--save", saved]
        ) == 0
        assert os.path.exists(saved)

    def test_cancel_and_status_all(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        job = self._submit(root, capsys)
        assert cli_main(["jobs", "cancel", job, "--root", root]) == 0
        out = capsys.readouterr().out
        assert "state=cancelled" in out
        assert cli_main(["jobs", "status", "--root", root]) == 0
        assert "cancelled" in capsys.readouterr().out

    def test_result_of_unfinished_job_exits_nonzero(
        self, tmp_path, capsys
    ):
        root = str(tmp_path / "store")
        job = self._submit(root, capsys)
        assert cli_main(["jobs", "result", job, "--root", root]) == 1

    def test_hard_kill_serve_recovers_in_subprocess(self, tmp_path):
        """The CI smoke contract, in miniature: SIGKILL-equivalent
        death mid-append, restart, every job reaches a verified
        terminal state."""
        root = str(tmp_path / "store")
        env = dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), "..", "src")]
                + os.environ.get("PYTHONPATH", "").split(os.pathsep)
            ),
        )

        def run(*argv, faults=None):
            run_env = dict(env)
            run_env.pop("REPRO_FAULTS", None)
            if faults:
                run_env["REPRO_FAULTS"] = faults
            return subprocess.run(
                [sys.executable, "-m", "repro", *argv],
                env=run_env, capture_output=True, text=True,
                timeout=300,
            )

        for algo in ("kmb", "ikmb"):
            proc = run(
                "jobs", "submit", "term1", "--root", root,
                "--algorithm", algo, "--fraction", "0.22",
                "--width", "3", "--family", "xc3000",
            )
            assert proc.returncode == 0, proc.stderr
        crash = run(
            "jobs", "serve", "--root", root, "--exit-when-idle",
            faults=(
                f"kill_at=journal.append.post,kill_at_times=1,"
                f"dir={tmp_path / 'faults'}"
            ),
        )
        assert crash.returncode == 70, (crash.stdout, crash.stderr)
        revive = run("jobs", "serve", "--root", root, "--exit-when-idle")
        assert revive.returncode == 0, (revive.stdout, revive.stderr)
        status = run("jobs", "status", "--root", root)
        assert status.returncode == 0
        lines = [l for l in status.stdout.splitlines() if l.strip()]
        assert len(lines) == 2
        for line in lines:
            assert "state=done" in line and "verified=True" in line


# ----------------------------------------------------------------------
# multi-process safety: journal locking, read-only and no-recover opens
# ----------------------------------------------------------------------
class TestMultiProcess:
    def test_interleaved_appends_keep_the_chain_dense(self, tmp_path):
        # two Journal instances model two processes sharing one store:
        # each append resyncs under the flock, so concurrent writers
        # can never double-allocate a sequence number
        path = str(tmp_path / "j.jsonl")
        a = Journal(path)
        b = Journal(path)
        a.append({"type": "submitted", "job": "job-000001"})
        b.append({"type": "submitted", "job": "job-000002"})
        a.append({"type": "transition", "job": "job-000001",
                  "to": "running"})
        b.append({"type": "transition", "job": "job-000002",
                  "to": "running"})
        # read_journal raises JournalError on any seq gap or repeat
        events, durable = read_journal(path)
        assert len(events) == 4
        assert durable == os.path.getsize(path)
        # a's own appends resynced over b's; only b's last is unseen
        assert a.next_seq == 4
        assert a.refresh() == 1
        assert a.next_seq == b.next_seq == 5

    def test_refresh_folds_foreign_submissions(self, tmp_path):
        root = str(tmp_path / "store")
        a = JobStore(root)
        b = JobStore(root)
        ra = a.create_job({}, fingerprint="fa", tenant="t")
        assert b.refresh() == 1
        assert b.get(ra.job_id).state == "queued"
        rb = b.create_job({}, fingerprint="fb", tenant="t")
        assert rb.job_id != ra.job_id  # id allocation saw the foreign job
        a.refresh()
        assert a.get(rb.job_id).state == "queued"

    def test_readonly_open_never_writes(self, small_circuit, tmp_path):
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        service.supervisor.claim_next("w0")  # live server owns the job
        ro = RoutingService(root, readonly=True)
        # inspection sees the claim but must not requeue it
        assert ro.status(record.job_id)["state"] == "running"
        assert ro.recovered == {}
        with pytest.raises(ServiceError):
            ro.store.commit(
                {"type": "cancel_requested", "job": record.job_id}
            )
        with pytest.raises(ServiceError):
            ro.store.reconcile()
        assert service.status(record.job_id)["state"] == "running"

    def test_no_recover_open_leaves_running_jobs_alone(
        self, small_circuit, tmp_path
    ):
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        service.supervisor.claim_next("w0")
        client = RoutingService(root, recover=False)
        assert client.recovered == {}
        assert client.status(record.job_id)["state"] == "running"
        # submitting through the second opener is safe and visible to
        # the first at its next poll
        dup = client.submit(small_circuit, config=KMB, width=4)
        assert service.status(dup.job_id)["state"] == "queued"

    def test_server_sees_cross_process_submit_and_cancel(
        self, small_circuit, tmp_path
    ):
        root = str(tmp_path / "store")
        server = RoutingService(root)
        client = RoutingService(root, recover=False)
        record = client.submit(small_circuit, config=KMB, width=3)
        client.cancel(record.job_id)
        # the server folds both foreign events at its next claim poll
        assert server.run_until_idle() == 0
        assert server.status(record.job_id)["state"] == "cancelled"


# ----------------------------------------------------------------------
# worker robustness: job-scoped failures never kill the pool
# ----------------------------------------------------------------------
class TestWorkerRobustness:
    def test_unreadable_request_fails_the_job_not_the_worker(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        with open(
            service.store.request_path(record.job_id), "w"
        ) as fh:
            fh.write("not json {")
        assert service.run_until_idle() == 1  # no exception escapes
        status = service.status(record.job_id)
        assert status["state"] == "failed"
        assert "ServiceError" in status["error"]

    def test_poison_job_does_not_stall_the_queue(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        bad = service.submit(small_circuit, config=KMB, width=3)
        good = service.submit(small_circuit, config=KMB, width=4)
        with open(service.store.request_path(bad.job_id), "w") as fh:
            fh.write("garbage")
        processed = service.serve(
            workers=1, exit_when_idle=True,
            install_signal_handlers=False,
        )
        assert processed == 2
        assert service.status(bad.job_id)["state"] == "failed"
        assert service.status(good.job_id)["state"] == "done"

    def test_escaped_exception_does_not_kill_worker_thread(
        self, small_circuit, tmp_path, monkeypatch
    ):
        # even an error run_job cannot handle (a damaged store raising
        # JournalError mid-finish) must not take down the worker thread
        # and with it the whole pool
        service = RoutingService(str(tmp_path))
        a = service.submit(small_circuit, config=KMB, width=3)
        b = service.submit(small_circuit, config=KMB, width=4)
        original = type(service.supervisor).run_job
        blown = []

        def explosive(self, record, worker):
            if record.job_id == a.job_id and not blown:
                blown.append(1)
                raise JournalError("store damaged mid-finish")
            return original(self, record, worker)

        monkeypatch.setattr(
            type(service.supervisor), "run_job", explosive
        )
        processed = service.serve(
            workers=1, exit_when_idle=True,
            install_signal_handlers=False,
        )
        assert processed == 2  # the thread survived job a's explosion
        assert service.status(b.job_id)["state"] == "done"


# ----------------------------------------------------------------------
# ownership fencing and timer heartbeats
# ----------------------------------------------------------------------
class TestFencing:
    def test_superseded_completion_is_discarded(
        self, small_circuit, tmp_path, reference
    ):
        from repro.fpga.architecture import xc3000

        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        stale_claim = service.supervisor.claim_next("w0")
        token = stale_claim.attempts
        # stale takeover: the job is requeued and claimed by w1
        service.store.requeue(record.job_id, "stale_takeover")
        service.supervisor.claim_next("w1")
        # the original worker limps back with a finished (verified!)
        # result — it must be discarded, not journaled over w1's claim
        out = service.supervisor._finish(
            stale_claim, small_circuit, KMB, xc3000, reference, None,
            token,
        )
        assert out.state == "running" and out.attempts == 2
        assert service.status(record.job_id)["state"] == "running"
        assert not os.path.exists(
            service.store.result_path(record.job_id)
        )
        # the live claim still finishes normally
        service.supervisor.run_job(
            service.store.get(record.job_id), "w1"
        )
        status = service.status(record.job_id)
        assert status["state"] == "done" and status["attempts"] == 2

    def test_superseded_failure_is_discarded(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        record = service.submit(small_circuit, config=KMB, width=3)
        stale_claim = service.supervisor.claim_next("w0")
        token = stale_claim.attempts
        service.store.requeue(record.job_id, "stale_takeover")
        service.supervisor.claim_next("w1")
        out = service.supervisor._fail_fenced(
            record.job_id, token, "late crash report"
        )
        assert out.state == "running"  # w1's claim, not "failed"
        assert service.status(record.job_id)["state"] == "running"

    def test_heartbeat_pump_keeps_long_route_fresh(
        self, small_circuit, tmp_path
    ):
        # a single routing pass longer than stale_after_s used to look
        # abandoned (heartbeats only came from trace events) and get
        # taken over mid-route
        service = RoutingService(str(tmp_path), stale_after_s=0.4)
        record = service.submit(small_circuit, config=KMB, width=3)
        service.supervisor.claim_next("w0")
        with service.supervisor._heartbeat_pump(
            record.job_id, "w0", interval=0.05
        ):
            time.sleep(0.6)  # no trace events in this window
            assert not service.store.stale(record.job_id, 0.4)
            assert service.supervisor.reclaim_stale() == 0
        time.sleep(0.6)  # pump stopped: silence is stale again
        assert service.store.stale(record.job_id, 0.4)


# ----------------------------------------------------------------------
# job ids past six digits
# ----------------------------------------------------------------------
class TestJobIdWidth:
    def test_job_ids_widen_past_six_digits(self, tmp_path):
        store = JobStore(str(tmp_path / "store"))
        os.makedirs(store.job_dir("job-999999"))
        assert store.next_job_id() == "job-1000000"
        # the wider id must round-trip through the scan instead of
        # being re-minted (which silently overwrote the existing job)
        os.makedirs(store.job_dir("job-1000000"))
        assert store.next_job_id() == "job-1000001"


# ----------------------------------------------------------------------
# submit-time dedupe re-verification
# ----------------------------------------------------------------------
class TestSubmitDedupeVerification:
    def test_damaged_donor_result_falls_back_to_queue(
        self, small_circuit, tmp_path, reference
    ):
        service = RoutingService(str(tmp_path))
        first = service.submit(small_circuit, config=KMB, width=3)
        service.run_until_idle()
        with open(
            service.store.result_path(first.job_id), "w"
        ) as fh:
            fh.write("{ damaged")
        again = service.submit(small_circuit, config=KMB, width=3)
        assert again.state == "queued"  # no error, no bogus adoption
        service.run_until_idle()
        assert service.status(again.job_id)["state"] == "done"
        _assert_routes_identical(service.result(again.job_id), reference)

    def test_tampered_donor_result_is_reverified_at_submit(
        self, small_circuit, tmp_path
    ):
        service = RoutingService(str(tmp_path))
        first = service.submit(small_circuit, config=KMB, width=3)
        service.run_until_idle()
        path = service.store.result_path(first.job_id)
        with open(path) as fh:
            doc = json.load(fh)
        # parses fine, but the checker recomputes wirelength from the
        # node structure and catches the lie
        doc["routes"][0]["wirelength"] = 0.5
        with open(path, "w") as fh:
            json.dump(doc, fh)
        again = service.submit(small_circuit, config=KMB, width=3)
        assert again.state == "queued"
