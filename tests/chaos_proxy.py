"""A fault-injecting TCP proxy for socket-level chaos tests.

Sits between a :class:`ServiceClient` and a :class:`ServiceHTTP`
server and mistreats connections the way real networks do.  One fault
is drawn per accepted connection from a seeded RNG (deterministic
sequence for a given seed + connection order):

========= ==========================================================
fault     behavior
========= ==========================================================
none      forward both directions faithfully
delay     sleep before connecting upstream (SYN-ish latency spike)
drop      read a little from the client, then close silently —
          the request never reaches the server
reset     like drop, but abort with RST (``SO_LINGER`` zero)
partial   forward the request, then cut the *response* after N
          bytes — the server acted, the client can't tell
trickle   deliver the response a few bytes at a time with delays
========= ==========================================================

``drop``/``reset`` never touch the upstream, so a request hit by them
is provably undelivered (safe to retry, even non-idempotent ones);
``partial`` is the ambiguous case clients must handle with dedupe or
Last-Event-ID resumes.  Per-fault counts are kept so a soak test can
assert every fault actually fired.

Not a pytest file (no ``test_`` prefix) — import it from tests:
``from tests.chaos_proxy import ChaosProxy``.
"""

from __future__ import annotations

import collections
import random
import socket
import struct
import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["ChaosProxy"]


class ChaosProxy:
    """Threaded TCP proxy injecting one fault per connection."""

    def __init__(
        self,
        upstream: Tuple[str, int],
        *,
        seed: int = 0,
        delay_p: float = 0.0,
        delay_s: float = 0.05,
        drop_p: float = 0.0,
        reset_p: float = 0.0,
        partial_p: float = 0.0,
        partial_bytes: int = 64,
        trickle_p: float = 0.0,
        trickle_chunk: int = 7,
        trickle_delay_s: float = 0.002,
        io_timeout_s: float = 60.0,
    ):
        self.upstream = upstream
        self.delay_s = delay_s
        self.partial_bytes = partial_bytes
        self.trickle_chunk = max(1, trickle_chunk)
        self.trickle_delay_s = trickle_delay_s
        self.io_timeout_s = io_timeout_s
        self._faults = (
            ("drop", drop_p),
            ("reset", reset_p),
            ("partial", partial_p),
            ("trickle", trickle_p),
            ("delay", delay_p),
        )
        if sum(p for _, p in self._faults) > 1.0:
            raise ValueError("fault probabilities sum over 1.0")
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self.counts: "collections.Counter[str]" = collections.Counter()
        self._count_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self.address: Optional[Tuple[str, int]] = None
        self._threads: list = []
        self._conns: set = set()
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(256)
        self._listener = listener
        self.address = listener.getsockname()
        thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self.address

    @property
    def url(self) -> str:
        assert self.address is not None, "start() first"
        return f"http://{self.address[0]}:{self.address[1]}"

    def stop(self) -> None:
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in list(self._conns):
            try:
                conn.close()
            except OSError:
                pass
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    def fault_counts(self) -> Dict[str, int]:
        with self._count_lock:
            return dict(self.counts)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _pick_fault(self) -> str:
        with self._rng_lock:
            roll = self._rng.random()
        acc = 0.0
        for name, prob in self._faults:
            acc += prob
            if roll < acc:
                return name
        return "none"

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            fault = self._pick_fault()
            with self._count_lock:
                self.counts[fault] += 1
            thread = threading.Thread(
                target=self._handle,
                args=(client, fault),
                name=f"chaos-{fault}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, client: socket.socket, fault: str) -> None:
        self._conns.add(client)
        server: Optional[socket.socket] = None
        try:
            client.settimeout(self.io_timeout_s)
            if fault in ("drop", "reset"):
                # let the client commit some bytes, then vanish —
                # the upstream never sees this request
                try:
                    client.recv(512)
                except OSError:
                    pass
                if fault == "reset":
                    try:
                        client.setsockopt(
                            socket.SOL_SOCKET,
                            socket.SO_LINGER,
                            struct.pack("ii", 1, 0),
                        )
                    except OSError:  # pragma: no cover - platform
                        pass
                return
            if fault == "delay":
                time.sleep(self.delay_s)
            try:
                server = socket.create_connection(
                    self.upstream, timeout=self.io_timeout_s
                )
            except OSError:
                return
            self._conns.add(server)
            server.settimeout(self.io_timeout_s)
            # requests forward faithfully on a side thread; the
            # response direction carries the fault
            up = threading.Thread(
                target=self._pump,
                args=(client, server, False, None),
                name="chaos-up",
                daemon=True,
            )
            up.start()
            self._threads.append(up)
            self._pump(
                server,
                client,
                fault == "trickle",
                self.partial_bytes if fault == "partial" else None,
            )
        finally:
            for sock in (client, server):
                if sock is None:
                    continue
                try:
                    sock.close()
                except OSError:
                    pass
                self._conns.discard(sock)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        trickle: bool,
        budget: Optional[int],
    ) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                if budget is not None:
                    data = data[:budget]
                    budget -= len(data)
                if trickle:
                    for i in range(0, len(data), self.trickle_chunk):
                        dst.sendall(data[i:i + self.trickle_chunk])
                        time.sleep(self.trickle_delay_s)
                else:
                    dst.sendall(data)
                if budget is not None and budget <= 0:
                    break
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass
