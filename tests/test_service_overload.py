"""Overload protection: SSE broadcast hub, governance, shedding,
and the client-side circuit breaker.

Five contracts under test:

* **fan-out** — N concurrent SSE subscribers on one job are served by
  exactly one shared tailer task with bounded per-subscriber queues;
* **shed-and-resume** — a stalled subscriber is disconnected without
  affecting healthy ones, and a reconnect with ``Last-Event-ID``
  recovers the dropped window losslessly;
* **governance** — keep-alive with idle reaping, connection caps with
  503 + ``Retry-After``, slow-loris header deadlines, per-tenant
  in-flight caps, and structured 413/411/501 request refusals;
* **load shedding** — a degraded node sheds low-priority submits with
  429 + ``Retry-After``, says so on ``/v1/healthz``, and counts every
  refusal under ``/v1/metrics``'s ``http`` key;
* **client resilience** — ``Retry-After`` overrides the backoff
  schedule, non-idempotent ``cancel`` is never retried on ambiguous
  transport failure, and the circuit breaker fails fast while open.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import socket
import threading
import time

import pytest

from repro.errors import AdmissionError
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit
from repro.router import RouterConfig
from repro.service import (
    AdmissionPolicy,
    BackgroundServer,
    CircuitBreaker,
    CircuitOpenError,
    OverloadPolicy,
    RoutingService,
    ServerLimits,
    ServiceClient,
    TransportError,
)
from repro.service.http import MAX_BODY_BYTES

KMB = RouterConfig(algorithm="kmb")


@pytest.fixture(scope="module")
def small_circuit():
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=1)


class _Server:
    """A served RoutingService with tunable limits (no worker pool)."""

    def __init__(self, root, *, policy=None, **http_kwargs):
        self.service = RoutingService(str(root), policy=policy)
        http_kwargs.setdefault("sse_poll_s", 0.05)
        self.background = BackgroundServer(self.service, **http_kwargs)
        self.host, self.port = self.background.start()
        self.url = f"http://{self.host}:{self.port}"
        self.client = ServiceClient(self.url, backoff_s=0.05)

    @property
    def frontend(self):
        return self.background.frontend

    def connect(self, *, rcvbuf=None) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if rcvbuf is not None:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        sock.connect((self.host, self.port))
        return sock

    def close(self) -> None:
        self.background.stop()


def _read_response(sock, timeout=10.0):
    """``(status, headers, body)`` of one HTTP response on a socket."""
    sock.settimeout(timeout)
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(4096)
        if not chunk:
            break
        buf += chunk
    head, _, rest = buf.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        headers[name.decode().strip().lower()] = value.decode().strip()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = sock.recv(4096)
        if not chunk:
            break
        rest += chunk
    return status, headers, rest[:length]


def _append_log(path: str, count: int, start: int = 0) -> None:
    """Synthetic trace lines, straight onto the job's append-only log."""
    with open(path, "a", encoding="utf-8") as fh:
        for i in range(start, start + count):
            fh.write(json.dumps(
                {"type": "synthetic", "i": i, "pad": "x" * 80}
            ) + "\n")


def _wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


# ----------------------------------------------------------------------
# SSE fan-out: one tailer, many subscribers
# ----------------------------------------------------------------------
class TestFanout:
    N = 256
    LINES = 40

    def test_many_subscribers_one_tailer(self, tmp_path, small_circuit):
        server = _Server(tmp_path / "store")
        try:
            job = server.client.submit(
                small_circuit, config=KMB, width=3
            )["job_id"]
            log_path = server.service.store.log_path(job)
            results = [None] * self.N

            def watch(index):
                got = []
                try:
                    for event, _data, eid in server.client.events(
                        job, heartbeats=False
                    ):
                        got.append((event, eid))
                except Exception as exc:  # surfaced via the assertion
                    got.append(("error", repr(exc)))
                results[index] = got

            threads = [
                threading.Thread(target=watch, args=(i,), daemon=True)
                for i in range(self.N)
            ]
            for t in threads:
                t.start()
            hub = server.frontend.hub
            _wait_until(
                lambda: hub.stats()["subscribers"] == self.N,
                message=f"{self.N} subscribers attached",
            )
            # the acceptance bar: every subscriber shares ONE tailer
            stats = hub.stats()
            assert stats["tails"] == 1
            assert stats["tails_started"] == 1
            _append_log(log_path, self.LINES)
            # terminal state fans out and ends every stream
            server.client.cancel(job)
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
            expected = [
                ("trace", i) for i in range(1, self.LINES + 1)
            ] + [("state", 0)]
            for got in results:
                assert got == expected
            stats = hub.stats()
            assert stats["tails_started"] == 1  # never a second tailer
            assert stats["subscribers"] == 0  # all detached
            assert stats["subscribers_peak"] == self.N
        finally:
            server.close()

    def test_terminal_job_replays_without_tailer(
        self, tmp_path, small_circuit
    ):
        server = _Server(tmp_path / "store")
        try:
            job = server.client.submit(
                small_circuit, config=KMB, width=3
            )["job_id"]
            _append_log(server.service.store.log_path(job), 7)
            server.client.cancel(job)
            events = list(server.client.events(job, heartbeats=False))
            assert [e[2] for e in events[:-1]] == list(range(1, 8))
            assert events[-1][0] == "state"
            assert server.frontend.hub.stats()["tails_started"] == 0
        finally:
            server.close()


# ----------------------------------------------------------------------
# shed-and-resume: slow consumers are dropped, not buffered
# ----------------------------------------------------------------------
class TestSlowConsumer:
    LINES = 1500

    def test_stalled_subscriber_shed_and_lossless_resume(
        self, tmp_path, small_circuit
    ):
        server = _Server(
            tmp_path / "store",
            limits=ServerLimits(
                sse_queue_limit=32,
                sse_write_timeout_s=0.5,
                sse_send_buffer_bytes=8192,
            ),
        )
        try:
            job = server.client.submit(
                small_circuit, config=KMB, width=3
            )["job_id"]
            log_path = server.service.store.log_path(job)

            healthy = []
            finished = threading.Event()

            def watch():
                try:
                    for event, _data, eid in server.client.events(
                        job, heartbeats=False
                    ):
                        healthy.append((event, eid))
                finally:
                    finished.set()

            watcher = threading.Thread(target=watch, daemon=True)
            watcher.start()

            # the stalled subscriber: sends the request, never reads
            quoted = f"/v1/jobs/{job}/events"
            stalled = server.connect(rcvbuf=4096)
            stalled.sendall(
                f"GET {quoted} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
            )
            hub = server.frontend.hub
            _wait_until(
                lambda: hub.stats()["subscribers"] == 2,
                message="both subscribers attached",
            )
            assert hub.stats()["tails"] == 1

            _append_log(log_path, self.LINES)
            _wait_until(
                lambda: len(healthy) >= self.LINES,
                timeout=60,
                message="healthy subscriber caught up",
            )
            # the healthy stream was never affected by the stall
            assert [e for e in healthy[:self.LINES]] == [
                ("trace", i) for i in range(1, self.LINES + 1)
            ]
            # the stalled one was disconnected (write stall past the
            # deadline) and the shed is visible in metrics; the burst
            # also shows up as queue-overflow lag (recovered from the
            # file without a disconnect)
            _wait_until(
                lambda: server.client.metrics()["http"]["sse"][
                    "dropped_slow"
                ] >= 1,
                message="shed counted in metrics",
            )
            assert server.client.metrics()["http"]["sse"]["lagged"] >= 1

            # drain what the kernel had buffered for the stalled socket
            # until EOF proves the server disconnected it
            stalled.settimeout(30)
            blob = b""
            while True:
                try:
                    chunk = stalled.recv(65536)
                except socket.timeout:
                    raise AssertionError(
                        "stalled subscriber was not disconnected"
                    )
                if not chunk:
                    break
                blob += chunk
            stalled.close()
            ids = [int(m) for m in re.findall(rb"id: (\d+)", blob)]
            assert ids == sorted(ids)
            last_seen = max(ids) if ids else 0
            assert last_seen < self.LINES  # it genuinely missed a window

            # reconnect with Last-Event-ID while the job is still live:
            # the handler catches up from the file, then goes live
            resumed = []
            resumed_done = threading.Event()

            def resume():
                try:
                    for event, _data, eid in server.client.events(
                        job,
                        last_event_id=last_seen,
                        heartbeats=False,
                    ):
                        resumed.append((event, eid))
                finally:
                    resumed_done.set()

            resumer = threading.Thread(target=resume, daemon=True)
            resumer.start()
            _wait_until(
                lambda: len(resumed) >= self.LINES - last_seen,
                timeout=60,
                message="resumed subscriber caught up",
            )
            # lossless: the union of both connections is dense
            assert [e[1] for e in resumed[:self.LINES - last_seen]] == (
                list(range(last_seen + 1, self.LINES + 1))
            )
            assert server.client.metrics()["http"]["sse"]["resumes"] >= 1

            server.client.cancel(job)
            assert finished.wait(30) and resumed_done.wait(30)
            assert healthy[-1][0] == "state"
            assert resumed[-1][0] == "state"
        finally:
            server.close()


# ----------------------------------------------------------------------
# connection and request governance
# ----------------------------------------------------------------------
class TestGovernance:
    def test_keep_alive_then_idle_reap(self, tmp_path):
        server = _Server(
            tmp_path / "store",
            limits=ServerLimits(idle_timeout_s=0.5),
        )
        try:
            sock = server.connect()
            request = b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
            for _ in range(2):  # two requests on ONE connection
                sock.sendall(request)
                status, headers, body = _read_response(sock)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert json.loads(body)["ok"] is True
            # idle past the deadline: the server reaps the connection
            sock.settimeout(10)
            assert sock.recv(1) == b""
            sock.close()
        finally:
            server.close()

    def test_connection_limit_sheds_with_retry_after(self, tmp_path):
        server = _Server(
            tmp_path / "store",
            limits=ServerLimits(max_connections=2, idle_timeout_s=30),
        )
        try:
            request = b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
            held = []
            for _ in range(2):
                sock = server.connect()
                sock.sendall(request)
                status, headers, _ = _read_response(sock)
                assert status == 200
                held.append(sock)  # keep-alive: still occupying a slot
            extra = server.connect()
            extra.sendall(request)
            status, headers, body = _read_response(extra)
            assert status == 503
            assert float(headers["retry-after"]) > 0
            assert json.loads(body)["error"]["type"] == "ServiceError"
            extra.close()
            for sock in held:
                sock.close()
            _wait_until(
                lambda: server.client.metrics()["http"]["shed"][
                    "connections"
                ] >= 1,
                message="shed connection counted",
            )
        finally:
            server.close()

    def test_slow_loris_header_deadline(self, tmp_path):
        server = _Server(
            tmp_path / "store",
            limits=ServerLimits(header_timeout_s=0.3, idle_timeout_s=30),
        )
        try:
            sock = server.connect()
            sock.sendall(b"GET /v1/he")  # ...and never finish the head
            sock.settimeout(10)
            begin = time.monotonic()
            assert sock.recv(1) == b""  # cut off, no response
            assert time.monotonic() - begin < 5
            sock.close()
        finally:
            server.close()

    def test_oversize_body_is_structured_413(self, tmp_path):
        server = _Server(tmp_path / "store")
        try:
            sock = server.connect()
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " +
                str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n"
            )
            status, _, body = _read_response(sock)
            assert status == 413
            err = json.loads(body)["error"]
            assert err["type"] == "ServiceError"
            assert err["message"] == "request body too large"
            sock.close()
        finally:
            server.close()

    def test_post_without_length_is_411(self, tmp_path):
        server = _Server(tmp_path / "store")
        try:
            sock = server.connect()
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n\r\n")
            status, _, body = _read_response(sock)
            assert status == 411
            assert json.loads(body)["error"]["type"] == "ServiceError"
            sock.close()
        finally:
            server.close()

    def test_chunked_upload_is_501(self, tmp_path):
        server = _Server(tmp_path / "store")
        try:
            sock = server.connect()
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            status, _, body = _read_response(sock)
            assert status == 501
            assert json.loads(body)["error"]["type"] == "ServiceError"
            sock.close()
        finally:
            server.close()

    def test_per_tenant_inflight_cap(self, tmp_path, small_circuit):
        server = _Server(
            tmp_path / "store",
            limits=ServerLimits(max_inflight_per_tenant=2),
        )
        try:
            gate = threading.Event()
            original = server.service.submit

            def slow_submit(*args, **kwargs):
                gate.wait(30)
                return original(*args, **kwargs)

            server.service.submit = slow_submit
            outcomes = []

            def submit(seed):
                client = ServiceClient(server.url, retries=0)
                try:
                    outcomes.append(
                        ("ok", client.submit(
                            small_circuit, config=KMB, width=3,
                            tenant="noisy", priority=seed,
                        ))
                    )
                except AdmissionError as exc:
                    outcomes.append(("refused", exc.code))

            threads = [
                threading.Thread(target=submit, args=(i,), daemon=True)
                for i in range(2)
            ]
            for t in threads:
                t.start()
            _wait_until(
                lambda: server.frontend._inflight.get("noisy", 0) == 2,
                message="two submits in flight",
            )
            blocked = ServiceClient(server.url, retries=0)
            with pytest.raises(AdmissionError) as caught:
                blocked.submit(
                    small_circuit, config=KMB, width=3, tenant="noisy"
                )
            assert caught.value.code == "INFLIGHT_LIMIT"
            gate.set()
            for t in threads:
                t.join(timeout=60)
            assert [o[0] for o in outcomes] == ["ok", "ok"]
            metrics = server.client.metrics()
            assert metrics["http"]["shed"]["inflight"] >= 1
        finally:
            server.close()


# ----------------------------------------------------------------------
# load shedding with honest signals
# ----------------------------------------------------------------------
class TestShedding:
    def test_degraded_health_sheds_low_priority(self, tmp_path):
        spec = scaled_spec(circuit_spec("term1"), 0.22)
        server = _Server(
            tmp_path / "store",
            policy=AdmissionPolicy(
                max_queue_depth=8, tenant_priorities={"vip": 5}
            ),
            overload=OverloadPolicy(
                queue_shed_fraction=0.5,
                shed_priority_floor=1,
                retry_after_s=0.25,
            ),
        )
        try:
            # healthy first
            doc = server.client.healthz()
            assert doc["ok"] is True and doc["status"] == "ok"
            # fill half the queue with high-priority work -> degraded
            for seed in range(4):
                server.client.submit(
                    synthesize_circuit(spec, seed=10 + seed),
                    config=KMB, width=3, tenant="vip",
                )
            doc = server.client.healthz()
            assert doc["ok"] is True  # alive, merely degraded
            assert doc["status"] == "degraded"
            assert any("queue depth" in r for r in doc["reasons"])
            assert doc["pressure"]["queue_depth"] == 4

            # a low-priority submit is shed with 429 + Retry-After
            low = ServiceClient(server.url, retries=0)
            with pytest.raises(AdmissionError) as caught:
                low.submit(
                    synthesize_circuit(spec, seed=20),
                    config=KMB, width=3, tenant="walkin",
                )
            assert caught.value.code == "OVERLOADED"
            # ... and the header is on the wire
            conn = http.client.HTTPConnection(server.host, server.port)
            conn.request(
                "POST", "/v1/jobs",
                body=json.dumps({
                    "circuit": {}, "tenant": "walkin",
                }).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 429
            assert float(response.headers["Retry-After"]) > 0
            conn.close()

            # high-priority work is still admitted while degraded
            record = server.client.submit(
                synthesize_circuit(spec, seed=21),
                config=KMB, width=3, tenant="vip",
            )
            assert record["state"] == "queued"

            metrics = server.client.metrics()
            assert metrics["http"]["shed"]["submits"] >= 1
            assert metrics["http"]["degraded"] is True
            assert metrics["http"]["overload_reasons"]
        finally:
            server.close()


# ----------------------------------------------------------------------
# client: Retry-After, idempotency, circuit breaker
# ----------------------------------------------------------------------
class _ScriptedServer:
    """Answers each accepted connection with the next scripted part.

    A part is either response bytes to write after reading the request
    head, or ``None`` to slam the connection shut (ambiguous failure).
    The arrival time and first request line of every connection are
    recorded.
    """

    def __init__(self, parts):
        self.parts = list(parts)
        self.seen = []
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(16)
        self.host, self.port = self.listener.getsockname()
        self.url = f"http://{self.host}:{self.port}"
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        for part in self.parts:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            try:
                conn.settimeout(10)
                buf = b""
                while b"\r\n\r\n" not in buf:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    buf += chunk
                self.seen.append(
                    (time.monotonic(), buf.split(b"\r\n", 1)[0])
                )
                if part is not None:
                    conn.sendall(part)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        try:
            self.listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


def _response(status, reason, doc, extra=""):
    body = json.dumps(doc).encode()
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n{extra}\r\n"
    ).encode() + body


class TestClientResilience:
    def test_retry_after_overrides_backoff_on_429(self):
        refusal = _response(
            429, "Too Many Requests",
            {"error": {"type": "AdmissionError",
                       "message": "shed", "code": "OVERLOADED"}},
            extra="Retry-After: 0.3\r\n",
        )
        stub = _ScriptedServer([refusal, _response(200, "OK", {})])
        try:
            client = ServiceClient(
                stub.url, retries=2, backoff_s=5.0, max_backoff_s=9.0,
            )
            assert client.metrics() == {}
            assert len(stub.seen) == 2
            gap = stub.seen[1][0] - stub.seen[0][0]
            # honored the server's 0.3s, not the 5s schedule
            assert 0.25 <= gap < 2.5
        finally:
            stub.close()

    def test_retry_after_honored_on_503(self):
        refusal = _response(
            503, "Service Unavailable",
            {"error": {"type": "ServiceError", "message": "full"}},
            extra="Retry-After: 0.3\r\n",
        )
        stub = _ScriptedServer([refusal, _response(200, "OK", {})])
        try:
            client = ServiceClient(
                stub.url, retries=2, backoff_s=5.0, max_backoff_s=9.0,
            )
            assert client.metrics() == {}
            gap = stub.seen[1][0] - stub.seen[0][0]
            assert 0.25 <= gap < 2.5
        finally:
            stub.close()

    def test_429_without_retry_after_raises_immediately(self):
        refusal = _response(
            429, "Too Many Requests",
            {"error": {"type": "AdmissionError",
                       "message": "queue full", "code": "QUEUE_FULL"}},
        )
        stub = _ScriptedServer([refusal])
        try:
            client = ServiceClient(stub.url, retries=3, backoff_s=0.01)
            with pytest.raises(AdmissionError) as caught:
                client.metrics()
            assert caught.value.code == "QUEUE_FULL"
            assert len(stub.seen) == 1  # no blind 429 retries
        finally:
            stub.close()

    def test_cancel_not_retried_on_ambiguous_failure(self):
        # the server reads the DELETE, then dies without answering:
        # the cancel may or may not have been applied
        stub = _ScriptedServer([None, None, None])
        try:
            client = ServiceClient(
                stub.url, retries=2, backoff_s=0.01, breaker=None,
            )
            with pytest.raises(TransportError) as caught:
                client.cancel("job-1")
            assert "not retried" in str(caught.value)
            time.sleep(0.2)
            assert len(stub.seen) == 1  # exactly one attempt
            # an idempotent GET under the same failure IS retried
            with pytest.raises(TransportError):
                client.status("job-1")
            assert len(stub.seen) == 3  # 1 cancel + 2 of 3 GET attempts
        finally:
            stub.close()

    def test_breaker_unit_transitions(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after_s=10.0,
            clock=lambda: clock[0],
        )
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # not yet at the threshold
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as caught:
            breaker.before_attempt()
        assert caught.value.retry_after_s > 0
        clock[0] = 10.0
        assert breaker.state == "half-open"
        breaker.before_attempt()  # the single probe goes through
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()  # concurrent probe refused
        breaker.record_failure()  # probe failed: re-open the window
        clock[0] = 15.0
        assert breaker.state == "open"
        clock[0] = 20.0
        breaker.before_attempt()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_breaker_fails_fast_against_dead_server(self):
        # grab a port nothing listens on
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        client = ServiceClient(
            f"http://{host}:{port}",
            retries=3, backoff_s=0.01,
            breaker=CircuitBreaker(
                failure_threshold=2, reset_after_s=60.0
            ),
        )
        with pytest.raises(CircuitOpenError):
            client.healthz()  # trips mid-retry-loop, then fails fast
        begin = time.monotonic()
        with pytest.raises(CircuitOpenError):
            client.healthz()  # open: no connection attempt, no sleeps
        assert time.monotonic() - begin < 0.5

    def test_healthz_closes_breaker_again(self, tmp_path):
        server = _Server(tmp_path / "store")
        try:
            breaker = CircuitBreaker(
                failure_threshold=1, reset_after_s=0.05
            )
            client = ServiceClient(
                server.url, retries=0, breaker=breaker
            )
            breaker.record_failure()  # open it artificially
            assert breaker.state == "open"
            time.sleep(0.1)  # window elapses -> half-open probe
            assert client.healthz()["ok"] is True
            assert breaker.state == "closed"
        finally:
            server.close()
