"""Tests for repro.graph.core (the Graph substrate)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import Graph, edge_key


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.is_connected()  # vacuously

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2, 3.5)
        assert g.has_node(1) and g.has_node(2)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 3.5
        assert g.weight(2, 1) == 3.5  # undirected

    def test_add_edge_overwrites_weight(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(1, 2, 9.0)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 9.0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge("x", "x", 1.0)

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, -0.5)

    def test_zero_weight_allowed(self):
        g = Graph()
        g.add_edge(1, 2, 0.0)
        assert g.weight(1, 2) == 0.0

    def test_hashable_node_types(self):
        g = Graph()
        g.add_edge(("h", 0, 1, 2), "pin", 1.0)
        g.add_edge("pin", frozenset({1, 2}), 2.0)
        assert g.num_nodes == 3


class TestMutation:
    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 0
        assert g.has_node(1) and g.has_node(2)

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_remove_node_removes_incident_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.remove_node(2)
        assert g.num_edges == 0
        assert not g.has_node(2)
        assert g.has_node(1) and g.has_node(3)

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.remove_node("ghost")

    def test_set_weight(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.set_weight(1, 2, 4.0)
        assert g.weight(1, 2) == 4.0
        assert g.weight(2, 1) == 4.0

    def test_set_weight_missing_edge_raises(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(GraphError):
            g.set_weight(1, 2, 1.0)

    def test_scale_weight(self):
        g = Graph()
        g.add_edge(1, 2, 2.0)
        g.scale_weight(1, 2, 1.5)
        assert g.weight(1, 2) == 3.0

    def test_version_bumps_on_mutation(self):
        g = Graph()
        v0 = g.version
        g.add_edge(1, 2)
        v1 = g.version
        assert v1 > v0
        g.set_weight(1, 2, 2.0)
        v2 = g.version
        assert v2 > v1
        g.remove_edge(1, 2)
        assert g.version > v2

    def test_version_not_bumped_by_queries(self):
        g = Graph()
        g.add_edge(1, 2)
        v = g.version
        _ = g.weight(1, 2)
        _ = list(g.edges())
        _ = g.is_connected()
        assert g.version == v


class TestQueries:
    def test_neighbors(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("a", "c", 2.0)
        assert sorted(g.neighbors("a")) == ["b", "c"]
        assert dict(g.neighbor_items("a")) == {"b": 1.0, "c": 2.0}

    def test_neighbors_missing_node_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            list(g.neighbors("nope"))

    def test_degree(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.degree(1) == 2
        assert g.degree(2) == 1

    def test_edges_iterates_each_edge_once(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 2.0)
        g.add_edge(1, 3, 3.0)
        edges = list(g.edges())
        assert len(edges) == 3
        assert sum(w for _, _, w in edges) == 6.0

    def test_total_weight(self):
        g = Graph()
        g.add_edge(1, 2, 1.5)
        g.add_edge(2, 3, 2.5)
        assert g.total_weight() == 4.0


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        h = g.copy()
        h.remove_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not h.has_edge(1, 2)

    def test_subgraph_induced(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert not sub.has_node(4)

    def test_subgraph_ignores_absent_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        sub = g.subgraph([1, 2, 99])
        assert sub.num_nodes == 2

    def test_edge_subgraph(self):
        g = Graph()
        g.add_edge(1, 2, 5.0)
        g.add_edge(2, 3, 6.0)
        sub = g.edge_subgraph([(1, 2)])
        assert sub.has_edge(1, 2)
        assert sub.weight(1, 2) == 5.0
        assert not sub.has_node(3)


class TestConnectivity:
    def test_connected_component(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        assert g.connected_component(1) == {1, 2}
        assert g.connected_component(3) == {3, 4}

    def test_is_connected_full(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.is_connected()
        g.add_node(99)
        assert not g.is_connected()

    def test_is_connected_within_subset(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(10, 11)
        assert g.is_connected(within=[1, 3])
        assert not g.is_connected(within=[1, 10])

    def test_is_connected_within_uses_full_graph_paths(self):
        # the subset {1, 3} induces no edges but is connected through 2
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.is_connected(within=[1, 3])


class TestEdgeKey:
    def test_orders_comparable_nodes(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key(1, 2) == (1, 2)

    def test_orders_mixed_nodes_deterministically(self):
        a = ("h", 1)
        b = "pin"
        assert edge_key(a, b) == edge_key(b, a)
