"""Tests for the Net model."""

from __future__ import annotations

import pytest

from repro.errors import NetError
from repro.net import Net


class TestNet:
    def test_basic(self):
        net = Net(source=0, sinks=(1, 2))
        assert net.size == 3
        assert len(net) == 3
        assert net.terminals == (0, 1, 2)
        assert 1 in net and 0 in net and 9 not in net

    def test_iteration(self):
        net = Net(source="s", sinks=("a", "b"))
        assert list(net) == ["s", "a", "b"]

    def test_no_sinks_rejected(self):
        with pytest.raises(NetError):
            Net(source=0, sinks=())

    def test_duplicate_sink_rejected(self):
        with pytest.raises(NetError):
            Net(source=0, sinks=(1, 1))

    def test_source_as_sink_rejected(self):
        with pytest.raises(NetError):
            Net(source=0, sinks=(0, 1))

    def test_sinks_normalized_to_tuple(self):
        net = Net(source=0, sinks=[1, 2])
        assert isinstance(net.sinks, tuple)

    def test_from_terminals(self):
        net = Net.from_terminals([5, 6, 7], name="n")
        assert net.source == 5
        assert net.sinks == (6, 7)
        assert net.name == "n"

    def test_from_terminals_too_short(self):
        with pytest.raises(NetError):
            Net.from_terminals([1])

    def test_relabel_with_dict(self):
        net = Net(source="a", sinks=("b",))
        mapped = net.relabel({"a": 1, "b": 2})
        assert mapped.source == 1 and mapped.sinks == (2,)

    def test_relabel_with_callable(self):
        net = Net(source=1, sinks=(2, 3), name="x")
        mapped = net.relabel(lambda n: n * 10)
        assert mapped.terminals == (10, 20, 30)
        assert mapped.name == "x"

    def test_name_not_part_of_equality(self):
        assert Net(source=0, sinks=(1,), name="a") == Net(
            source=0, sinks=(1,), name="b"
        )

    def test_frozen(self):
        net = Net(source=0, sinks=(1,))
        with pytest.raises(Exception):
            net.source = 9
