"""Tests for graph and net generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import (
    grid_graph,
    random_connected_graph,
    random_net,
    random_nets,
)


class TestGridGraph:
    def test_dimensions(self):
        g = grid_graph(4, 3)
        assert g.num_nodes == 12
        # edges: 3*3 horizontal rows? (w-1)*h + w*(h-1)
        assert g.num_edges == 3 * 3 + 4 * 2

    def test_single_node(self):
        g = grid_graph(1, 1)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_invalid_dimensions(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_weights(self):
        g = grid_graph(3, 3, weight=2.5)
        assert all(w == 2.5 for _, _, w in g.edges())

    def test_four_neighborhood(self):
        g = grid_graph(5, 5)
        assert g.degree((2, 2)) == 4
        assert g.degree((0, 0)) == 2
        assert g.degree((0, 2)) == 3


class TestRandomConnectedGraph:
    def test_exact_edge_count(self):
        g = random_connected_graph(30, 100, random.Random(1))
        assert g.num_nodes == 30
        assert g.num_edges == 100
        assert g.is_connected()

    def test_minimum_edges_is_tree(self):
        g = random_connected_graph(10, 9, random.Random(2))
        assert g.num_edges == 9
        assert g.is_connected()

    def test_too_few_edges_rejected(self):
        with pytest.raises(GraphError):
            random_connected_graph(10, 8, random.Random(0))

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            random_connected_graph(5, 11, random.Random(0))

    def test_weight_bounds(self):
        g = random_connected_graph(
            20, 50, random.Random(3), min_weight=2.0, max_weight=3.0
        )
        assert all(2.0 <= w <= 3.0 for _, _, w in g.edges())

    def test_deterministic_given_seed(self):
        g1 = random_connected_graph(15, 40, random.Random(7))
        g2 = random_connected_graph(15, 40, random.Random(7))
        assert sorted(map(repr, g1.edges())) == sorted(map(repr, g2.edges()))

    def test_paper_cpu_instance_size(self):
        # the §5 CPU-time instances must be constructible
        g = random_connected_graph(50, 1000, random.Random(4))
        assert g.num_nodes == 50 and g.num_edges == 1000


class TestRandomNets:
    def test_distinct_pins(self):
        g = grid_graph(6, 6)
        net = random_net(g, 5, random.Random(1))
        assert len(set(net.terminals)) == 5

    def test_pins_in_graph(self):
        g = grid_graph(6, 6)
        net = random_net(g, 4, random.Random(2))
        assert all(g.has_node(t) for t in net.terminals)

    def test_too_many_pins(self):
        g = grid_graph(2, 2)
        with pytest.raises(GraphError):
            random_net(g, 5, random.Random(0))

    def test_batch_generation(self):
        g = grid_graph(8, 8)
        nets = random_nets(g, 10, (2, 5), random.Random(3))
        assert len(nets) == 10
        assert all(2 <= n.size <= 5 for n in nets)
        assert all(n.name == f"n{i}" for i, n in enumerate(nets))
