"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph import Graph, grid_graph, random_connected_graph
from repro.net import Net


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden routing fixtures under "
            "tests/differential/goldens/ instead of asserting "
            "against them"
        ),
    )


@pytest.fixture
def update_goldens(request):
    """True when the run should regenerate golden files."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rng():
    """A deterministic RNG; reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_grid():
    """A 6x6 unit grid graph."""
    return grid_graph(6, 6)


@pytest.fixture
def medium_grid():
    """A 10x10 unit grid graph."""
    return grid_graph(10, 10)


@pytest.fixture
def triangle_graph():
    """A 4-node diamond with a profitable Steiner point.

    Terminals A, B, C sit around hub S; direct edges cost 3 each while
    the hub path costs 2+2, so the optimal 3-terminal Steiner tree uses
    the hub (cost 6 vs 6 via two direct edges... weights chosen so the
    hub strictly wins: direct edges cost 5, hub spokes cost 2).
    """
    g = Graph()
    for t in ("A", "B", "C"):
        g.add_edge(t, "S", 2.0)
    g.add_edge("A", "B", 5.0)
    g.add_edge("B", "C", 5.0)
    g.add_edge("A", "C", 5.0)
    return g


@pytest.fixture
def path_graph():
    """A simple weighted path a-b-c-d-e with unit edges."""
    g = Graph()
    for u, v in zip("abcd", "bcde"):
        g.add_edge(u, v, 1.0)
    return g


def random_instance(seed: int, num_pins: int = 4, size: int = 8):
    """A (graph, net) pair on a small congested grid — helper, not fixture."""
    rnd = random.Random(seed)
    g = grid_graph(size, size)
    # random perturbation of weights to break ties and model congestion
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0 + rnd.random())
    nodes = list(g.nodes)
    pins = rnd.sample(nodes, num_pins)
    return g, Net(source=pins[0], sinks=tuple(pins[1:]))
