"""Tests for the AHHK Prim–Dijkstra tradeoff baseline [9]."""

from __future__ import annotations

import pytest

from repro.arborescence import (
    djka,
    idom,
    pd_tradeoff_curve,
    pfa,
    prim_dijkstra,
)
from repro.errors import GraphError
from repro.graph import ShortestPathCache, dijkstra, is_tree
from repro.steiner import kmb
from tests.conftest import random_instance


class TestEndpoints:
    def test_c1_is_shortest_paths_tree(self):
        for seed in range(6):
            g, net = random_instance(seed + 1500, num_pins=5)
            tree = prim_dijkstra(g, net, c=1.0)
            assert tree.is_arborescence(g)

    def test_c0_is_wirelength_oriented(self):
        # at c=0 the growth is Prim over the closure — same family as
        # KMB's distance-graph MST, so costs track closely
        for seed in range(6):
            g, net = random_instance(seed + 1550, num_pins=5)
            pd0 = prim_dijkstra(g, net, c=0.0).cost
            ref = kmb(g, net).cost
            assert pd0 <= 1.25 * ref

    def test_invalid_c(self):
        g, net = random_instance(0, num_pins=3)
        with pytest.raises(GraphError):
            prim_dijkstra(g, net, c=1.5)


class TestStructure:
    @pytest.mark.parametrize("c", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_valid_tree_for_all_c(self, c):
        g, net = random_instance(17, num_pins=6)
        tree = prim_dijkstra(g, net, c=c)
        assert is_tree(tree.tree)
        for t in net.terminals:
            assert tree.tree.has_node(t)

    def test_curve_endpoints(self):
        total_c0 = total_c1 = 0.0
        for seed in range(6):
            g, net = random_instance(seed + 1700, num_pins=6)
            curve = pd_tradeoff_curve(g, net, [0.0, 0.5, 1.0])
            # the c=1 endpoint is radius-optimal on every instance
            assert curve[-1][2] == pytest.approx(1.0)
            total_c0 += curve[0][1]
            total_c1 += curve[-1][1]
        # in aggregate, the wirelength-oriented endpoint is cheaper
        # (per-instance reversals are possible for a heuristic sweep)
        assert total_c0 <= total_c1 + 1e-9


class TestPaperClaim:
    def test_pfa_idom_beat_pd1(self):
        """§2: tuned fully toward pathlength, AHHK matches Dijkstra's
        tree; PFA/IDOM get the same optimal radius cheaper (aggregate)."""
        total_pd1 = total_pfa = total_idom = 0.0
        for seed in range(8):
            g, net = random_instance(seed + 1600, num_pins=6)
            cache = ShortestPathCache(g)
            total_pd1 += prim_dijkstra(g, net, c=1.0, cache=cache).cost
            total_pfa += pfa(g, net, cache).cost
            total_idom += idom(g, net, cache=cache).cost
        assert total_pfa <= total_pd1 + 1e-6
        assert total_idom <= total_pd1 + 1e-6

    def test_pd1_matches_djka_radius(self):
        g, net = random_instance(31, num_pins=5)
        dist, _ = dijkstra(g, net.source)
        pd1 = prim_dijkstra(g, net, c=1.0)
        dj = djka(g, net)
        assert pd1.max_pathlength == pytest.approx(dj.max_pathlength)
