"""Tests for tree validation and pruning helpers."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    assert_valid_steiner_tree,
    grid_graph,
    is_tree,
    prune_non_terminal_leaves,
    spans,
    tree_paths_from,
)


def make_path(*nodes):
    g = Graph()
    for u, v in zip(nodes, nodes[1:]):
        g.add_edge(u, v, 1.0)
    return g


class TestIsTree:
    def test_empty_is_tree(self):
        assert is_tree(Graph())

    def test_single_node(self):
        g = Graph()
        g.add_node(1)
        assert is_tree(g)

    def test_path_is_tree(self):
        assert is_tree(make_path(1, 2, 3, 4))

    def test_cycle_is_not(self):
        g = make_path(1, 2, 3)
        g.add_edge(3, 1, 1.0)
        assert not is_tree(g)

    def test_forest_is_not(self):
        g = make_path(1, 2)
        g.add_edge(3, 4, 1.0)
        assert not is_tree(g)


class TestSpans:
    def test_spans(self):
        g = make_path(1, 2, 3)
        assert spans(g, [1, 3])
        assert not spans(g, [1, 9])


class TestAssertValid:
    def test_accepts_valid(self):
        g = make_path("a", "b", "c")
        assert_valid_steiner_tree(g, ["a", "c"])

    def test_rejects_missing_terminal(self):
        g = make_path("a", "b")
        with pytest.raises(GraphError, match="misses"):
            assert_valid_steiner_tree(g, ["a", "z"])

    def test_rejects_cycle(self):
        g = make_path(1, 2, 3)
        g.add_edge(3, 1, 1.0)
        with pytest.raises(GraphError, match="not a tree"):
            assert_valid_steiner_tree(g, [1, 2])

    def test_rejects_edge_not_in_host(self):
        tree = make_path(1, 2)
        host = Graph()
        host.add_node(1)
        host.add_node(2)
        with pytest.raises(GraphError, match="not in host"):
            assert_valid_steiner_tree(tree, [1, 2], host=host)

    def test_rejects_weight_mismatch(self):
        tree = make_path(1, 2)
        host = Graph()
        host.add_edge(1, 2, 5.0)
        with pytest.raises(GraphError, match="weight"):
            assert_valid_steiner_tree(tree, [1, 2], host=host)


class TestPruning:
    def test_prunes_dangling_chain(self):
        g = make_path("t1", "a", "b", "t2")
        g.add_edge("b", "x", 1.0)
        g.add_edge("x", "y", 1.0)
        prune_non_terminal_leaves(g, ["t1", "t2"])
        assert not g.has_node("x")
        assert not g.has_node("y")
        assert g.has_node("a")  # interior, kept

    def test_keeps_terminal_leaves(self):
        g = make_path("t1", "a", "t2")
        prune_non_terminal_leaves(g, ["t1", "t2"])
        assert g.num_nodes == 3

    def test_cascading_prune(self):
        g = make_path("t", "a", "b", "c", "d")
        prune_non_terminal_leaves(g, ["t"])
        assert g.num_nodes == 1

    def test_returns_same_object(self):
        g = make_path(1, 2)
        assert prune_non_terminal_leaves(g, [1, 2]) is g


class TestTreePaths:
    def test_distances(self):
        g = make_path("r", "a", "b")
        g.add_edge("a", "c", 2.0)
        dist, pred = tree_paths_from(g, "r")
        assert dist == {"r": 0.0, "a": 1.0, "b": 2.0, "c": 3.0}
        assert pred["c"] == "a"

    def test_missing_root_raises(self):
        with pytest.raises(GraphError):
            tree_paths_from(Graph(), "x")
