"""Tests for the routing-engine subsystem (repro.engine).

Covers the acceptance contract of the engine redesign:

* serial sessions are bit-identical to the seed ``FPGARouter.route``;
* thread/process sessions reproduce serial's minimum channel width and
  total wirelength on synthetic XC3000-class circuits;
* batch partitioning never co-schedules overlapping nets and preserves
  the queue order;
* Dijkstra counters, shared-cache statistics and the JSON trace are
  populated and self-consistent.
"""

from __future__ import annotations

import io
import json

import pytest

import repro
from repro.engine import (
    DEFAULT_BATCH_MARGIN,
    ENGINES,
    RoutingSession,
    TRACE_SCHEMA,
    congestion_histogram,
    create_executor,
    load_trace,
    net_region,
    partition_batches,
    regions_overlap,
)
from repro.errors import NetError, RoutingError
from repro.fpga import (
    PlacedCircuit,
    PlacedNet,
    RoutingResourceGraph,
    circuit_spec,
    scaled_spec,
    synthesize_circuit,
    xc3000,
)
from repro.graph import (
    DijkstraCounters,
    Graph,
    ShortestPathCache,
    dijkstra,
    get_dijkstra_counters,
    grid_graph,
    set_dijkstra_counters,
)
from repro.router import (
    FPGARouter,
    RouterConfig,
    minimum_channel_width,
    route_circuit,
)


@pytest.fixture(scope="module")
def small_circuit():
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=1)


@pytest.fixture(scope="module")
def wide_circuit():
    """A larger XC3000-class circuit whose array admits real batches."""
    spec = scaled_spec(circuit_spec("busc"), 0.6)
    return synthesize_circuit(spec, seed=1)


def tiny_circuit():
    """Four hand-placed nets on a 3x3 array."""
    nets = [
        PlacedNet("a", (0, 0, 0), ((2, 2, 0),)),
        PlacedNet("b", (0, 2, 0), ((2, 0, 0),)),
        PlacedNet("c", (1, 1, 0), ((0, 1, 0), (2, 1, 0))),
        PlacedNet("d", (1, 0, 0), ((1, 2, 0),)),
    ]
    return PlacedCircuit(name="tiny", rows=3, cols=3, nets=nets)


def _arch_for(circuit, width):
    return xc3000(circuit.rows, circuit.cols, width)


def _assert_routes_identical(a, b):
    assert len(a.routes) == len(b.routes)
    for ra, rb in zip(a.routes, b.routes):
        assert ra.name == rb.name
        assert ra.algorithm == rb.algorithm
        assert ra.wirelength == rb.wirelength
        assert ra.pathlengths == rb.pathlengths
        assert ra.optimal_pathlengths == rb.optimal_pathlengths
        assert sorted(map(repr, ra.edges)) == sorted(map(repr, rb.edges))


# ----------------------------------------------------------------------
# batch partitioning
# ----------------------------------------------------------------------
class TestBatching:
    def _net(self, name, x0, y0, x1, y1):
        return PlacedNet(name, (x0, y0, 0), ((x1, y1, 1),))

    def test_region_is_inflated_bbox(self):
        net = self._net("n", 2, 3, 5, 4)
        assert net_region(net, margin=2) == (0, 1, 7, 6)

    def test_regions_overlap_cases(self):
        assert regions_overlap((0, 0, 2, 2), (2, 2, 4, 4))  # corner touch
        assert regions_overlap((0, 0, 5, 5), (1, 1, 2, 2))  # containment
        assert not regions_overlap((0, 0, 2, 2), (3, 0, 5, 2))

    def test_overlapping_nets_never_co_scheduled(self):
        nets = [
            self._net("a", 0, 0, 1, 1),
            self._net("b", 20, 0, 21, 1),     # disjoint from a
            self._net("c", 1, 1, 2, 2),       # overlaps a
            self._net("d", 40, 40, 41, 41),   # disjoint from everything
        ]
        batches = partition_batches(nets, margin=2)
        for batch in batches:
            regions = [net_region(n, 2) for n in batch]
            for i in range(len(regions)):
                for j in range(i + 1, len(regions)):
                    assert not regions_overlap(regions[i], regions[j]), (
                        batch[i].name,
                        batch[j].name,
                    )

    def test_batches_are_contiguous_and_order_preserving(self):
        nets = [
            self._net(f"n{i}", 3 * (i % 5), 3 * (i // 5),
                      3 * (i % 5) + 1, 3 * (i // 5) + 1)
            for i in range(15)
        ]
        batches = partition_batches(nets, margin=1)
        flattened = [n for batch in batches for n in batch]
        assert flattened == nets
        assert all(batch for batch in batches)

    def test_all_overlapping_yields_singletons(self):
        nets = [self._net(f"n{i}", 0, 0, 1, 1) for i in range(4)]
        assert [len(b) for b in partition_batches(nets)] == [1, 1, 1, 1]

    def test_empty_queue(self):
        assert partition_batches([]) == []


# ----------------------------------------------------------------------
# Dijkstra counters
# ----------------------------------------------------------------------
class TestDijkstraCounters:
    def test_record_and_merge(self):
        c = DijkstraCounters()
        c.record(10, 7)
        c.record(5, 3, pruned=4)
        assert c.snapshot() == {
            "calls": 2, "heap_pops": 15, "relaxations": 10, "pruned": 4
        }
        other = DijkstraCounters()
        other.merge(c.snapshot())
        assert other.snapshot() == c.snapshot()
        c.reset()
        assert c.snapshot()["calls"] == 0

    def test_dijkstra_threads_through_installed_counters(self):
        g = grid_graph(5, 5)
        counters = DijkstraCounters()
        previous = set_dijkstra_counters(counters)
        try:
            dijkstra(g, (0, 0))
            assert get_dijkstra_counters() is counters
        finally:
            set_dijkstra_counters(previous)
        snap = counters.snapshot()
        assert snap["calls"] == 1
        assert snap["heap_pops"] >= 25   # every node popped at least once
        assert snap["relaxations"] > 0

    def test_uninstalled_counters_do_not_leak(self):
        previous = set_dijkstra_counters(None)
        try:
            g = grid_graph(3, 3)
            dijkstra(g, (0, 0))  # must not blow up without counters
        finally:
            set_dijkstra_counters(previous)


# ----------------------------------------------------------------------
# shared cache accounting + partial keying
# ----------------------------------------------------------------------
class TestCacheAccounting:
    def test_hits_misses_invalidations(self):
        g = grid_graph(4, 4)
        cache = ShortestPathCache(g)
        cache.sssp((0, 0))
        cache.sssp((0, 0))
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        g.add_edge((0, 0), (3, 3), 0.5)
        cache.sssp((0, 0))
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["misses"] == 2

    def test_limited_run_never_answers_full_query(self):
        g = grid_graph(5, 5)
        cache = ShortestPathCache(g)
        dist, _ = cache.sssp_limited((0, 0), targets=[(1, 1)])
        assert (1, 1) in dist
        # the limited result must not be mistaken for a full SSSP
        full, _ = cache.sssp((0, 0))
        assert len(full) == 25
        assert cache.stats()["misses"] == 2  # both computed

    def test_full_entry_answers_limited_query(self):
        g = grid_graph(4, 4)
        cache = ShortestPathCache(g)
        cache.sssp((0, 0))
        dist, _ = cache.sssp_limited((0, 0), targets=[(3, 3)])
        assert (3, 3) in dist
        assert cache.stats()["hits"] == 1

    def test_rebind_drops_entries_and_counts(self):
        g = grid_graph(3, 3)
        cache = ShortestPathCache(g)
        cache.sssp((0, 0))
        cache.rebind(grid_graph(3, 3))
        assert len(cache) == 0
        assert cache.stats()["entries_invalidated"] >= 1
        cache.sssp((0, 0))  # works against the new graph
        assert cache.stats()["misses"] == 2


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class TestExecutors:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_map_preserves_order(self, engine):
        ex = create_executor(engine, max_workers=2)
        try:
            assert ex.map(_square, list(range(8))) == [
                i * i for i in range(8)
            ]
        finally:
            ex.close()

    def test_unknown_engine_rejected(self):
        with pytest.raises(RoutingError):
            create_executor("gpu")
        with pytest.raises(RoutingError):
            RoutingSession(
                xc3000(3, 3, 4), engine="gpu"
            )


def _square(x):
    return x * x


# ----------------------------------------------------------------------
# serial bit-identity with the seed router
# ----------------------------------------------------------------------
class TestSerialBitIdentity:
    def test_tiny_circuit(self):
        circuit = tiny_circuit()
        arch = _arch_for(circuit, 4)
        cfg = RouterConfig(algorithm="kmb")
        ref = FPGARouter(arch, cfg).route(circuit)
        res = RoutingSession(arch, cfg).route(circuit)
        _assert_routes_identical(ref, res)
        assert (ref.passes_used, ref.channel_width) == (
            res.passes_used, res.channel_width
        )

    def test_synthetic_circuit_multi_pass(self, small_circuit):
        # W=3 forces several move-to-front passes; identity must hold
        # across resets, shared-cache reuse and congestion reweighting
        arch = _arch_for(small_circuit, 3)
        cfg = RouterConfig(algorithm="kmb")
        ref = FPGARouter(arch, cfg).route(small_circuit)
        res = RoutingSession(arch, cfg).route(small_circuit)
        assert ref.passes_used > 1
        _assert_routes_identical(ref, res)

    def test_route_circuit_shim_warns_and_matches(self, small_circuit):
        arch = _arch_for(small_circuit, 7)
        cfg = RouterConfig(algorithm="kmb")
        ref = FPGARouter(arch, cfg).route(small_circuit)
        with pytest.warns(DeprecationWarning, match="repro.route"):
            res = route_circuit(small_circuit, arch, cfg)
        _assert_routes_identical(ref, res)


# ----------------------------------------------------------------------
# parallel determinism (the acceptance criterion)
# ----------------------------------------------------------------------
class TestParallelDeterminism:
    @pytest.mark.parametrize("engine", ["thread", "process"])
    def test_same_width_and_wirelength_as_serial(self, engine, small_circuit):
        cfg = RouterConfig(algorithm="kmb")
        w_serial, r_serial = minimum_channel_width(
            small_circuit, xc3000, cfg
        )
        w_par, r_par = minimum_channel_width(
            small_circuit, xc3000, cfg, engine=engine, max_workers=2
        )
        assert w_par == w_serial
        assert r_par.total_wirelength == pytest.approx(
            r_serial.total_wirelength
        )

    def test_thread_engine_speculates_on_wide_array(self, wide_circuit):
        cfg = RouterConfig(algorithm="kmb")
        serial = RoutingSession(_arch_for(wide_circuit, 8), cfg)
        r1 = serial.route(wide_circuit)
        threaded = RoutingSession(
            _arch_for(wide_circuit, 8), cfg, engine="thread", max_workers=4
        )
        r2 = threaded.route(wide_circuit)
        assert r2.total_wirelength == pytest.approx(r1.total_wirelength)
        totals = threaded.trace.totals()
        # the wide array must produce at least one multi-net batch and
        # commit at least one net speculatively
        assert totals["max_batch_size"] > 1
        assert totals["speculative_commits"] > 0
        # conflict fallbacks are allowed, lost work is not
        assert totals["speculative_commits"] + totals[
            "conflict_reroutes"
        ] + totals["serial_routes"] >= len(wide_circuit.nets)


# ----------------------------------------------------------------------
# trace / observability
# ----------------------------------------------------------------------
class TestTrace:
    def test_trace_document(self, small_circuit):
        arch = _arch_for(small_circuit, 7)
        session = RoutingSession(
            arch, RouterConfig(algorithm="kmb"), engine="thread"
        )
        session.route(small_circuit)
        buf = io.StringIO()
        session.write_trace(buf)
        doc = json.loads(buf.getvalue())
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["engine"] == "thread"
        assert doc["outcome"] == "complete"
        assert doc["total_wirelength"] > 0
        assert len(doc["passes"]) == doc["passes_used"]
        p = doc["passes"][0]
        assert sum(p["batch_sizes"]) == len(small_circuit.nets)
        assert p["dijkstra"]["calls"] > 0
        assert p["seconds"] >= 0
        assert p["congestion"]["spans"] > 0
        # nonzero cache-hit statistics (acceptance criterion)
        assert doc["totals"]["cache"]["hits"] > 0
        assert doc["totals"]["dijkstra"]["heap_pops"] > 0

    def test_load_trace_roundtrip_and_schema_check(self, tmp_path, small_circuit):
        arch = _arch_for(small_circuit, 7)
        session = RoutingSession(arch, RouterConfig(algorithm="kmb"))
        session.route(small_circuit)
        path = tmp_path / "trace.json"
        session.write_trace(str(path))
        doc = load_trace(str(path))
        assert doc["circuit"] == small_circuit.name
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            load_trace(str(bad))

    def test_unroutable_trace_outcome(self, small_circuit):
        arch = _arch_for(small_circuit, 1)
        session = RoutingSession(arch, RouterConfig(algorithm="kmb"))
        with pytest.raises(repro.UnroutableError):
            session.route(small_circuit)
        assert session.trace.outcome == "unroutable"
        assert session.trace.passes_used >= 1

    def test_write_trace_before_route_rejected(self):
        session = RoutingSession(xc3000(3, 3, 4))
        with pytest.raises(RoutingError):
            session.write_trace(io.StringIO())

    def test_congestion_histogram_shape(self):
        rrg = RoutingResourceGraph(xc3000(3, 3, 4))
        hist = congestion_histogram(rrg)
        assert len(hist["counts"]) == hist["bins"]
        assert sum(hist["counts"]) == hist["spans"]
        assert hist["mean"] == 0.0 and hist["max"] == 0.0

    def test_report_renders_trace(self, tmp_path, small_circuit):
        from repro.analysis.report import render_trace

        arch = _arch_for(small_circuit, 7)
        session = RoutingSession(arch, RouterConfig(algorithm="kmb"))
        session.route(small_circuit)
        path = tmp_path / "trace.json"
        session.write_trace(str(path))
        text = render_trace(load_trace(str(path)))
        assert "engine=serial" in text
        assert "cache h/m" in text


# ----------------------------------------------------------------------
# the repro.route() facade
# ----------------------------------------------------------------------
class TestFacade:
    def test_route_with_architecture(self, small_circuit):
        arch = _arch_for(small_circuit, 7)
        result = repro.route(
            small_circuit, arch=arch,
            config=repro.RouterConfig(algorithm="kmb"),
        )
        assert result.complete
        assert result.channel_width == 7

    def test_route_by_benchmark_name_searches_width(self, tmp_path):
        trace = tmp_path / "t.json"
        result = repro.route(
            "term1", fraction=0.2, seed=1, engine="thread",
            config=repro.RouterConfig(algorithm="kmb"),
            trace=str(trace),
        )
        assert result.complete
        doc = load_trace(str(trace))
        assert doc["channel_width"] == result.channel_width
        assert doc["engine"] == "thread"

    def test_rejects_unknown_input_type(self):
        with pytest.raises(NetError):
            repro.route(42)

    def test_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            RouterConfig("kmb")  # positional construction is an error

    def test_lazy_exports(self):
        assert repro.RoutingSession is RoutingSession
        assert "RoutingSession" in dir(repro)
        with pytest.raises(AttributeError):
            repro.no_such_symbol


# ----------------------------------------------------------------------
# CLI integration of the shared engine option group
# ----------------------------------------------------------------------
class TestEngineCLI:
    def test_route_engine_and_trace(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "out.json"
        assert main([
            "route", "term1", "--fraction", "0.15",
            "--algorithm", "kmb", "--engine", "thread",
            "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "engine=thread" in out
        assert load_trace(str(trace))["engine"] == "thread"

    def test_hidden_legacy_flags_still_accepted(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "legacy.json"
        assert main([
            "route", "term1", "--fraction", "0.15",
            "--algorithm", "kmb", "--max-passes", "4",
            "--trace-file", str(trace),
        ]) == 0
        doc = load_trace(str(trace))
        assert doc["config"]["max_passes"] == 4

    def test_legacy_flags_hidden_from_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["route", "--help"])
        out = capsys.readouterr().out
        assert "--passes" in out and "--trace" in out
        assert "--max-passes" not in out
        assert "--trace-file" not in out

    def test_report_consumes_trace(self, capsys, tmp_path):
        from repro.analysis.report import render_trace
        from repro.cli import main

        trace = tmp_path / "t.json"
        assert main([
            "route", "term1", "--fraction", "0.15",
            "--algorithm", "kmb", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        text = render_trace(load_trace(str(trace)))
        assert "Minimum" not in text  # sanity: it's the trace section
        assert "pass" in text
