"""Property-based guarantees for the flat CSR graph core.

Three families of properties:

* **Round-trip fidelity** — ``Graph.freeze()`` / ``FlatGraph.thaw()``
  preserve every node, every edge, every weight, *and* the adjacency
  iteration order the dict kernels depend on.
* **Kernel bit-identity** — the flat Dijkstra / A* / bidirectional
  kernels reproduce the dict kernels' results exactly: same distances,
  same predecessors, same dict iteration order, for arbitrary random
  graphs, endpoints, cutoffs and target sets.
* **Invalidation** — mutating a graph (including the router's
  uncommit path) invalidates its memoized view, and the re-frozen view
  reflects the mutation while staying bit-identical to dict search.

Runs under `hypothesis` when it is installed; otherwise the same
property checks execute over a vendored corpus of seeds, so the suite
needs no extra dependency to stay meaningful.
"""

from __future__ import annotations

import random

import pytest

from repro.graph import (
    FlatGraph,
    GraphView,
    dijkstra,
    grid_graph,
    manhattan_heuristic,
    multi_target_dijkstra,
    random_connected_graph,
)
from repro.graph.search import bidirectional_dijkstra

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

#: vendored fallback corpus: (seed, nodes, extra edges)
SEED_CASES = [
    (0, 8, 4),
    (1, 12, 10),
    (2, 16, 20),
    (3, 20, 15),
    (4, 25, 30),
    (5, 30, 45),
    (6, 18, 6),
    (7, 40, 60),
    (8, 10, 25),
    (9, 22, 11),
]


def property_case(func):
    """Run ``func(seed, n, extra)`` under hypothesis or the corpus."""
    if HAVE_HYPOTHESIS:
        return settings(max_examples=30, deadline=None)(
            given(
                seed=st.integers(min_value=0, max_value=2**20),
                n=st.integers(min_value=2, max_value=40),
                extra=st.integers(min_value=0, max_value=60),
            )(func)
        )
    return pytest.mark.parametrize("seed,n,extra", SEED_CASES)(func)


def make_graph(seed, n, extra):
    rnd = random.Random(seed)
    g = random_connected_graph(n, min(n - 1 + extra, n * (n - 1) // 2), rnd)
    nodes = sorted(g.nodes, key=repr)
    rnd2 = random.Random(seed + 1)
    u = rnd2.choice(nodes)
    v = rnd2.choice(nodes)
    return g, u, v


def make_weighted_grid(seed, n, extra):
    side = 2 + (n % 7)
    rnd = random.Random(seed)
    g = grid_graph(side, side)
    for a, b, _ in list(g.edges()):
        g.set_weight(a, b, 0.25 + 2.0 * rnd.random())
    nodes = sorted(g.nodes)
    rnd2 = random.Random(seed + extra)
    return g, rnd2.choice(nodes), rnd2.choice(nodes)


def assert_same_adjacency(g, h):
    """Node sets, edge counts, weights AND iteration order all match."""
    assert list(g.nodes) == list(h.nodes)
    assert g.num_edges == h.num_edges
    for node in g.nodes:
        assert list(g.neighbor_items(node)) == list(h.neighbor_items(node))


@property_case
def test_freeze_thaw_round_trip(seed, n, extra):
    g, _, _ = make_graph(seed, n, extra)
    flat = g.freeze().flat
    assert flat.num_nodes == g.num_nodes
    assert flat.num_edges == g.num_edges
    assert_same_adjacency(g, flat.thaw())


@property_case
def test_csr_matches_adjacency(seed, n, extra):
    g, _, _ = make_graph(seed, n, extra)
    flat = FlatGraph.from_graph(g)
    for i, node in enumerate(flat.nodes):
        expected = [
            (flat.node_id(v), w) for v, w in g.neighbor_items(node)
        ]
        assert flat.rows()[i] == expected
    assert sorted(map(repr, flat.edges())) == sorted(map(repr, g.edges()))


@property_case
def test_flat_dijkstra_bit_identical(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    view = g.freeze()
    ref_dist, ref_pred = dijkstra(g, u)
    dist, pred = view.sssp(u)
    # identical values AND identical dict iteration order — consumers
    # (pfa_tree_graph, DominanceOracle) iterate these dicts
    assert list(dist.items()) == list(ref_dist.items())
    assert list(pred.items()) == list(ref_pred.items())


@property_case
def test_flat_early_exit_bit_identical(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    view = g.freeze()
    ref_dist, ref_pred = multi_target_dijkstra(g, u, [v])
    dist, pred = view.sssp(u, targets=[v])
    assert list(dist.items()) == list(ref_dist.items())
    assert list(pred.items()) == list(ref_pred.items())


@property_case
def test_flat_cutoff_bit_identical(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    full, _ = dijkstra(g, u)
    cutoff = sorted(full.values())[len(full) // 2]
    ref_dist, ref_pred = dijkstra(g, u, cutoff=cutoff)
    dist, pred = g.freeze().sssp(u, cutoff=cutoff)
    assert list(dist.items()) == list(ref_dist.items())
    assert list(pred.items()) == list(ref_pred.items())


@property_case
def test_flat_bidirectional_bit_identical(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    ref = bidirectional_dijkstra(g, u, v)
    got = g.freeze().bidirectional(u, v)
    assert got == ref


@property_case
def test_flat_manhattan_astar_bit_identical(seed, n, extra):
    from repro.graph.search import astar

    g, u, v = make_weighted_grid(seed, n, extra)
    h = manhattan_heuristic(g, v)
    assert h is not None
    ref_dist, ref_pred = astar(g, u, v, h)
    dist, pred = g.freeze().astar(u, v, h)
    assert list(dist.items()) == list(ref_dist.items())
    assert list(pred.items()) == list(ref_pred.items())


@property_case
def test_freeze_is_memoized_until_mutation(seed, n, extra):
    g, u, v = make_graph(seed, n, extra)
    view = g.freeze()
    assert g.freeze() is view          # memoized while version stable
    assert view.fresh(g)
    nbr, _ = next(iter(g.neighbor_items(u)))
    g.set_weight(u, nbr, 99.0)
    assert not view.fresh(g)
    view2 = g.freeze()
    assert view2 is not view           # mutation invalidated the memo
    ref_dist, _ = dijkstra(g, u)
    dist, _ = view2.sssp(u)
    assert list(dist.items()) == list(ref_dist.items())


@property_case
def test_post_uncommit_refreeze_bit_identical(seed, n, extra):
    """The router's rip-up path: route a net on a small device, commit
    it, uncommit it, and check the re-frozen view still searches
    bit-identically to the mutated dict graph."""
    from repro.fpga import xc4000
    from repro.fpga.routing_graph import RoutingResourceGraph
    from repro.graph.core import Graph

    side = 2 + (n % 3)
    rrg = RoutingResourceGraph(xc4000(side, side, 3))
    rrg.detach_all_pins()  # commit removes pins; uncommit never restores them
    g = rrg.graph
    stale = g.freeze()
    junctions = [x for x in g.nodes if x[0] == "J"]
    rnd = random.Random(seed)
    a = rnd.choice(junctions)
    # commit/uncommit an arbitrary single-edge tree touching `a`
    b, w = next(iter(g.neighbor_items(a)))
    tree = Graph()
    tree.add_edge(a, b, w)
    rrg.commit(tree)
    assert not stale.fresh(g)
    rrg.uncommit(tree)
    view = g.freeze()
    assert view.fresh(g)
    ref_dist, ref_pred = dijkstra(g, a)
    dist, pred = view.sssp(a)
    assert list(dist.items()) == list(ref_dist.items())
    assert list(pred.items()) == list(ref_pred.items())


@property_case
def test_incremental_refreeze_matches_full_rebuild(seed, n, extra):
    """freeze() after arbitrary mutation bursts — edge adds/removals,
    weight changes, node removals, remove-then-re-add — must present
    exactly the graph a from-scratch snapshot would: same node
    enumeration, same adjacency, same SSSP item order.  This is the
    patch path (ghost slots, tail re-insertion) that the router's
    commit/uncommit cycle exercises per net."""
    rnd = random.Random(seed)
    g, _, _ = make_graph(seed, n, extra)
    g.freeze()  # start the dirty-tracking lineage
    for _ in range(4):  # several freeze windows in one lineage
        nodes = sorted(g.nodes, key=repr)
        for _ in range(1 + extra % 5):
            op = rnd.randrange(5)
            u, v = rnd.choice(nodes), rnd.choice(nodes)
            if op == 0 and u != v:
                g.add_edge(u, v, round(rnd.uniform(0.5, 4.0), 3))
            elif op == 1 and g.has_edge(u, v):
                g.remove_edge(u, v)
            elif op == 2 and g.has_edge(u, v):
                g.set_weight(u, v, round(rnd.uniform(0.5, 4.0), 3))
            elif op == 3 and g.num_nodes > 2:
                g.remove_node(u)
                nodes = sorted(g.nodes, key=repr)
            else:
                g.add_node(("re", rnd.randrange(3)))  # may re-add
        view = g.freeze()
        flat = view.flat
        fresh = FlatGraph.from_graph(g)
        assert flat.num_nodes == fresh.num_nodes == g.num_nodes
        assert flat.num_edges == fresh.num_edges == g.num_edges
        assert list(view.nodes) == list(g.nodes)
        assert_same_adjacency(g, flat.thaw())
        src = next(iter(g.nodes))
        ref_dist, ref_pred = dijkstra(g, src)
        dist, pred = view.sssp(src)
        assert list(dist.items()) == list(ref_dist.items())
        assert list(pred.items()) == list(ref_pred.items())


@property_case
def test_view_reflects_graph_surface(seed, n, extra):
    g, u, _ = make_graph(seed, n, extra)
    view = GraphView.from_graph(g)
    assert view.num_nodes == g.num_nodes
    assert view.num_edges == g.num_edges
    assert list(view.nodes) == list(g.nodes)
    assert view.has_node(u)
    assert not view.has_node(("no", "such", "node"))
