"""Socket-level chaos soak for the HTTP service.

Everything flows through :class:`chaos_proxy.ChaosProxy`, which
injects one seeded fault per TCP connection — delays, silent drops,
RST aborts, truncated responses, byte-trickled responses.  The bar:

* the server never crashes (``/v1/healthz`` answers directly at the
  end, and every accepted job reaches a terminal state);
* every accepted job completes with a result the independent checker
  certifies at ``level="full"`` — chaos may slow work down, it may
  never corrupt it;
* deliberately shed requests (a low-priority submit while degraded)
  are refused with a typed 429 and counted in ``/v1/metrics``;
* SSE watchers living through the proxy survive dropped and truncated
  streams via ``Last-Event-ID`` reconnects without losing or
  re-seeing a trace line;
* every configured fault class actually fired (the proxy counts).

Duplicate submits caused by ambiguous faults (a ``partial`` cutting
the 201 response after the server journaled the job) are absorbed by
the service's request-fingerprint dedupe: the retry returns the same
job id, so "accepted jobs" is a set.
"""

from __future__ import annotations

import threading
import time

import pytest

from tests.chaos_proxy import ChaosProxy
from repro.errors import AdmissionError, ReproError
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit
from repro.fpga.architecture import xc3000
from repro.router import RouterConfig
from repro.service import (
    AdmissionPolicy,
    BackgroundServer,
    OverloadPolicy,
    RoutingService,
    ServiceClient,
    TransportError,
)
from repro.validate.checker import verify_result

KMB = RouterConfig(algorithm="kmb")
JOBS = 8
WATCHERS = 4


def _submit_through_chaos(url, circuit, *, tenant, attempts=30):
    """Submit with test-level patience on top of client retries."""
    last = None
    for _ in range(attempts):
        client = ServiceClient(
            url, retries=2, backoff_s=0.05, timeout_s=20.0,
            breaker=None,
        )
        try:
            return client.submit(
                circuit, config=KMB, tenant=tenant
            )
        except TransportError as exc:
            last = exc
            time.sleep(0.05)
    raise AssertionError(f"submit never got through chaos: {last!r}")


def _watch_through_chaos(url, job_id, out, done):
    """Collect every trace id + the terminal state, surviving faults.

    ``client.events`` already reconnects with ``Last-Event-ID``; this
    adds test-level patience for runs of consecutive drop faults by
    re-entering from the last id seen.
    """
    seen = 0
    try:
        for _ in range(60):
            client = ServiceClient(
                url, retries=3, backoff_s=0.05, timeout_s=20.0,
                breaker=None,
            )
            try:
                for event, _data, eid in client.events(
                    job_id, last_event_id=seen, heartbeats=False
                ):
                    if event == "trace":
                        out.append(eid)
                        seen = max(seen, eid)
                    elif event == "state":
                        out.append("state")
                        return
            except (TransportError, OSError):
                time.sleep(0.05)
        out.append("gave-up")
    finally:
        done.set()


def test_chaos_soak_never_corrupts(tmp_path):
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    circuits = {
        seed: synthesize_circuit(spec, seed=seed)
        for seed in range(100, 100 + JOBS)
    }
    service = RoutingService(
        str(tmp_path / "store"),
        policy=AdmissionPolicy(
            max_queue_depth=32,
            max_jobs_per_tenant=32,
            tenant_priorities={"vip": 5},
        ),
    )
    background = BackgroundServer(
        service,
        overload=OverloadPolicy(
            queue_shed_fraction=0.125,  # degraded at 4 of 32 queued
            shed_priority_floor=1,
            retry_after_s=0.2,
        ),
    )
    host, port = background.start()
    direct = ServiceClient(f"http://{host}:{port}", backoff_s=0.05)
    proxy = ChaosProxy(
        (host, port),
        seed=7,
        delay_p=0.10, delay_s=0.02,
        drop_p=0.12,
        reset_p=0.08,
        partial_p=0.10, partial_bytes=80,
        trickle_p=0.10, trickle_chunk=9, trickle_delay_s=0.001,
        io_timeout_s=30.0,
    )
    proxy.start()
    worker = None
    try:
        # -- submit storm through the proxy (no workers yet) ---------
        jobs = {}
        for seed, circuit in circuits.items():
            record = _submit_through_chaos(
                proxy.url, circuit, tenant="vip"
            )
            jobs[seed] = record["job_id"]
        assert len(set(jobs.values())) == JOBS  # dedupe-safe storm

        # -- deterministic shed phase: the queue is loaded, the node
        #    is degraded, a walk-in (priority 0) is refused honestly
        doc = direct.healthz()
        assert doc["ok"] is True and doc["status"] == "degraded"
        walkin = ServiceClient(f"http://{host}:{port}", retries=0)
        with pytest.raises(AdmissionError) as caught:
            walkin.submit(
                synthesize_circuit(spec, seed=999),
                config=KMB, width=3, tenant="walkin",
            )
        assert caught.value.code == "OVERLOADED"
        assert direct.metrics()["http"]["shed"]["submits"] >= 1

        # -- start the worker pool and SSE watchers ------------------
        worker = threading.Thread(
            target=lambda: service.serve(
                workers=3, poll_s=0.05, exit_when_idle=True,
                install_signal_handlers=False,
            ),
            daemon=True,
        )
        worker.start()

        watched = list(jobs.items())[:WATCHERS]
        streams = {seed: [] for seed, _ in watched}
        flags = []
        for seed, job_id in watched:
            done = threading.Event()
            flags.append(done)
            threading.Thread(
                target=_watch_through_chaos,
                args=(proxy.url, job_id, streams[seed], done),
                daemon=True,
            ).start()

        # -- every accepted job must finish, chaos or not ------------
        for seed, job_id in jobs.items():
            record = direct.wait(job_id, timeout_s=300.0)
            assert record["state"] == "done", record
            assert record["verified"] is True
        worker.join(timeout=60)
        assert not worker.is_alive()

        for done in flags:
            assert done.wait(60)
        for seed, got in streams.items():
            assert got, f"watcher for seed {seed} saw nothing"
            assert got[-1] == "state"
            ids = [e for e in got[:-1] if isinstance(e, int)]
            # reconnects never lost or re-delivered a trace line
            assert ids == sorted(set(ids))

        # -- every result re-certified by the independent checker ----
        for seed, job_id in jobs.items():
            result = direct.result(job_id)
            circuit = circuits[seed]
            arch = xc3000(
                circuit.rows, circuit.cols, result.channel_width
            )
            report = verify_result(
                result, circuit, arch, KMB, level="full"
            )
            assert report.ok, (seed, report)

        # -- keep hammering until every fault class has fired --------
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            counts = proxy.fault_counts()
            if all(
                counts.get(name, 0) >= 1
                for name in ("delay", "drop", "reset",
                             "partial", "trickle")
            ):
                break
            probe = ServiceClient(
                proxy.url, retries=0, timeout_s=10.0, breaker=None
            )
            try:
                probe.healthz()
            except (ReproError, OSError):
                pass
        counts = proxy.fault_counts()
        for name in ("delay", "drop", "reset", "partial", "trickle"):
            assert counts.get(name, 0) >= 1, counts

        # -- the server is alive and healthy again -------------------
        doc = direct.healthz()
        assert doc["ok"] is True and doc["status"] == "ok"
        metrics = direct.metrics()
        assert metrics["http"]["shed"]["submits"] >= 1
        assert metrics["states"].get("done", 0) >= JOBS
    finally:
        proxy.stop()
        if worker is not None:
            service.supervisor.request_drain()
            worker.join(timeout=60)
        background.stop()
