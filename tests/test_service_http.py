"""Tests for the service's HTTP front end, client, and its new
scheduling/eviction machinery.

Four contracts under test:

* **wire fidelity** — everything the filesystem service offers works
  identically over a socket: typed errors round-trip, results verify,
  dedupe serves cached answers, and the client never touches the
  store's directory;
* **streaming** — SSE progress events have dense ids, resume exactly
  with ``Last-Event-ID``, and end with one terminal ``state`` event;
* **scheduling** — per-tenant priorities order claims (higher first),
  and the ordering survives a restart because the priority rides in
  the journaled submission;
* **bounded results** — the LRU eviction sweep keeps the result cache
  under its caps, pins donors of active jobs, journals before it
  unlinks, and never turns an evicted result into a requeue.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import (
    AdmissionError,
    FormatError,
    JobError,
    JobFailedError,
    ServiceError,
    UnknownJobError,
)
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit
from repro.io import result_to_dict
from repro.router import RouterConfig
from repro.service import (
    AdmissionPolicy,
    BackgroundServer,
    EvictionPolicy,
    JobStore,
    RoutingService,
    ServiceClient,
    TransportError,
    read_journal,
    request_fingerprint,
)
from repro.service.client import exception_from_document

KMB = RouterConfig(algorithm="kmb")


@pytest.fixture(scope="module")
def small_circuit():
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=1)


@pytest.fixture(scope="module")
def other_circuit():
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=2)


@pytest.fixture(scope="module")
def reference(small_circuit, tmp_path_factory):
    """The filesystem-service answer the HTTP path must match."""
    root = tmp_path_factory.mktemp("http-reference")
    service = RoutingService(str(root))
    record = service.submit(small_circuit, config=KMB, width=3)
    assert service.run_until_idle() == 1
    return service.result(record.job_id)


class _Server:
    """A served RoutingService + client, with an on-demand worker."""

    def __init__(self, root, **service_kwargs):
        self.service = RoutingService(str(root), **service_kwargs)
        self.background = BackgroundServer(self.service)
        host, port = self.background.start()
        self.url = f"http://{host}:{port}"
        self.client = ServiceClient(self.url, backoff_s=0.05)

    def drain(self) -> int:
        return self.service.run_until_idle()

    def close(self) -> None:
        self.background.stop()


@pytest.fixture
def server(tmp_path):
    srv = _Server(tmp_path / "store")
    yield srv
    srv.close()


# ----------------------------------------------------------------------
# wire fidelity: endpoints, typed errors, dedupe — zero client fs access
# ----------------------------------------------------------------------
class TestWire:
    def test_healthz_and_version(self, server):
        doc = server.client.healthz()
        assert doc["ok"] is True
        assert doc["api_version"] == 1
        assert doc["store"] == server.service.store.root

    def test_submit_route_result_roundtrip(
        self, server, small_circuit, reference
    ):
        record = server.client.submit(
            small_circuit, config=KMB, width=3, tenant="acme"
        )
        assert record["state"] == "queued"
        assert record["tenant"] == "acme"
        assert server.drain() == 1
        final = server.client.wait(record["job_id"], timeout_s=60)
        assert final["state"] == "done" and final["verified"] is True
        result = server.client.result(record["job_id"])
        # the wire adds nothing and loses nothing: bit-identical to the
        # filesystem service's answer for the same request
        assert result_to_dict(result) == result_to_dict(reference)

    def test_submit_accepts_plain_dicts(self, server, small_circuit):
        from repro.io import circuit_to_dict
        from repro.service import config_to_dict

        record = server.client.submit(
            circuit_to_dict(small_circuit),
            config=config_to_dict(KMB),
            width=3,
        )
        assert record["state"] == "queued"

    def test_dedupe_over_the_wire(self, server, small_circuit):
        first = server.client.submit(small_circuit, config=KMB, width=3)
        assert server.drain() == 1
        again = server.client.submit(small_circuit, config=KMB, width=3)
        assert again["state"] == "done"
        assert again["deduped_from"] == first["job_id"]
        assert server.client.metrics()["dedupe_hits"] == 1

    def test_cancel_queued_job(self, server, small_circuit):
        record = server.client.submit(small_circuit, config=KMB, width=3)
        cancelled = server.client.cancel(record["job_id"])
        assert cancelled["state"] == "cancelled"

    def test_jobs_listing_matches_store(self, server, small_circuit):
        server.client.submit(small_circuit, config=KMB, width=3)
        listed = server.client.jobs()
        assert [r["job_id"] for r in listed] == [
            r.job_id for r in server.service.store.records()
        ]

    def test_unknown_job_is_a_typed_404(self, server):
        with pytest.raises(UnknownJobError):
            server.client.status("job-999999")
        with pytest.raises(UnknownJobError):
            server.client.result("job-999999")
        with pytest.raises(UnknownJobError):
            server.client.cancel("job-999999")

    def test_admission_error_round_trips_with_code(
        self, server, small_circuit, other_circuit, tmp_path
    ):
        capped = _Server(
            tmp_path / "capped",
            policy=AdmissionPolicy(max_jobs_per_tenant=1),
        )
        try:
            capped.client.submit(small_circuit, config=KMB, width=3)
            with pytest.raises(AdmissionError) as info:
                capped.client.submit(other_circuit, config=KMB, width=3)
            assert info.value.code == "TENANT_LIMIT"
        finally:
            capped.close()

    def test_failed_job_result_carries_the_failure_record(
        self, server, small_circuit
    ):
        # width 1 is hopeless for this circuit: the job fails terminally
        record = server.client.submit(
            small_circuit, config=KMB, width=1
        )
        server.drain()
        final = server.client.wait(record["job_id"], timeout_s=60)
        assert final["state"] == "failed"
        with pytest.raises(JobFailedError) as info:
            server.client.result(record["job_id"])
        assert info.value.job_id == record["job_id"]
        assert "UnroutableError" in (info.value.failure or "")
        assert info.value.record["state"] == "failed"
        assert info.value.record["attempts"] >= 1

    def test_malformed_bodies_are_400s(self, server):
        conn = http.client.HTTPConnection(
            server.client.host, server.client.port, timeout=10
        )
        try:
            conn.request(
                "POST", "/v1/jobs", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 400
            assert doc["error"]["type"] == "FormatError"
        finally:
            conn.close()
        with pytest.raises(FormatError):
            server.client._request("POST", "/v1/jobs", {"nets": []})

    def test_unknown_paths_and_methods(self, server):
        for method, path, expected in (
            ("GET", "/v1/nope", 404),
            ("GET", "/other", 404),
            ("PUT", "/v1/jobs", 405),
        ):
            conn = http.client.HTTPConnection(
                server.client.host, server.client.port, timeout=10
            )
            try:
                conn.request(method, path)
                assert conn.getresponse().status == expected
            finally:
                conn.close()

    def test_metrics_shape(self, server, small_circuit):
        record = server.client.submit(
            small_circuit, config=KMB, width=3, tenant="acme"
        )
        doc = server.client.metrics()
        assert doc["jobs_total"] == 1
        assert doc["queue_depth"] == 1
        assert doc["states"] == {"queued": 1}
        assert doc["tenants"]["acme"] == {"active": 1, "total": 1}
        assert doc["journal"]["size_bytes"] > 0
        assert doc["results"] == {
            "count": 0, "bytes": 0, "evicted_total": 0,
        }
        server.drain()
        server.client.wait(record["job_id"], timeout_s=60)
        doc = server.client.metrics()
        assert doc["states"] == {"done": 1}
        assert doc["results"]["count"] == 1
        assert doc["results"]["bytes"] > 0

    def test_client_retries_transient_failures(self, server):
        # a dead port refuses: the client must give up with a typed
        # transport error after its bounded retries, not an OSError
        client = ServiceClient(
            "http://127.0.0.1:1", retries=1, backoff_s=0.01
        )
        with pytest.raises(TransportError):
            client.healthz()

    def test_exception_reconstruction_degrades_safely(self):
        exc = exception_from_document({"error": {"type": "KeyError",
                                                 "message": "x"}}, 500)
        assert isinstance(exc, ServiceError)
        exc = exception_from_document({"not": "an error"}, 500)
        assert isinstance(exc, ServiceError)
        exc = exception_from_document(
            {"error": {"type": "AdmissionError", "message": "full",
                       "code": "QUEUE_FULL"}}, 429,
        )
        assert isinstance(exc, AdmissionError)
        assert exc.code == "QUEUE_FULL"


# ----------------------------------------------------------------------
# SSE progress streaming: dense ids, exact resume, terminal close
# ----------------------------------------------------------------------
class TestEvents:
    def _route_with_stream(self, server, circuit, **kwargs):
        record = server.client.submit(circuit, config=KMB, **kwargs)
        worker = threading.Thread(target=server.drain, daemon=True)
        worker.start()
        events = list(server.client.events(record["job_id"]))
        worker.join(timeout=60)
        return record, events

    def test_stream_is_dense_and_terminal(self, server, small_circuit):
        record, events = self._route_with_stream(
            server, small_circuit, width=3
        )
        kinds = [e for e, _, _ in events]
        assert kinds[-1] == "state"
        traces = [(d, i) for e, d, i in events if e == "trace"]
        assert traces, "a routed job must stream trace events"
        # ids are the 1-based log line numbers: dense, no gaps
        assert [i for _, i in traces] == list(
            range(1, len(traces) + 1)
        )
        # each line is one live engine event (pass summary, checkpoint,
        # heartbeat, ...) — typed JSON, not raw text
        for doc, _ in traces:
            assert isinstance(doc, dict) and "type" in doc
        assert any(d["type"] == "pass" for d, _ in traces)
        final = events[-1][1]
        assert final["state"] == "done"
        assert final["job_id"] == record["job_id"]

    def test_resume_with_last_event_id(self, server, small_circuit):
        record, events = self._route_with_stream(
            server, small_circuit, width=3
        )
        traces = [(d, i) for e, d, i in events if e == "trace"]
        cut = len(traces) // 2
        assert cut >= 1
        resumed = list(
            server.client.events(record["job_id"], last_event_id=cut)
        )
        resumed_traces = [(d, i) for e, d, i in resumed if e == "trace"]
        # exactly the tail: no replays, no gaps, same payloads
        assert [i for _, i in resumed_traces] == [
            i for _, i in traces[cut:]
        ]
        assert [d for d, _ in resumed_traces] == [
            d for d, _ in traces[cut:]
        ]
        assert resumed[-1][0] == "state"

    def test_resume_via_query_parameter(self, server, small_circuit):
        record, events = self._route_with_stream(
            server, small_circuit, width=3
        )
        total = max(i for _, _, i in events)
        conn = http.client.HTTPConnection(
            server.client.host, server.client.port, timeout=10
        )
        try:
            conn.request(
                "GET",
                f"/v1/jobs/{record['job_id']}/events"
                f"?last_event_id={total}",
            )
            body = conn.getresponse().read().decode()
        finally:
            conn.close()
        # everything already seen: only the terminal state event left
        assert "event: trace" not in body
        assert "event: state" in body

    def test_stream_for_unknown_job_is_404(self, server):
        with pytest.raises(UnknownJobError):
            next(iter(server.client.events("job-424242")))

    def test_stream_of_finished_job_replays_full_log(
        self, server, small_circuit
    ):
        record = server.client.submit(small_circuit, config=KMB, width=3)
        server.drain()
        server.client.wait(record["job_id"], timeout_s=60)
        events = list(server.client.events(record["job_id"]))
        assert [e for e, _, _ in events][-1] == "state"
        assert any(e == "trace" for e, _, _ in events)


# ----------------------------------------------------------------------
# scheduling: priorities order claims and survive restart
# ----------------------------------------------------------------------
class TestPriorities:
    def test_policy_priority_resolution(self):
        policy = AdmissionPolicy(
            tenant_priorities={"gold": 10, "free": -5}
        )
        assert policy.priority_for("gold") == 10
        assert policy.priority_for("free") == -5
        assert policy.priority_for("other") == 0
        assert policy.priority_for("free", 99) == 99  # explicit wins

    def test_tenant_priorities_must_be_integers(self):
        with pytest.raises(ServiceError):
            AdmissionPolicy(tenant_priorities={"t": "high"})
        with pytest.raises(ServiceError):
            AdmissionPolicy(tenant_priorities={"t": True})

    def _submit_three(self, service, circuit):
        """free, default, gold — submitted in *reverse* priority."""
        jobs = {}
        for seed, tenant in ((3, "free"), (4, "default"), (5, "gold")):
            spec = scaled_spec(circuit_spec("term1"), 0.22)
            distinct = synthesize_circuit(spec, seed=seed)
            jobs[tenant] = service.submit(
                distinct, config=KMB, width=3, tenant=tenant
            ).job_id
        return jobs

    def test_claims_follow_priority_not_submission_order(
        self, tmp_path, small_circuit
    ):
        service = RoutingService(
            str(tmp_path / "store"),
            policy=AdmissionPolicy(
                tenant_priorities={"gold": 10, "free": -5}
            ),
        )
        jobs = self._submit_three(service, small_circuit)
        order = []
        while True:
            claimed = service.supervisor.claim_next("w0")
            if claimed is None:
                break
            order.append(claimed.job_id)
            service.store.finish_failed(claimed.job_id, "drained")
        assert order == [jobs["gold"], jobs["default"], jobs["free"]]

    def test_priority_ordering_survives_restart(
        self, tmp_path, small_circuit
    ):
        root = str(tmp_path / "store")
        service = RoutingService(
            root,
            policy=AdmissionPolicy(
                tenant_priorities={"gold": 10, "free": -5}
            ),
        )
        jobs = self._submit_three(service, small_circuit)
        # a fresh open (journal replay, default policy) still claims by
        # the *journaled* priorities — scheduling is durable state, not
        # server configuration
        reopened = RoutingService(root)
        assert [r.priority for r in reopened.store.records()] == [
            -5, 0, 10,
        ]
        claimed = reopened.supervisor.claim_next("w0")
        assert claimed is not None and claimed.job_id == jobs["gold"]

    def test_explicit_priority_rides_the_submission(
        self, server, small_circuit
    ):
        record = server.client.submit(
            small_circuit, config=KMB, width=3, priority=42
        )
        assert record["priority"] == 42
        assert server.client.status(record["job_id"])["priority"] == 42


# ----------------------------------------------------------------------
# bounded result cache: LRU eviction, pinning, crash safety
# ----------------------------------------------------------------------
class TestEviction:
    def _route_two(self, service, small_circuit, other_circuit):
        a = service.submit(small_circuit, config=KMB, width=3)
        b = service.submit(other_circuit, config=KMB, width=3)
        assert service.run_until_idle() == 2
        return a.job_id, b.job_id

    def test_count_cap_evicts_least_recently_served(
        self, tmp_path, small_circuit, other_circuit
    ):
        service = RoutingService(
            str(tmp_path / "store"),
            eviction=EvictionPolicy(max_results=1),
        )
        job_a, job_b = self._route_two(
            service, small_circuit, other_circuit
        )
        # the post-completion sweep already ran: one result survived
        evicted = [
            r.job_id for r in service.store.records() if r.result_evicted
        ]
        assert evicted == [job_a]
        assert not os.path.exists(service.store.result_path(job_a))
        assert os.path.exists(service.store.result_path(job_b))
        with pytest.raises(JobError, match="evicted"):
            service.result(job_a)
        assert service.result(job_b) is not None
        assert service.metrics()["results"] == {
            "count": 1,
            "bytes": os.path.getsize(service.store.result_path(job_b)),
            "evicted_total": 1,
        }

    def test_byte_cap_and_serving_refreshes_recency(
        self, tmp_path, small_circuit, other_circuit
    ):
        service = RoutingService(str(tmp_path / "store"))
        job_a, job_b = self._route_two(
            service, small_circuit, other_circuit
        )
        # a dedupe hit *serves* job_a's result, refreshing its recency;
        # the adopting job also gets its own result file
        served = service.submit(small_circuit, config=KMB, width=3)
        assert served.deduped_from == job_a
        # a one-byte cap evicts everything, but in LRU order: job_b
        # (finished second, never served again) goes before job_a,
        # whose recency the dedupe hit just refreshed
        service.eviction = EvictionPolicy(max_result_bytes=1)
        evicted = service.evict_results()
        assert set(evicted) == {job_a, job_b, served.job_id}
        assert evicted.index(job_b) < evicted.index(job_a)

    def test_eviction_never_requeues_on_restart(
        self, tmp_path, small_circuit, other_circuit
    ):
        root = str(tmp_path / "store")
        service = RoutingService(
            root, eviction=EvictionPolicy(max_results=1)
        )
        job_a, _ = self._route_two(service, small_circuit, other_circuit)
        reopened = RoutingService(root)  # full recovery scan
        record = reopened.store.get(job_a)
        assert record.state == "done" and record.result_evicted
        assert reopened.recovered.get("result_lost", []) == []
        assert reopened.recovered.get("requeued", []) == []

    def test_reconcile_completes_interrupted_eviction(
        self, tmp_path, small_circuit
    ):
        root = str(tmp_path / "store")
        service = RoutingService(root)
        record = service.submit(small_circuit, config=KMB, width=3)
        assert service.run_until_idle() == 1
        # a crash after the journal append but before the unlink: the
        # intent is durable, the file is still there
        service.store.journal.append(
            {"type": "result_evicted", "job": record.job_id}
        )
        assert os.path.exists(service.store.result_path(record.job_id))
        reopened = RoutingService(root)
        assert record.job_id in reopened.recovered["eviction_completed"]
        assert not os.path.exists(
            reopened.store.result_path(record.job_id)
        )
        assert reopened.store.get(record.job_id).state == "done"

    def test_active_jobs_pin_their_donor(self, tmp_path, small_circuit):
        service = RoutingService(str(tmp_path / "store"))
        done = service.submit(small_circuit, config=KMB, width=3)
        assert service.run_until_idle() == 1
        # a queued job sharing the fingerprint (store-level enqueue
        # models a submit that raced the donor's completion): eviction
        # must skip the donor or the waiter re-routes for nothing
        fingerprint = service.store.get(done.job_id).fingerprint
        pinned_waiter = service.store.create_job(
            {"tenant": "t"}, fingerprint=fingerprint, tenant="t"
        )
        policy = EvictionPolicy(max_result_bytes=1)
        assert policy.sweep(service.store) == []
        assert os.path.exists(service.store.result_path(done.job_id))
        # once the waiter is gone the pin lifts
        service.store.transition(pinned_waiter.job_id, "cancelled")
        assert policy.sweep(service.store) == [done.job_id]

    def test_evicted_fingerprint_routes_again(
        self, tmp_path, small_circuit
    ):
        service = RoutingService(
            str(tmp_path / "store"),
            eviction=EvictionPolicy(max_results=1),
        )
        record = service.submit(small_circuit, config=KMB, width=3)
        assert service.run_until_idle() == 1
        service.store.evict_result(record.job_id)
        again = service.submit(small_circuit, config=KMB, width=3)
        assert again.state == "queued"  # no donor file: no adoption
        assert service.run_until_idle() == 1
        assert service.result(again.job_id) is not None

    def test_policy_validation(self):
        with pytest.raises(ServiceError):
            EvictionPolicy(max_results=0)
        with pytest.raises(ServiceError):
            EvictionPolicy(max_result_bytes=-1)
        assert EvictionPolicy().bounded is False


# ----------------------------------------------------------------------
# multi-process: the submit storm and the SIGKILL'd HTTP server
# ----------------------------------------------------------------------
_STORM_SCRIPT = """
import json, sys
from repro.errors import AdmissionError
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit
from repro.router import RouterConfig
from repro.service import AdmissionPolicy, RoutingService

root, worker, attempts, cap = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)
service = RoutingService(
    root, recover=False,
    policy=AdmissionPolicy(max_jobs_per_tenant=cap, max_queue_depth=1000),
)
tenant = f"tenant-{worker % 2}"
accepted, refused = [], 0
for attempt in range(attempts):
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    circuit = synthesize_circuit(spec, seed=1000 + worker * 100 + attempt)
    try:
        record = service.submit(
            circuit, config=RouterConfig(algorithm="kmb"), width=3,
            tenant=tenant,
        )
        accepted.append(record.job_id)
    except AdmissionError:
        refused += 1
print(json.dumps(
    {"tenant": tenant, "accepted": accepted, "refused": refused}
))
"""


def _src_env():
    return dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + os.environ.get("PYTHONPATH", "").split(os.pathsep)
        ),
    )


class TestMultiProcessStorm:
    def test_concurrent_submitters_keep_the_store_consistent(
        self, tmp_path
    ):
        """Four submitter processes, two tenants, a cap of five: the
        journal chain stays dense, no accepted job is lost, and no
        tenant exceeds its cap even with check/append races."""
        root = str(tmp_path / "store")
        RoutingService(root)  # pre-create so workers race only on jobs
        workers, attempts, cap = 4, 4, 5
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _STORM_SCRIPT,
                 root, str(i), str(attempts), str(cap)],
                env=_src_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True,
            )
            for i in range(workers)
        ]
        reports = []
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            reports.append(json.loads(out))

        # dense journal: read_journal raises on any gap or repeat
        events, _ = read_journal(os.path.join(root, "journal.jsonl"))
        accepted = [j for r in reports for j in r["accepted"]]
        assert len(set(accepted)) == len(accepted), "duplicate job ids"

        store = JobStore(root)
        # no lost jobs: every acked submission is a queued record
        for job_id in accepted:
            assert store.get(job_id).state == "queued"
        assert len(store.records()) == len(accepted)

        # per-tenant caps held under contention (the flock spans the
        # admission check and the enqueue append)
        per_tenant = {}
        for record in store.records():
            per_tenant[record.tenant] = per_tenant.get(record.tenant, 0) + 1
        assert per_tenant, "storm accepted nothing"
        for tenant, count in per_tenant.items():
            assert count <= cap, f"{tenant} over cap: {count} > {cap}"
        # both tenants were driven over their cap: refusals must exist
        assert sum(r["refused"] for r in reports) == (
            workers * attempts - len(accepted)
        )
        assert sum(r["refused"] for r in reports) > 0


class TestServerKill:
    def test_sigkill_mid_stream_then_restart_finishes_the_job(
        self, tmp_path
    ):
        """The CI smoke contract: a SIGKILL'd HTTP server loses no
        durable state — after restart the interrupted job finishes,
        checker-verified, and the SSE stream resumes by id."""
        root = str(tmp_path / "store")
        env = _src_env()

        def start_server(faults=None):
            run_env = dict(env)
            run_env.pop("REPRO_FAULTS", None)
            if faults:
                run_env["REPRO_FAULTS"] = faults
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "jobs", "serve",
                 "--root", root, "--http", "127.0.0.1:0"],
                env=run_env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True,
            )
            for line in proc.stdout:
                if line.startswith("http: listening on "):
                    host, _, port = line.split()[-1].rpartition(":")
                    return proc, f"http://{host}:{int(port)}"
            raise AssertionError(
                f"server died before binding: {proc.stdout.read()}"
            )

        # fault: hard-exit (os._exit(70)) at the first result write —
        # mid-job, after trace events have streamed
        proc, url = start_server(
            faults=f"kill_at=result.write.pre,kill_at_times=1,"
                   f"dir={tmp_path / 'faults'}"
        )
        try:
            client = ServiceClient(url, retries=2, backoff_s=0.05)
            record = client.submit(
                json.loads(_TINY_CIRCUIT),
                config={"algorithm": "kmb"},
                width=3, family="xc3000",
            )
            # stream until the server dies under us (clean EOF or a
            # reset, depending on kernel timing — both are "dropped")
            seen = 0
            terminal = False
            try:
                for event, doc, event_id in client.events(
                    record["job_id"], reconnect=False
                ):
                    seen = max(seen, event_id)
                    terminal = terminal or event == "state"
            except (TransportError, OSError):
                pass
            assert not terminal, "job finished despite the kill fault"
            assert proc.wait(timeout=120) == 70  # the hard-exit code
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        proc, url = start_server()
        try:
            client = ServiceClient(url, retries=3, backoff_s=0.1)
            final = client.wait(record["job_id"], timeout_s=120)
            assert final["state"] == "done"
            assert final["verified"] is True
            result = client.result(record["job_id"])
            assert result.channel_width == 3
            # the resumed stream starts exactly after the pre-kill tail
            events = list(
                client.events(record["job_id"], last_event_id=seen)
            )
            ids = [i for e, _, i in events if e == "trace"]
            assert ids == list(range(seen + 1, seen + 1 + len(ids)))
            assert events[-1][0] == "state"
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _make_tiny_circuit_json():
    from repro.io import circuit_to_dict

    spec = scaled_spec(circuit_spec("term1"), 0.22)
    doc = circuit_to_dict(synthesize_circuit(spec, seed=1))
    return json.dumps(doc)


_TINY_CIRCUIT = _make_tiny_circuit_json()
