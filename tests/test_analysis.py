"""Tests for the analysis layer: metrics, tables, experiment drivers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    AlgorithmSample,
    RunningMean,
    congested_grid,
    geometric_mean,
    percent_vs,
    ratio_table,
    render_kv,
    render_table,
    run_cpu_times,
    run_fig3_detours,
    run_fig4,
    run_table1,
    run_trace_demo,
)
from repro.errors import ReproError


class TestMetrics:
    def test_percent_vs(self):
        assert percent_vs(110, 100) == pytest.approx(10.0)
        assert percent_vs(90, 100) == pytest.approx(-10.0)
        assert percent_vs(0, 0) == 0.0

    def test_percent_vs_zero_reference(self):
        with pytest.raises(ReproError):
            percent_vs(1.0, 0.0)

    def test_running_mean(self):
        m = RunningMean()
        m.add(2.0)
        m.add(4.0)
        assert m.mean == 3.0

    def test_running_mean_empty(self):
        with pytest.raises(ReproError):
            RunningMean().mean

    def test_algorithm_sample(self):
        s = AlgorithmSample()
        s.add(1.0, 2.0)
        s.add(3.0, 4.0)
        assert s.wirelength_pct.mean == 2.0
        assert s.max_path_pct.mean == 3.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_ratio_table(self):
        ratios = ratio_table({"a": 50, "b": 60}, baseline="a")
        assert ratios == {"a": 1.0, "b": 1.2}
        with pytest.raises(ReproError):
            ratio_table({"a": 1}, baseline="x")


class TestTables:
    def test_render_alignment(self):
        text = render_table(
            ["name", "value"], [["x", 1.5], ["yy", 20]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert any("1.50" in ln for ln in lines)

    def test_render_none_as_dash(self):
        text = render_table(["a"], [[None]])
        assert "-" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_kv(self):
        text = render_kv("Title", [["k", 1]])
        assert "Title" in text and "k" in text


class TestCongestedGrid:
    def test_no_congestion_is_unit(self, rng):
        g, mean = congested_grid(10, 0, rng)
        assert mean == 1.0

    def test_congestion_raises_mean_weight(self, rng):
        g, mean = congested_grid(10, 10, rng)
        assert mean > 1.0
        # weights only ever increase in integer steps from 1.0
        assert all(w >= 1.0 for _, _, w in g.edges())


class TestDrivers:
    def test_table1_small(self):
        result = run_table1(
            trials=1,
            grid_size=8,
            net_sizes=(4,),
            levels={"none": 0},
            seed=3,
        )
        cells = result.cells
        assert cells[("none", 4, "KMB")][0] == pytest.approx(0.0)
        for algo in ("DJKA", "DOM", "PFA", "IDOM"):
            assert cells[("none", 4, algo)][1] == pytest.approx(0.0)
        text = result.render(published=False)
        assert "Table 1" in text

    def test_fig3(self):
        before, after = run_fig3_detours(
            grid_size=10, prerouted=10, pairs=15, seed=1
        )
        assert before.mean_stretch == pytest.approx(1.0)
        assert after.mean_stretch >= 1.0

    def test_fig4_instance_properties(self):
        result = run_fig4(grid_size=5, max_seeds=3000)
        rows = {name: (wl, mp) for name, wl, mp in result.rows}
        assert rows["KMB"][0] > result.opt_wirelength
        assert rows["IKMB (=IGMST)"][0] == pytest.approx(
            result.opt_wirelength
        )
        assert rows["IDOM"][1] == pytest.approx(result.opt_max_path)

    def test_trace_demo(self):
        traced_ikmb, traced_idom = run_trace_demo()
        assert len(traced_ikmb.trace.steps) == 2
        assert len(traced_idom.trace.steps) == 2
        assert traced_ikmb.trace.total_savings > 0
        assert traced_idom.trace.total_savings > 0

    def test_cpu_times(self):
        times = run_cpu_times(trials=1, seed=2)
        assert set(times) == {"IKMB", "PFA", "IDOM"}
        assert all(v > 0 for v in times.values())
