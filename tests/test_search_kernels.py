"""Goal-directed search kernels: A*, bidirectional Dijkstra, heuristics.

Covers the exactness contract of :mod:`repro.graph.search` (every kernel
returns plain-Dijkstra distances), the admissibility machinery
(lattice coordinates, Manhattan scale, ALT landmarks), the
:class:`SearchPolicy` configuration surface, and the two satellite
guarantees around it: the :class:`ShortestPathCache` never serves a
goal-directed run where a plain-Dijkstra result is expected, and
:class:`DijkstraBudget` overruns name the kernel that was active.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.checkpoint import config_fingerprint
from repro.errors import EngineTimeoutError, GraphError
from repro.graph import (
    DijkstraCounters,
    DijkstraBudget,
    Graph,
    LandmarkIndex,
    SearchPolicy,
    SEARCH_BACKENDS,
    ShortestPathCache,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    grid_graph,
    lattice_coordinate,
    lattice_scale,
    manhattan_heuristic,
    multi_target_dijkstra,
    path_cost,
    random_connected_graph,
    reconstruct_path,
    set_dijkstra_budget,
    set_dijkstra_counters,
)
from repro.router import RouterConfig


@pytest.fixture(autouse=True)
def _clean_globals():
    """No budget/counters leakage between tests."""
    prev_b = set_dijkstra_budget(None)
    prev_c = set_dijkstra_counters(None)
    yield
    set_dijkstra_budget(prev_b)
    set_dijkstra_counters(prev_c)


def zero_heuristic(_node):
    return 0.0


class TestAstar:
    def test_exact_on_grid_with_manhattan(self, medium_grid):
        target = (9, 9)
        h = manhattan_heuristic(medium_grid, target)
        assert h is not None
        full, _ = dijkstra(medium_grid, (0, 0))
        dist, _ = astar(medium_grid, (0, 0), target, h)
        assert dist[target] == full[target]

    def test_zero_heuristic_matches_early_exit_dijkstra(self, medium_grid):
        """With h = 0, A* degenerates to early-exit Dijkstra exactly
        (same pushes in the same order), so even the settled prefix and
        predecessors coincide."""
        target = (7, 4)
        d_ref, p_ref = dijkstra(medium_grid, (0, 0), targets=[target])
        d_ast, p_ast = astar(medium_grid, (0, 0), target, zero_heuristic)
        assert d_ast == d_ref
        assert p_ast == p_ref

    def test_exact_on_random_weighted_grid(self):
        rnd = random.Random(7)
        g = grid_graph(8, 8)
        for u, v, _ in list(g.edges()):
            g.set_weight(u, v, 1.0 + rnd.random())
        # weights >= 1 per unit move, so scale 1.0 stays admissible
        h = manhattan_heuristic(g, (7, 7), scale=1.0)
        full, _ = dijkstra(g, (0, 0))
        dist, _ = astar(g, (0, 0), (7, 7), h)
        assert dist[(7, 7)] == full[(7, 7)]

    def test_settles_fewer_nodes_than_full_run(self, medium_grid):
        h = manhattan_heuristic(medium_grid, (9, 0))
        full, _ = dijkstra(medium_grid, (0, 0))
        dist, _ = astar(medium_grid, (0, 0), (9, 0), h)
        assert len(dist) < len(full)

    def test_cutoff_limits_settled_set(self, medium_grid):
        h = manhattan_heuristic(medium_grid, (9, 9))
        dist, _ = astar(medium_grid, (0, 0), (9, 9), h, cutoff=4.0)
        assert (9, 9) not in dist
        assert all(d <= 4.0 for d in dist.values())

    def test_infinite_heuristic_prunes(self, path_graph):
        # h = inf everywhere except the source: nothing can be relaxed
        def h(node):
            return 0.0 if node == "a" else float("inf")

        dist, pred = astar(path_graph, "a", "e", h)
        assert dist == {"a": 0.0}
        assert pred == {}

    def test_missing_endpoints_raise(self, path_graph):
        with pytest.raises(GraphError):
            astar(path_graph, "zz", "a", zero_heuristic)
        with pytest.raises(GraphError):
            astar(path_graph, "a", "zz", zero_heuristic)

    def test_source_equals_target(self, path_graph):
        dist, _ = astar(path_graph, "c", "c", zero_heuristic)
        assert dist["c"] == 0.0


class TestBidirectionalDijkstra:
    def test_exact_on_grid(self, medium_grid):
        full, _ = dijkstra(medium_grid, (0, 0))
        d, path = bidirectional_dijkstra(medium_grid, (0, 0), (9, 9))
        assert d == full[(9, 9)]
        assert path[0] == (0, 0) and path[-1] == (9, 9)
        assert path_cost(medium_grid, path) == d

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_exact_on_random_graphs(self, seed):
        rnd = random.Random(seed)
        g = random_connected_graph(40, 90, rnd)
        nodes = sorted(g.nodes, key=repr)
        src, dst = nodes[0], nodes[-1]
        full, _ = dijkstra(g, src)
        d, path = bidirectional_dijkstra(g, src, dst)
        assert d == pytest.approx(full[dst], abs=0.0)
        assert path_cost(g, path) == pytest.approx(d)

    def test_disconnected_returns_inf(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("x", "y", 1.0)
        d, path = bidirectional_dijkstra(g, "a", "y")
        assert d == float("inf")
        assert path is None

    def test_trivial_query(self, path_graph):
        assert bidirectional_dijkstra(path_graph, "b", "b") == (0.0, ["b"])

    def test_missing_endpoints_raise(self, path_graph):
        with pytest.raises(GraphError):
            bidirectional_dijkstra(path_graph, "zz", "a")
        with pytest.raises(GraphError):
            bidirectional_dijkstra(path_graph, "a", "zz")

    def test_expands_less_than_full_run(self):
        g = grid_graph(14, 14)
        counters = DijkstraCounters()
        set_dijkstra_counters(counters)
        dijkstra(g, (0, 0))
        full_pops = counters.heap_pops
        counters.reset()
        bidirectional_dijkstra(g, (0, 0), (3, 3))
        assert counters.heap_pops < full_pops


class TestMultiTargetDijkstra:
    def test_settles_all_targets_with_full_run_values(self, medium_grid):
        targets = [(9, 9), (0, 9), (5, 5)]
        full, full_pred = dijkstra(medium_grid, (0, 0))
        dist, pred = multi_target_dijkstra(medium_grid, (0, 0), targets)
        for t in targets:
            assert dist[t] == full[t]
            # the settled prefix is bit-identical, path included
            assert reconstruct_path(pred, (0, 0), t) == reconstruct_path(
                full_pred, (0, 0), t
            )

    def test_stops_early(self, medium_grid):
        dist, _ = multi_target_dijkstra(medium_grid, (0, 0), [(1, 1)])
        assert len(dist) < medium_grid.num_nodes


class TestLatticeGeometry:
    def test_coordinate_vocabulary(self):
        assert lattice_coordinate(("J", 3, 4, "N", 2)) == (3.0, 4.0)
        assert lattice_coordinate(("P", 3, 4, 1)) == (3.5, 4.5)
        assert lattice_coordinate((2, 5)) == (2.0, 5.0)
        assert lattice_coordinate("a") is None
        assert lattice_coordinate((True, False)) is None
        assert lattice_coordinate(("J", "x", 4, "N", 2)) is None
        assert lattice_coordinate((1, 2, 3)) is None

    def test_scale_of_unit_grid(self, small_grid):
        assert lattice_scale(small_grid) == 1.0

    def test_scale_is_min_ratio(self):
        g = grid_graph(3, 3, weight=2.0)
        g.set_weight((0, 0), (1, 0), 0.5)
        assert lattice_scale(g) == 0.5

    def test_scale_rejects_non_lattice_nodes(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        assert lattice_scale(g) is None

    def test_scale_rejects_long_edges(self):
        g = Graph()
        g.add_edge((0, 0), (2, 0), 1.0)
        assert lattice_scale(g) is None

    def test_zero_displacement_edges_ignored(self):
        # switch-style edge between co-located junctions must not
        # drag the scale to zero
        g = Graph()
        g.add_edge(("J", 0, 0, "E", 0), ("J", 0, 0, "S", 0), 0.1)
        g.add_edge(("J", 0, 0, "E", 0), ("J", 1, 0, "E", 0), 1.0)
        assert lattice_scale(g) == 1.0

    def test_manhattan_requires_target_coordinate(self, small_grid):
        assert manhattan_heuristic(small_grid, "not-a-node") is None

    def test_manhattan_heuristic_values(self, small_grid):
        h = manhattan_heuristic(small_grid, (5, 5))
        assert h((0, 0)) == 10.0
        assert h((5, 5)) == 0.0


def assert_admissible_and_consistent(graph, target, h):
    ref, _ = dijkstra(graph, target)  # undirected: d(v, t) == d(t, v)
    for v in graph.nodes:
        assert h(v) <= ref.get(v, float("inf")) + 1e-9
    for u, v, w in graph.edges():
        assert h(u) <= w + h(v) + 1e-9
        assert h(v) <= w + h(u) + 1e-9


class TestHeuristicSoundness:
    def test_manhattan_on_routing_graph(self):
        from repro.fpga import build_routing_graph, xc3000

        arch = xc3000(3, 3, 4)
        rrg = build_routing_graph(arch)
        scale = min(arch.segment_weight, arch.pin_weight)
        target = next(n for n in rrg.graph.nodes if n[0] == "J")
        h = manhattan_heuristic(rrg.graph, target, scale=scale)
        assert_admissible_and_consistent(rrg.graph, target, h)

    def test_alt_on_random_graph(self):
        rnd = random.Random(11)
        g = random_connected_graph(30, 60, rnd)
        idx = LandmarkIndex(g, k=4)
        target = sorted(g.nodes, key=repr)[-1]
        h = idx.heuristic(target)
        assert_admissible_and_consistent(g, target, h)


class TestLandmarkIndex:
    def test_deterministic_selection(self, small_grid):
        a = LandmarkIndex(small_grid, k=3)
        b = LandmarkIndex(grid_graph(6, 6), k=3)
        assert a.landmarks == b.landmarks
        assert a.landmarks[0] == sorted(small_grid.nodes, key=repr)[0]

    def test_k_capped_at_node_count(self, path_graph):
        idx = LandmarkIndex(path_graph, k=100)
        assert len(idx.landmarks) == path_graph.num_nodes

    def test_k_must_be_positive(self, path_graph):
        with pytest.raises(GraphError):
            LandmarkIndex(path_graph, k=0)

    def test_freshness_tracks_version(self, small_grid):
        idx = LandmarkIndex(small_grid, k=2)
        assert idx.fresh(small_grid)
        small_grid.set_weight((0, 0), (1, 0), 2.0)
        assert not idx.fresh(small_grid)
        assert not idx.fresh(grid_graph(6, 6))

    def test_disconnected_graph_stays_admissible(self):
        g = Graph()
        for u, v in zip("abc", "bcd"):
            g.add_edge(u, v, 1.0)
        g.add_edge("x", "y", 1.0)
        idx = LandmarkIndex(g, k=3)
        h = idx.heuristic("d")
        # nodes in the other component get bound 0, never inf/negative
        assert h("x") == 0.0
        assert_admissible_and_consistent(g, "d", h)

    def test_alt_astar_is_exact(self):
        rnd = random.Random(23)
        g = random_connected_graph(35, 80, rnd)
        idx = LandmarkIndex(g, k=3)
        nodes = sorted(g.nodes, key=repr)
        full, _ = dijkstra(g, nodes[0])
        dist, _ = astar(g, nodes[0], nodes[-1], idx.heuristic(nodes[-1]))
        assert dist[nodes[-1]] == full[nodes[-1]]


class TestSearchPolicy:
    def test_backend_vocabulary(self):
        assert set(SEARCH_BACKENDS) == {"dijkstra", "astar", "bidir", "auto"}
        with pytest.raises(GraphError):
            SearchPolicy("bfs")

    def test_validation(self):
        with pytest.raises(GraphError):
            SearchPolicy("auto", heuristic_scale=0.0)
        with pytest.raises(GraphError):
            SearchPolicy("auto", landmarks=-1)

    def test_for_architecture_scale(self):
        from repro.fpga import xc3000

        arch = xc3000(3, 3, 4)
        policy = SearchPolicy.for_architecture("astar", arch)
        assert policy.heuristic_scale == min(
            arch.segment_weight, arch.pin_weight
        )

    def test_key_distinguishes_configurations(self):
        keys = {
            SearchPolicy("astar").key(),
            SearchPolicy("bidir").key(),
            SearchPolicy("astar", heuristic_scale=0.5).key(),
            SearchPolicy("astar", landmarks=2).key(),
        }
        assert len(keys) == 4

    @pytest.mark.parametrize("backend", SEARCH_BACKENDS)
    def test_pair_distance_exact_on_grid(self, medium_grid, backend):
        policy = SearchPolicy(backend)
        full, _ = dijkstra(medium_grid, (0, 0))
        assert policy.pair_distance(medium_grid, (0, 0), (9, 9)) == full[
            (9, 9)
        ]

    @pytest.mark.parametrize("backend", SEARCH_BACKENDS)
    def test_pair_distance_exact_on_general_graph(self, backend):
        # no lattice coordinates: astar/auto must fall back to bidir
        rnd = random.Random(5)
        g = random_connected_graph(30, 55, rnd)
        nodes = sorted(g.nodes, key=repr)
        policy = SearchPolicy(backend)
        full, _ = dijkstra(g, nodes[0])
        assert policy.pair_distance(g, nodes[0], nodes[-1]) == full[nodes[-1]]

    def test_pair_distance_disconnected(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("x", "y", 1.0)
        for backend in SEARCH_BACKENDS:
            assert SearchPolicy(backend).pair_distance(g, "a", "x") == float(
                "inf"
            )

    def test_derived_scale_tracks_graph_version(self, small_grid):
        policy = SearchPolicy("astar")
        assert policy.heuristic_for(small_grid, (5, 5)) is not None
        # a sub-unit edge tightens the derived scale
        small_grid.set_weight((0, 0), (1, 0), 0.25)
        h = policy.heuristic_for(small_grid, (5, 5))
        assert h((0, 0)) == 0.25 * 10

    def test_landmark_fallback_on_general_graph(self):
        rnd = random.Random(3)
        g = random_connected_graph(25, 50, rnd)
        policy = SearchPolicy("astar", landmarks=2)
        nodes = sorted(g.nodes, key=repr)
        h = policy.heuristic_for(g, nodes[-1])
        assert h is not None and h.key[0] == "alt"
        full, _ = dijkstra(g, nodes[0])
        assert policy.pair_distance(g, nodes[0], nodes[-1]) == full[nodes[-1]]


class TestCacheKernelIsolation:
    """Satellite: a goal-directed run must never masquerade as plain
    Dijkstra data — not as a full SSSP, not as a plain partial run."""

    def test_partial_key_carries_kernel(self):
        plain = ShortestPathCache._partial_key("s", ["t"], None)
        kernel = ShortestPathCache._partial_key("s", ["t"], None, "astar")
        assert plain != kernel
        assert plain[3] == "dijkstra"

    def test_pair_query_never_creates_full_entry(self, medium_grid):
        cache = ShortestPathCache(medium_grid, search=SearchPolicy("astar"))
        cache.dist((0, 0), (9, 9))
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["pair_entries"] == 1

    def test_full_query_after_kernel_run_is_complete(self, medium_grid):
        cache = ShortestPathCache(medium_grid, search=SearchPolicy("astar"))
        cache.dist((0, 0), (9, 9))
        dist, _ = cache.sssp((0, 0))
        # the A* run settled a subset; the full query must not see it
        assert len(dist) == medium_grid.num_nodes

    def test_pair_store_is_symmetric_hit(self, medium_grid):
        cache = ShortestPathCache(medium_grid, search=SearchPolicy("bidir"))
        d1 = cache.dist((0, 0), (9, 9))
        misses = cache.misses
        d2 = cache.dist((9, 9), (0, 0))
        assert d1 == d2
        assert cache.misses == misses  # reverse query hits the pair store

    def test_limited_run_never_answers_full_query(self, medium_grid):
        cache = ShortestPathCache(medium_grid, search=SearchPolicy("auto"))
        cache.sssp_limited((0, 0), targets=[(1, 0)])
        assert cache.stats()["partial_entries"] == 1
        dist, _ = cache.sssp((0, 0))
        assert len(dist) == medium_grid.num_nodes

    def test_settled_partial_answers_pair_query(self, medium_grid):
        cache = ShortestPathCache(medium_grid, search=SearchPolicy("astar"))
        cache.sssp_limited((0, 0), targets=[(5, 5)])
        misses = cache.misses
        full, _ = dijkstra(medium_grid, (0, 0))
        assert cache.dist((0, 0), (5, 5)) == full[(5, 5)]
        assert cache.misses == misses  # served from the settled prefix

    def test_promotion_after_repeated_misses(self, medium_grid):
        cache = ShortestPathCache(medium_grid, search=SearchPolicy("astar"))
        others = [(x, 9) for x in range(ShortestPathCache._PAIR_PROMOTE)]
        for t in others:
            cache.dist((0, 0), t)
        # the hot endpoint got promoted to a real full SSSP
        assert (0, 0) in cache.cached_sources()
        full, _ = dijkstra(medium_grid, (0, 0))
        assert len(cache.sssp((0, 0))[0]) == len(full)

    def test_version_bump_drops_pair_store(self, medium_grid):
        cache = ShortestPathCache(medium_grid, search=SearchPolicy("bidir"))
        cache.dist((0, 0), (9, 9))
        medium_grid.set_weight((0, 0), (1, 0), 3.0)
        assert cache.stats()["pair_entries"] == 1  # not yet observed
        full, _ = dijkstra(medium_grid, (0, 0))
        assert cache.dist((0, 0), (9, 9)) == full[(9, 9)]
        assert cache.invalidations == 1


class TestCanonicalPaths:
    """path() must return one fixed node sequence regardless of the
    backend and of what the cache happened to compute earlier."""

    def reference_path(self, graph, u, v):
        _, pred = dijkstra(graph, u, targets=[v])
        return reconstruct_path(pred, u, v)

    @pytest.mark.parametrize("backend", SEARCH_BACKENDS)
    def test_path_matches_source_rooted_reference(self, backend):
        g = grid_graph(7, 7)
        cache = ShortestPathCache(g, search=SearchPolicy(backend))
        assert cache.path((0, 0), (6, 6)) == self.reference_path(
            g, (0, 0), (6, 6)
        )

    @pytest.mark.parametrize("backend", SEARCH_BACKENDS)
    def test_path_independent_of_cache_history(self, backend):
        g = grid_graph(7, 7)
        cold = ShortestPathCache(g, search=SearchPolicy(backend))
        warmed = ShortestPathCache(g, search=SearchPolicy(backend))
        warmed.dist((6, 6), (0, 0))
        warmed.sssp_limited((0, 0), targets=[(3, 3)])
        assert cold.path((0, 0), (6, 6)) == warmed.path((0, 0), (6, 6))

    def test_full_store_still_preferred(self, small_grid):
        cache = ShortestPathCache(small_grid, search=SearchPolicy("auto"))
        cache.warm([(0, 0)])
        hits = cache.hits
        path = cache.path((0, 0), (5, 5))
        assert cache.hits == hits + 1
        assert path == self.reference_path(small_grid, (0, 0), (5, 5))


class TestBudgetsAcrossKernels:
    """Satellite: budgets fire under every kernel, at the same
    relaxation count or earlier, and the partial stats say which
    kernel was interrupted."""

    def run_kernel(self, backend, graph, source, target):
        if backend == "astar":
            astar(graph, source, target, manhattan_heuristic(graph, target))
        elif backend == "bidir":
            bidirectional_dijkstra(graph, source, target)
        else:
            dijkstra(graph, source, targets=[target])

    @pytest.mark.parametrize("backend", ["dijkstra", "astar", "bidir"])
    def test_relaxation_budget_names_backend(self, backend):
        g = grid_graph(12, 12)
        set_dijkstra_budget(DijkstraBudget(max_relaxations=20))
        with pytest.raises(EngineTimeoutError) as exc:
            self.run_kernel(backend, g, (0, 0), (11, 11))
        assert exc.value.kind == "relaxations"
        assert exc.value.partial["backend"] == backend
        assert exc.value.partial["relaxations"] > 20

    @pytest.mark.parametrize("backend", ["dijkstra", "astar", "bidir"])
    def test_deadline_budget_names_backend(self, backend):
        g = grid_graph(12, 12)
        set_dijkstra_budget(DijkstraBudget(deadline=-1.0))
        with pytest.raises(EngineTimeoutError) as exc:
            self.run_kernel(backend, g, (0, 0), (11, 11))
        assert exc.value.kind == "net"
        assert exc.value.partial["backend"] == backend

    @pytest.mark.parametrize("backend", ["astar", "bidir"])
    def test_kernels_relax_no_more_than_plain(self, backend):
        """A budget sized for the plain kernel can only trip earlier
        under goal direction: the kernels do at most as many
        relaxations for the same single-target query."""
        g = grid_graph(12, 12)
        counters = DijkstraCounters()
        set_dijkstra_counters(counters)
        dijkstra(g, (0, 0), targets=[(11, 0)])
        plain = counters.snapshot()["relaxations"]
        counters.reset()
        self.run_kernel(backend, g, (0, 0), (11, 0))
        assert counters.snapshot()["relaxations"] <= plain

    def test_budget_trips_at_same_count_under_zero_heuristic(self):
        """With h = 0 the A* run is operation-identical to early-exit
        Dijkstra, so a budget boundary trips at the exact same point."""
        g = grid_graph(10, 10)
        set_dijkstra_budget(DijkstraBudget(max_relaxations=30))
        with pytest.raises(EngineTimeoutError) as d_exc:
            dijkstra(g, (0, 0), targets=[(9, 9)])
        with pytest.raises(EngineTimeoutError) as a_exc:
            astar(g, (0, 0), (9, 9), zero_heuristic)
        assert (
            d_exc.value.partial["relaxations"]
            == a_exc.value.partial["relaxations"]
        )
        assert (
            d_exc.value.partial["heap_pops"]
            == a_exc.value.partial["heap_pops"]
        )


class TestPrunedCounter:
    def test_full_run_on_path_prunes_nothing(self, path_graph):
        counters = DijkstraCounters()
        set_dijkstra_counters(counters)
        dijkstra(path_graph, "a")
        assert counters.pruned == 0

    def test_early_exit_prunes_frontier(self, medium_grid):
        counters = DijkstraCounters()
        set_dijkstra_counters(counters)
        dijkstra(medium_grid, (0, 0), targets=[(1, 1)])
        assert counters.pruned > 0

    def test_goal_direction_prunes_frontier(self, medium_grid):
        counters = DijkstraCounters()
        set_dijkstra_counters(counters)
        h = manhattan_heuristic(medium_grid, (5, 5))
        astar(medium_grid, (0, 0), (5, 5), h)
        snap = counters.snapshot()
        assert snap["pruned"] > 0
        assert snap["calls"] == 1

    def test_bidir_records_both_frontiers(self, medium_grid):
        counters = DijkstraCounters()
        set_dijkstra_counters(counters)
        bidirectional_dijkstra(medium_grid, (0, 0), (9, 9))
        snap = counters.snapshot()
        assert snap["calls"] == 1
        assert snap["heap_pops"] > 0 and snap["pruned"] > 0


class TestConfigSurface:
    def test_router_config_validates_backend(self):
        for backend in SEARCH_BACKENDS:
            assert RouterConfig(search=backend).search == backend
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            RouterConfig(search="bfs")

    def test_default_is_auto(self):
        assert RouterConfig().search == "auto"

    def test_checkpoints_interchangeable_across_backends(self):
        """`search` is deliberately absent from the checkpoint config
        fingerprint: every backend routes identically, so a checkpoint
        written under one backend must resume under any other."""
        prints = {
            backend: config_fingerprint(RouterConfig(search=backend))
            for backend in SEARCH_BACKENDS
        }
        first = prints["dijkstra"]
        assert all(p == first for p in prints.values())
