"""Property-based tests of the architecture model (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga import Architecture, SIDE_PAIRS
from repro.fpga.routing_graph import RoutingResourceGraph

SETTINGS = settings(max_examples=30, deadline=None)


class TestSwitchPatternProperties:
    @SETTINGS
    @given(
        fs=st.integers(min_value=1, max_value=9),
        w=st.integers(min_value=1, max_value=8),
    )
    def test_per_wire_fanout_equals_fs(self, fs, w):
        """In a full (4-sided) switch block, every wire end connects to
        exactly min(fs, reachable) other wire ends."""
        arch = Architecture(rows=2, cols=2, channel_width=w, fs=fs)
        # count the connections of track 0 on side W across its 3 pairs
        total = 0
        for pair in SIDE_PAIRS:
            if "W" not in pair:
                continue
            pattern = arch.switch_pattern(*pair)
            if pair[0] == "W":
                total += sum(1 for ta, _ in pattern if ta == 0)
            else:
                total += sum(1 for _, tb in pattern if tb == 0)
        # expected: base fs//3 per pair, +1 for boosted pairs, capped
        # at W connectable tracks per side.  Side W participates in
        # SIDE_PAIRS indices 0 (W,E), 2 (W,N) and 3 (W,S).
        boosted = ((), (0, 1), (0, 1, 2, 5))[fs % 3]
        expected = sum(
            min(fs // 3 + (1 if idx in boosted else 0), w)
            for idx in (0, 2, 3)
        )
        assert total == expected

    @SETTINGS
    @given(
        fs=st.integers(min_value=1, max_value=9),
        w=st.integers(min_value=1, max_value=6),
    )
    def test_patterns_within_track_range(self, fs, w):
        arch = Architecture(rows=2, cols=2, channel_width=w, fs=fs)
        for pair in SIDE_PAIRS:
            for ta, tb in arch.switch_pattern(*pair):
                assert 0 <= ta < w and 0 <= tb < w


class TestRoutingGraphProperties:
    @SETTINGS
    @given(
        rows=st.integers(min_value=1, max_value=4),
        cols=st.integers(min_value=1, max_value=4),
        w=st.integers(min_value=1, max_value=3),
    )
    def test_graph_sizes_match_formulas(self, rows, cols, w):
        arch = Architecture(
            rows=rows, cols=cols, channel_width=w, pins_per_block=4
        )
        rrg = RoutingResourceGraph(arch)
        h_segments = (rows + 1) * cols * w
        v_segments = (cols + 1) * rows * w
        junctions = 2 * (h_segments + v_segments)
        pins = rows * cols * 4
        assert rrg.graph.num_nodes == junctions + pins
        segment_edges = sum(
            1 for u, v, _ in rrg.graph.edges()
            if rrg.segment_info(u, v) is not None
        )
        assert segment_edges == h_segments + v_segments

    @SETTINGS
    @given(
        rows=st.integers(min_value=2, max_value=4),
        cols=st.integers(min_value=2, max_value=4),
        w=st.integers(min_value=1, max_value=3),
    )
    def test_graph_always_connected(self, rows, cols, w):
        arch = Architecture(
            rows=rows, cols=cols, channel_width=w, pins_per_block=4
        )
        rrg = RoutingResourceGraph(arch)
        assert rrg.graph.is_connected()

    @SETTINGS
    @given(
        w=st.integers(min_value=1, max_value=5),
        fc=st.integers(min_value=1, max_value=5),
    )
    def test_pin_degree_is_2fc(self, w, fc):
        if fc > w:
            fc = w
        arch = Architecture(
            rows=2, cols=2, channel_width=w, fc=fc, pins_per_block=4
        )
        rrg = RoutingResourceGraph(arch)
        from repro.fpga import pin_node

        # each pin taps fc tracks at both segment ends
        assert rrg.graph.degree(pin_node(0, 0, 0)) == 2 * fc
