"""Tests for the engine's fault-tolerance layer.

Covers the acceptance contract of the resilience work:

* a killed process worker is retried and the run stays bit-identical
  to the serial reference;
* a twice-broken pool degrades process → thread (→ serial) with the
  degradation recorded in the trace, and the run still completes;
* a session interrupted after pass *k* resumes from its checkpoint to
  the same channel width, total wirelength and per-net routes as an
  uninterrupted run, and the interrupt leaves no orphaned workers;
* deadlines (`pass_timeout_s` / `route_timeout_s` / `max_relaxations`)
  abort cleanly with `EngineTimeoutError` carrying partial stats;
* checkpoints are checksummed, fingerprinted and atomic — corruption
  and incompatibility are explicit `CheckpointError`s, never a
  silently different answer.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle

import pytest

import repro
from repro.cli import main as cli_main
from repro.engine import (
    CHECKPOINT_SCHEMA,
    DEGRADATION_LADDER,
    ExecutorSupervisor,
    FaultInjected,
    FaultPlan,
    RetryPolicy,
    RoutingSession,
    create_executor,
    load_checkpoint,
    load_trace,
    map_with_recovery,
    save_checkpoint,
    sweep_stale_tmp,
)
from repro.errors import (
    CheckpointError,
    EngineError,
    EngineTimeoutError,
    ReproError,
    UnroutableError,
    WorkerCrashError,
)
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc3000
from repro.router import RouterConfig, minimum_channel_width
from repro.router.router import FPGARouter


@pytest.fixture(scope="module")
def small_circuit():
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=1)


@pytest.fixture(scope="module")
def wide_circuit():
    """Large enough for multi-net batches (speculative dispatch)."""
    spec = scaled_spec(circuit_spec("busc"), 0.6)
    return synthesize_circuit(spec, seed=1)


def _arch_for(circuit, width):
    return xc3000(circuit.rows, circuit.cols, width)


def _edge_set(route):
    # routing edges are undirected: canonicalize the endpoint order
    return sorted(
        (*sorted((repr(u), repr(v))), w) for u, v, w in route.edges
    )


def _assert_routes_identical(a, b):
    assert len(a.routes) == len(b.routes)
    for ra, rb in zip(a.routes, b.routes):
        assert ra.name == rb.name
        assert ra.wirelength == rb.wirelength
        assert _edge_set(ra) == _edge_set(rb)


KMB = RouterConfig(algorithm="kmb")


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_from_env_unset_is_none(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None

    def test_from_env_parses_fields(self, tmp_path):
        plan = FaultPlan.from_env(
            {
                "REPRO_FAULTS": (
                    f"kill=2,kill_times=3,fail=1,delay=0,"
                    f"delay_seconds=0.5,corrupt_checkpoint=1,"
                    f"dir={tmp_path}"
                )
            }
        )
        assert plan.kill_on_task == 2
        assert plan.kill_times == 3
        assert plan.fail_on_task == 1
        assert plan.delay_on_task == 0
        assert plan.delay_seconds == 0.5
        assert plan.corrupt_checkpoint is True
        assert plan.state_dir == str(tmp_path)

    def test_from_env_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.from_env({"REPRO_FAULTS": "kill"})
        with pytest.raises(ValueError):
            FaultPlan.from_env({"REPRO_FAULTS": "frobnicate=1"})

    def test_marker_files_bound_firing(self, tmp_path):
        plan = FaultPlan(
            fail_on_task=0, fail_times=2, state_dir=str(tmp_path)
        )
        fired = 0
        for _ in range(5):
            try:
                plan.inject(7)
            except FaultInjected:
                fired += 1
        assert fired == 2
        assert plan.fired("fail") == 2

    def test_kill_downgrades_to_exception_in_process(self, tmp_path):
        plan = FaultPlan(
            kill_on_task=0, kill_times=1, state_dir=str(tmp_path)
        )
        with pytest.raises(FaultInjected):
            plan.inject(0)  # in-process: must not os._exit the test run
        plan.inject(0)  # budget claimed — second call is a no-op

    def test_fault_injected_is_not_a_repro_error(self):
        # the retry layer must treat it as an infrastructure crash
        assert not issubclass(FaultInjected, ReproError)


# ----------------------------------------------------------------------
# retry / supervisor units
# ----------------------------------------------------------------------
class TestRetryAndSupervisor:
    def test_transient_failure_is_retried(self):
        calls = {"n": 0}

        def flaky(item):
            calls["n"] += 1
            # fails the batch fast path, then the first per-item attempt
            if calls["n"] <= 2:
                raise RuntimeError("transient")
            return item * 10

        events = []
        with ExecutorSupervisor("serial") as sup:
            out = map_with_recovery(
                sup, flaky, [1, 2], RetryPolicy(), events.append,
                sleep=lambda s: None,
            )
        assert out == [10, 20]
        kinds = [e["type"] for e in events]
        assert "redispatch" in kinds and "retry" in kinds

    def test_repro_errors_are_never_retried(self):
        calls = {"n": 0}

        def semantic(item):
            calls["n"] += 1
            raise UnroutableError(3, 1, ("x",))

        with ExecutorSupervisor("serial") as sup:
            with pytest.raises(UnroutableError):
                map_with_recovery(
                    sup, semantic, [1], RetryPolicy(), lambda e: None,
                    sleep=lambda s: None,
                )
        assert calls["n"] == 1

    def test_persistent_crash_becomes_worker_crash_error(self):
        def doomed(item):
            raise RuntimeError("hardware on fire")

        with ExecutorSupervisor("serial") as sup:
            with pytest.raises(WorkerCrashError) as info:
                map_with_recovery(
                    sup, doomed, [object()], RetryPolicy(max_attempts=2),
                    lambda e: None, sleep=lambda s: None,
                )
        assert info.value.attempts == 2

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            base_delay_s=0.01, max_delay_s=0.05, jitter=0.5, seed=42
        )
        a = [policy.delay(i, policy.rng()) for i in range(6)]
        b = [policy.delay(i, policy.rng()) for i in range(6)]
        assert a == b  # seeded jitter: re-runs sleep the same schedule
        assert all(d <= 0.05 * 1.5 for d in a)  # saturates + jitter cap

    def test_supervisor_rebuilds_then_walks_the_ladder(self):
        events = []
        sup = ExecutorSupervisor("process", 2, on_event=events.append)
        try:
            sup.handle_breakage(RuntimeError("crash 1"))
            assert sup.current == "process"  # rebuilt, not degraded
            sup.handle_breakage(RuntimeError("crash 2"))
            assert sup.current == "thread"
            sup.handle_breakage(RuntimeError("crash 3"))
            assert sup.current == "serial"
            assert [e["type"] for e in events] == [
                "pool_rebuilt", "degraded", "degraded",
            ]
            assert (events[1]["from"], events[1]["to"]) == (
                "process", "thread",
            )
            assert (events[2]["from"], events[2]["to"]) == (
                "thread", "serial",
            )
        finally:
            sup.close()
        assert DEGRADATION_LADDER == {"process": "thread", "thread": "serial"}

    def test_closed_supervisor_refuses_dispatch(self):
        sup = ExecutorSupervisor("serial")
        sup.close()
        with pytest.raises(EngineError):
            sup.executor


# ----------------------------------------------------------------------
# constructor validation + context managers (satellites)
# ----------------------------------------------------------------------
class TestLifecycle:
    @pytest.mark.parametrize("engine", ["serial", "thread", "process"])
    def test_create_executor_rejects_bad_worker_count(self, engine):
        with pytest.raises(ReproError):
            create_executor(engine, max_workers=0)
        with pytest.raises(ReproError):
            create_executor(engine, max_workers=-3)

    def test_executor_is_a_context_manager(self):
        with create_executor("thread", 2) as ex:
            assert ex.map(len, ["ab", "c"]) == [2, 1]
        with create_executor("serial") as ex:
            assert ex.map(len, []) == []

    def test_session_is_a_context_manager(self, small_circuit):
        with RoutingSession(
            _arch_for(small_circuit, 3), KMB, engine="thread"
        ) as session:
            result = session.route(small_circuit)
        assert result.complete
        session.close()  # idempotent

    def test_session_rejects_bad_worker_count(self, small_circuit):
        session = RoutingSession(
            _arch_for(small_circuit, 3), KMB, engine="thread", max_workers=0
        )
        with pytest.raises(ReproError):
            session.route(small_circuit)


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_hierarchy(self):
        for cls in (EngineError, WorkerCrashError, EngineTimeoutError,
                    CheckpointError):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, EngineError)

    def test_worker_crash_error_pickles(self):
        err = WorkerCrashError("net7", 3, RuntimeError("boom"))
        back = pickle.loads(pickle.dumps(err))
        assert back.net == "net7"
        assert back.attempts == 3
        assert "boom" in str(back.cause)

    def test_engine_timeout_error_pickles(self):
        err = EngineTimeoutError(
            "too slow", kind="net", budget=1.5, elapsed=2.0,
            partial={"pass": 3},
        )
        back = pickle.loads(pickle.dumps(err))
        assert back.kind == "net"
        assert back.budget == 1.5
        assert back.partial == {"pass": 3}


# ----------------------------------------------------------------------
# fault injection end-to-end (the acceptance criteria)
# ----------------------------------------------------------------------
class TestFaultInjectionEndToEnd:
    def test_killed_process_worker_is_bit_identical_to_serial(
        self, wide_circuit, tmp_path
    ):
        reference = RoutingSession(_arch_for(wide_circuit, 8), KMB).route(
            wide_circuit
        )
        plan = FaultPlan(
            kill_on_task=0, kill_times=1, state_dir=str(tmp_path)
        )
        session = RoutingSession(
            _arch_for(wide_circuit, 8), KMB,
            engine="process", max_workers=2, faults=plan,
        )
        result = session.route(wide_circuit)
        assert plan.fired("kill") == 1  # the worker really died
        assert result.total_wirelength == pytest.approx(
            reference.total_wirelength
        )
        _assert_routes_identical(reference, result)
        kinds = [e["type"] for e in session.trace.events]
        assert "pool_rebuilt" in kinds
        assert session.trace.totals()["retries"] >= 1

    def test_twice_broken_pool_degrades_and_completes(
        self, wide_circuit, tmp_path
    ):
        reference = RoutingSession(_arch_for(wide_circuit, 8), KMB).route(
            wide_circuit
        )
        plan = FaultPlan(
            kill_on_task=0, kill_times=2, state_dir=str(tmp_path)
        )
        # one worker: the two kills are sequential, so the pool breaks
        # twice (two workers could both die inside a single dispatch)
        session = RoutingSession(
            _arch_for(wide_circuit, 8), KMB,
            engine="process", max_workers=1, faults=plan,
        )
        result = session.route(wide_circuit)
        assert plan.fired("kill") == 2
        assert result.total_wirelength == pytest.approx(
            reference.total_wirelength
        )
        kinds = [e["type"] for e in session.trace.events]
        assert "pool_rebuilt" in kinds
        assert "degraded" in kinds
        degraded = next(
            e for e in session.trace.events if e["type"] == "degraded"
        )
        assert (degraded["from"], degraded["to"]) == ("process", "thread")
        assert session.trace.engine_final == "thread"
        doc = session.trace.to_dict()
        assert doc["engine"] == "process"
        assert doc["engine_final"] == "thread"

    def test_injected_task_failure_is_retried_in_thread_engine(
        self, wide_circuit, tmp_path
    ):
        reference = RoutingSession(_arch_for(wide_circuit, 8), KMB).route(
            wide_circuit
        )
        plan = FaultPlan(
            fail_on_task=0, fail_times=1, state_dir=str(tmp_path)
        )
        session = RoutingSession(
            _arch_for(wide_circuit, 8), KMB,
            engine="thread", max_workers=2, faults=plan,
        )
        result = session.route(wide_circuit)
        assert plan.fired("fail") == 1
        assert result.total_wirelength == pytest.approx(
            reference.total_wirelength
        )
        assert session.trace.engine_final == "thread"  # no degradation

    def test_kill_during_flat_materialize_is_bit_identical(
        self, wide_circuit, tmp_path
    ):
        # the CSR shipping path has its own window: the worker dies
        # while the task's graph exists only as shipped flat arrays,
        # before the thaw-side pin attachment
        reference = RoutingSession(_arch_for(wide_circuit, 8), KMB).route(
            wide_circuit
        )
        flat = RouterConfig(algorithm="kmb", graph_backend="flat")
        plan = FaultPlan(kill_on_materialize=0, state_dir=str(tmp_path))
        session = RoutingSession(
            _arch_for(wide_circuit, 8), flat,
            engine="process", max_workers=2, faults=plan,
        )
        result = session.route(wide_circuit)
        assert plan.fired("kill-mat") == 1  # it really died mid-thaw
        assert result.total_wirelength == pytest.approx(
            reference.total_wirelength
        )
        _assert_routes_identical(reference, result)
        kinds = [e["type"] for e in session.trace.events]
        assert "pool_rebuilt" in kinds
        assert session.trace.totals()["retries"] >= 1


# ----------------------------------------------------------------------
# deadlines and budgets
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_config_validates_budgets(self):
        with pytest.raises(ReproError):
            RouterConfig(pass_timeout_s=0)
        with pytest.raises(ReproError):
            RouterConfig(route_timeout_s=-1)
        with pytest.raises(ReproError):
            RouterConfig(max_relaxations=0)

    def test_pass_timeout_aborts_with_partial_stats(self, small_circuit):
        cfg = RouterConfig(algorithm="kmb", pass_timeout_s=1e-9)
        session = RoutingSession(_arch_for(small_circuit, 3), cfg)
        with pytest.raises(EngineTimeoutError) as info:
            session.route(small_circuit)
        assert info.value.kind == "pass"
        assert info.value.partial["pass"] == 1
        assert info.value.partial["circuit"] == small_circuit.name
        assert session.trace.outcome == "timeout"
        assert any(
            e["type"] == "timeout" for e in session.trace.events
        )

    def test_relaxation_budget_is_deterministic(self, small_circuit):
        cfg = RouterConfig(algorithm="kmb", max_relaxations=1)
        session = RoutingSession(_arch_for(small_circuit, 3), cfg)
        with pytest.raises(EngineTimeoutError) as info:
            session.route(small_circuit)
        assert info.value.kind == "relaxations"

    def test_net_deadline_fires_inside_dijkstra(self, small_circuit):
        cfg = RouterConfig(algorithm="kmb", route_timeout_s=1e-12)
        session = RoutingSession(_arch_for(small_circuit, 3), cfg)
        with pytest.raises(EngineTimeoutError) as info:
            session.route(small_circuit)
        assert info.value.kind == "net"

    def test_unbudgeted_config_still_routes(self, small_circuit):
        result = RoutingSession(_arch_for(small_circuit, 3), KMB).route(
            small_circuit
        )
        assert result.complete


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def _interrupt_after_first_checkpoint(self, monkeypatch, ck):
        """Arrange KeyboardInterrupt on the first net after a checkpoint
        exists — i.e. at the start of pass 2."""
        original = FPGARouter._route_one

        def interrupted(self, *args, **kwargs):
            if os.path.exists(ck):
                raise KeyboardInterrupt
            return original(self, *args, **kwargs)

        monkeypatch.setattr(FPGARouter, "_route_one", interrupted)
        return original

    def test_interrupted_session_resumes_bit_identically(
        self, small_circuit, tmp_path, monkeypatch
    ):
        # term1@0.22 at W=3 takes two passes, so pass 1 checkpoints
        reference = RoutingSession(_arch_for(small_circuit, 3), KMB).route(
            small_circuit
        )
        assert reference.passes_used > 1

        ck = str(tmp_path / "session.ck")
        original = self._interrupt_after_first_checkpoint(monkeypatch, ck)
        session = RoutingSession(_arch_for(small_circuit, 3), KMB)
        with pytest.raises(KeyboardInterrupt):
            session.route(small_circuit, checkpoint=ck)
        monkeypatch.setattr(FPGARouter, "_route_one", original)

        assert os.path.exists(ck)  # the interrupt left a resume point
        state = load_checkpoint(ck)
        assert state["outcome"] == "in_progress"
        assert state["next_pass"] == 2

        resumed_session = RoutingSession(_arch_for(small_circuit, 3), KMB)
        resumed = resumed_session.route(small_circuit, resume=ck)
        assert resumed.passes_used == reference.passes_used
        assert resumed.total_wirelength == pytest.approx(
            reference.total_wirelength
        )
        _assert_routes_identical(reference, resumed)
        trace = resumed_session.trace
        assert trace.resumed_from == {"path": ck, "next_pass": 2}
        # the resumed trace covers the whole logical run
        assert len(trace.pass_dicts()) == reference.passes_used

    def test_interrupt_leaves_no_orphaned_workers(
        self, small_circuit, tmp_path, monkeypatch
    ):
        ck = str(tmp_path / "orphan.ck")
        self._interrupt_after_first_checkpoint(monkeypatch, ck)
        session = RoutingSession(
            _arch_for(small_circuit, 3), KMB,
            engine="process", max_workers=2,
        )
        with pytest.raises(KeyboardInterrupt):
            session.route(small_circuit, checkpoint=ck)
        # route()'s finally closed the supervisor: the pool is gone
        assert session._supervisor is None
        assert multiprocessing.active_children() == []
        assert os.path.exists(ck)

    def test_checkpoint_removed_on_success(self, small_circuit, tmp_path):
        ck = str(tmp_path / "done.ck")
        result = RoutingSession(_arch_for(small_circuit, 3), KMB).route(
            small_circuit, checkpoint=ck
        )
        assert result.complete
        assert not os.path.exists(ck)

    def test_unroutable_checkpoint_skips_width_in_sweep(
        self, small_circuit, tmp_path
    ):
        cfg = RouterConfig(algorithm="kmb", max_passes=2)
        w_ref, r_ref = minimum_channel_width(
            small_circuit, xc3000, cfg, w_start=1
        )
        ck = str(tmp_path / "sweep.ck")
        session = RoutingSession(_arch_for(small_circuit, 1), cfg)
        with pytest.raises(UnroutableError) as info:
            session.route(small_circuit, checkpoint=ck)
        assert info.value.failed_nets  # names, not a bare count
        assert load_checkpoint(ck)["outcome"] == "unroutable"

        w, result = minimum_channel_width(
            small_circuit, xc3000, cfg, w_start=1,
            checkpoint=ck, resume=ck,
        )
        assert w == w_ref
        assert result.total_wirelength == pytest.approx(
            r_ref.total_wirelength
        )
        assert not os.path.exists(ck)  # success cleans up the sweep file

    def test_sweep_resume_missing_file_is_fine(
        self, small_circuit, tmp_path
    ):
        w, result = minimum_channel_width(
            small_circuit, xc3000, KMB,
            resume=str(tmp_path / "never-written.ck"),
        )
        assert result.complete

    def test_resume_requires_existing_file(self, small_circuit, tmp_path):
        session = RoutingSession(_arch_for(small_circuit, 3), KMB)
        with pytest.raises(CheckpointError):
            session.route(
                small_circuit, resume=str(tmp_path / "missing.ck")
            )

    def test_stale_tmp_orphans_are_swept(self, tmp_path):
        # a crash between staging <path>.tmp.<pid> and os.replace()
        # leaves the staging file behind; save and load both sweep it
        path = str(tmp_path / "swept.ck")
        orphan = f"{path}.tmp.12345"
        with open(orphan, "w") as fh:
            fh.write("dead writer's half-written checkpoint")
        save_checkpoint(path, {"outcome": "in_progress"})
        assert not os.path.exists(orphan)
        assert load_checkpoint(path)["outcome"] == "in_progress"

        with open(orphan, "w") as fh:
            fh.write("another orphan, left after the save")
        assert load_checkpoint(path)["outcome"] == "in_progress"
        assert not os.path.exists(orphan)
        # the checkpoint itself survives the sweep
        assert os.path.exists(path)

    def test_sweep_stale_tmp_counts_only_orphans(self, tmp_path):
        path = str(tmp_path / "count.ck")
        save_checkpoint(path, {"outcome": "in_progress"})
        for pid in (111, 222):
            with open(f"{path}.tmp.{pid}", "w") as fh:
                fh.write("orphan")
        (tmp_path / "unrelated.txt").write_text("kept")
        assert sweep_stale_tmp(path) == 2
        assert sweep_stale_tmp(path) == 0
        assert (tmp_path / "unrelated.txt").exists()
        assert os.path.exists(path)

    def test_corrupt_checkpoint_is_refused(self, tmp_path):
        path = str(tmp_path / "corrupt.ck")
        plan = FaultPlan(corrupt_checkpoint=True, state_dir=str(tmp_path))
        save_checkpoint(path, {"outcome": "in_progress"}, faults=plan)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_truncated_checkpoint_is_refused(self, tmp_path):
        path = tmp_path / "broken.ck"
        path.write_text('{"schema": "repro.engine/checkpoint-v1", "sta')
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_wrong_schema_is_refused(self, tmp_path):
        path = tmp_path / "alien.ck"
        path.write_text(json.dumps({"schema": "other", "state": {}}))
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(str(path))
        assert CHECKPOINT_SCHEMA == "repro.engine/checkpoint-v1"

    def test_mismatched_config_is_refused(
        self, small_circuit, tmp_path, monkeypatch
    ):
        ck = str(tmp_path / "fingerprint.ck")
        self._interrupt_after_first_checkpoint(monkeypatch, ck)
        session = RoutingSession(_arch_for(small_circuit, 3), KMB)
        with pytest.raises(KeyboardInterrupt):
            session.route(small_circuit, checkpoint=ck)

        other = RoutingSession(
            _arch_for(small_circuit, 3), RouterConfig(algorithm="ikmb")
        )
        with pytest.raises(CheckpointError, match="config"):
            other.route(small_circuit, resume=ck)


# ----------------------------------------------------------------------
# facade + CLI surface
# ----------------------------------------------------------------------
class TestSurface:
    def test_facade_exports_engine_errors(self):
        for name in ("EngineError", "WorkerCrashError",
                     "EngineTimeoutError", "CheckpointError"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_facade_route_accepts_checkpoint_kwargs(
        self, small_circuit, tmp_path
    ):
        result = repro.route(
            small_circuit, arch=_arch_for(small_circuit, 3), config=KMB,
            checkpoint=str(tmp_path / "facade.ck"),
        )
        assert result.complete

    def test_trace_v1_documents_still_load(self, tmp_path):
        path = tmp_path / "old-trace.json"
        path.write_text(json.dumps({"schema": "repro.engine/trace-v1"}))
        assert load_trace(str(path))["schema"] == "repro.engine/trace-v1"

    def test_cli_unroutable_exits_3_with_net_names(
        self, monkeypatch, capsys
    ):
        def explode(*args, **kwargs):
            raise UnroutableError(4, 20, ("net_a", "net_b"))

        monkeypatch.setattr(
            "repro.cli.minimum_channel_width", explode
        )
        code = cli_main(["route", "term1", "--fraction", "0.22"])
        err = capsys.readouterr().err
        assert code == 3
        assert "net_a" in err and "net_b" in err

    def test_cli_timeout_exits_3_with_partial_progress(
        self, monkeypatch, capsys
    ):
        def explode(*args, **kwargs):
            raise EngineTimeoutError(
                "pass 2 exceeded its 1.0s budget", kind="pass",
                partial={"pass": 2, "nets_routed": 17},
            )

        monkeypatch.setattr(
            "repro.cli.minimum_channel_width", explode
        )
        code = cli_main(["route", "term1"])
        err = capsys.readouterr().err
        assert code == 3
        assert "nets_routed=17" in err

    def test_cli_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as info:
            cli_main(["route", "--engine", "warp"])
        assert info.value.code == 2

    def test_cli_checkpoint_roundtrip(self, tmp_path, capsys):
        ck = str(tmp_path / "cli.ck")
        code = cli_main(
            ["route", "term1", "--fraction", "0.22",
             "--algorithm", "kmb", "--checkpoint", ck]
        )
        assert code == 0
        assert not os.path.exists(ck)  # success removes the checkpoint
        assert "complete routing" in capsys.readouterr().out
