"""Tests for the self-verification stack (:mod:`repro.validate`).

Covers the three layers of the issue:

* input lint — structured diagnostics with stable codes, strict mode;
* the independent result checker — certifies genuine results for all
  four arborescence algorithms and both Steiner families, and catches
  deliberately corrupted results (tampered bookkeeping, foreign edges,
  shared resources, over-capacity channels, non-shortest arborescence
  paths);
* the engine integration — ``RouterConfig.verify`` modes, the
  quarantine-and-repair loop, and the trace observability.
"""

from __future__ import annotations

import io
import json
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.engine import RoutingSession
from repro.errors import (
    RoutingError,
    UnroutableError,
    ValidationError,
    VerificationError,
)
from repro.fpga import CircuitSpec, synthesize_circuit, xc3000
from repro.fpga.netlist import PlacedCircuit, PlacedNet
from repro.fpga.routing_graph import RoutingResourceGraph, pin_node
from repro.graph import shortest_path
from repro.graph.core import edge_key
from repro.router import RouterConfig
from repro.router.result import NetRoute, RoutingResult
from repro.validate import (
    CODES,
    Diagnostic,
    ValidationReport,
    merge_reports,
    validate_architecture,
    validate_circuit,
    verify_result,
)
from repro.validate.lint import pin_span

WIDTH = 6

SPEC = CircuitSpec(
    name="val-tiny",
    family="xc3000",
    cols=4,
    rows=4,
    nets_2_3=8,
    nets_4_10=3,
    nets_over_10=1,
    published={},
)


@pytest.fixture(scope="module")
def circuit():
    return synthesize_circuit(SPEC, seed=3)


@pytest.fixture(scope="module")
def arch(circuit):
    return xc3000(circuit.rows, circuit.cols, WIDTH)


def route_with(circuit, arch, **cfg):
    session = RoutingSession(arch, RouterConfig(**cfg))
    return session.route(circuit)


# ----------------------------------------------------------------------
# diagnostics plumbing
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="NOT_A_CODE", severity="error", message="x")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="NET_NO_SINKS", severity="fatal", message="x")

    def test_report_accessors(self):
        report = ValidationReport(subject="thing")
        assert report.ok and report.render() == "thing: ok"
        report.add("NET_NO_SINKS", "no sinks", location="n1")
        report.add("CHANNEL_CAPACITY_TIGHT", "tight", severity="warning")
        assert not report.ok
        assert report.has("NET_NO_SINKS")
        assert report.codes() == [
            "NET_NO_SINKS", "CHANNEL_CAPACITY_TIGHT"
        ]
        assert len(report.errors) == 1 and len(report.warnings) == 1
        assert "NET_NO_SINKS [n1]" in report.render()
        doc = report.to_dict()
        assert doc["ok"] is False and len(doc["diagnostics"]) == 2

    def test_raise_if_errors_strict_promotes_warnings(self):
        report = ValidationReport(subject="thing")
        report.add("CHANNEL_CAPACITY_TIGHT", "tight", severity="warning")
        report.raise_if_errors()  # lenient: warnings pass
        with pytest.raises(ValidationError) as exc:
            report.raise_if_errors(strict=True)
        assert exc.value.report is report

    def test_merge_reports(self):
        a = ValidationReport(subject="a")
        a.add("NET_NO_SINKS", "x")
        b = ValidationReport(subject="b")
        b.add("NET_DUP_NAME", "y")
        merged = merge_reports("both", [a, b])
        assert merged.codes() == ["NET_NO_SINKS", "NET_DUP_NAME"]


# ----------------------------------------------------------------------
# input lint
# ----------------------------------------------------------------------
class TestCircuitLint:
    def test_clean_circuit_ok(self, circuit, arch):
        report = validate_circuit(circuit, arch)
        assert report.ok and not report.errors

    def test_duplicate_net_name(self):
        nets = [
            PlacedNet(name="n", source=(0, 0, 0), sinks=((1, 1, 1),)),
            PlacedNet(name="n", source=(2, 2, 2), sinks=((1, 2, 3),)),
        ]
        c = PlacedCircuit(name="dup", rows=3, cols=3, nets=nets)
        assert validate_circuit(c).has("NET_DUP_NAME")

    def test_placement_out_of_range(self):
        nets = [
            PlacedNet(name="n", source=(0, 0, 0), sinks=((9, 9, 1),)),
        ]
        c = PlacedCircuit(name="oob", rows=3, cols=3, nets=nets)
        report = validate_circuit(c)
        assert report.has("PLACEMENT_OUT_OF_RANGE") and not report.ok

    def test_pin_reused_across_nets(self):
        nets = [
            PlacedNet(name="a", source=(0, 0, 0), sinks=((1, 1, 1),)),
            PlacedNet(name="b", source=(2, 2, 2), sinks=((1, 1, 1),)),
        ]
        c = PlacedCircuit(name="reuse", rows=3, cols=3, nets=nets)
        assert validate_circuit(c).has("PIN_REUSED")

    def test_degenerate_nets_reported_not_raised(self):
        # PlacedNet's own constructor rejects these shapes, so the lint
        # paths are exercised with structural stand-ins: the lint layer
        # must diagnose, not crash, whatever it is handed
        no_sinks = SimpleNamespace(
            name="empty", source=(0, 0, 0), sinks=(),
            pins=((0, 0, 0),),
        )
        dup_terminal = SimpleNamespace(
            name="twice", source=(1, 1, 1), sinks=((1, 1, 1),),
            pins=((1, 1, 1), (1, 1, 1)),
        )
        c = PlacedCircuit(name="weird", rows=3, cols=3, nets=[])
        c.nets = [no_sinks, dup_terminal]
        report = validate_circuit(c)
        assert report.has("NET_NO_SINKS")
        assert report.has("NET_DUP_TERMINAL")

    def test_pin_slot_out_of_range_needs_arch(self, arch):
        nets = [
            PlacedNet(name="n", source=(0, 0, 99), sinks=((1, 1, 1),)),
        ]
        c = PlacedCircuit(name="slot", rows=3, cols=3, nets=nets)
        assert not validate_circuit(c).has("PIN_SLOT_OUT_OF_RANGE")
        assert validate_circuit(c, arch).has("PIN_SLOT_OUT_OF_RANGE")

    def test_array_mismatch(self, arch):
        nets = [
            PlacedNet(name="n", source=(0, 0, 0), sinks=((1, 1, 1),)),
        ]
        c = PlacedCircuit(name="big", rows=40, cols=40, nets=nets)
        assert validate_circuit(c, arch).has("ARRAY_MISMATCH")

    def test_channel_capacity_lower_bound(self):
        # W=2 and three distinct nets tapping one span: the span-demand
        # lower bound must flag it, but only as a *warning* so the
        # minimum-width sweep can still probe infeasible widths
        arch = xc3000(4, 4, 2)
        by_span = {}
        for p in range(arch.pins_per_block):
            for bx, by in ((1, 1), (1, 2), (2, 1), (2, 2)):
                by_span.setdefault(pin_span(arch, bx, by, p), []).append(
                    (bx, by, p)
                )
        span, pins = next(
            (s, refs) for s, refs in by_span.items() if len(refs) >= 3
        )
        far = [(0, 0, 0), (3, 3, 0), (0, 3, 0)]
        nets = [
            PlacedNet(name=f"n{i}", source=far[i], sinks=(pins[i],))
            for i in range(3)
        ]
        c = PlacedCircuit(name="crowded", rows=4, cols=4, nets=nets)
        report = validate_circuit(c, arch)
        assert report.has("CHANNEL_CAPACITY_EXCEEDED")
        assert report.ok  # warnings only — never blocks the sweep

    def test_session_rejects_invalid_circuit(self, arch):
        nets = [
            PlacedNet(name="a", source=(0, 0, 0), sinks=((1, 1, 1),)),
            PlacedNet(name="a", source=(2, 2, 2), sinks=((1, 2, 3),)),
        ]
        c = PlacedCircuit(name="dup", rows=3, cols=3, nets=nets)
        with pytest.raises(ValidationError):
            RoutingSession(arch, RouterConfig()).route(c)


class TestArchitectureLint:
    def test_standard_arch_has_no_errors(self, arch):
        report = validate_architecture(arch)
        assert report.ok
        # Fc < W on this part: informational, not a defect
        assert report.has("ARCH_FC_BELOW_FULL")

    def test_all_emitted_codes_registered(self, circuit, arch):
        for d in (
            validate_circuit(circuit, arch).diagnostics
            + validate_architecture(arch).diagnostics
        ):
            assert d.code in CODES


# ----------------------------------------------------------------------
# independent result checker
# ----------------------------------------------------------------------
class TestCheckerCertifies:
    @pytest.mark.parametrize("algo", ["ikmb", "izel", "pfa", "idom"])
    def test_genuine_results_certify(self, circuit, arch, algo):
        result = route_with(circuit, arch, algorithm=algo)
        report = verify_result(result, circuit, arch)
        assert report.ok, report.render()
        assert not report.warnings, report.render()


class TestCheckerCatches:
    @pytest.fixture(scope="class")
    def result(self, circuit, arch):
        return route_with(circuit, arch, algorithm="ikmb")

    def test_tampered_wirelength(self, result, circuit, arch):
        bad = replace(
            result,
            routes=[replace(result.routes[0],
                            wirelength=result.routes[0].wirelength + 5.0)]
            + result.routes[1:],
        )
        report = verify_result(bad, circuit, arch)
        assert report.has("WIRELENGTH_MISMATCH") and not report.ok

    def test_mutated_edge(self, result, circuit, arch):
        r0 = result.routes[0]
        u, v, w = r0.edges[0]
        bogus = (("J", 99, 99, "E", 0), ("J", 100, 99, "W", 0), w)
        bad = replace(
            result, routes=[replace(r0, edges=[bogus] + r0.edges[1:])]
            + result.routes[1:],
        )
        report = verify_result(bad, circuit, arch)
        assert report.has("TREE_EDGE_NOT_IN_DEVICE")

    def test_shared_resource(self, result, circuit, arch):
        # graft net 0's edges onto net 1: every node of net 0 is now
        # claimed twice
        r0, r1 = result.routes[0], result.routes[1]
        bad = replace(
            result,
            routes=[r0, replace(r1, edges=r1.edges + r0.edges)]
            + result.routes[2:],
        )
        report = verify_result(bad, circuit, arch)
        assert report.has("RESOURCE_SHARED")

    def test_overcapacity_channel(self, result, circuit, arch):
        # invent W+1 parallel track edges on one span inside one route:
        # structurally real device edges cannot all coexist
        span_x, span_y = 1, 1
        extra = [
            (("J", span_x, span_y, "E", t),
             ("J", span_x + 1, span_y, "W", t),
             arch.segment_weight)
            for t in range(arch.channel_width + 1)
        ]
        r0 = result.routes[0]
        bad = replace(
            result, routes=[replace(r0, edges=r0.edges + extra)]
            + result.routes[1:],
        )
        report = verify_result(bad, circuit, arch)
        assert report.has("CHANNEL_OVERCAPACITY")

    def test_missing_and_unknown_nets(self, result, circuit, arch):
        bad = replace(
            result,
            routes=[replace(result.routes[0], name="ghost")]
            + result.routes[1:],
        )
        report = verify_result(bad, circuit, arch)
        assert report.has("RESULT_NET_UNKNOWN")
        assert report.has("RESULT_NET_MISSING")

    def test_duplicate_route(self, result, circuit, arch):
        bad = replace(result, routes=result.routes + [result.routes[0]])
        report = verify_result(bad, circuit, arch)
        assert report.has("RESULT_NET_DUPLICATE")

    def test_static_level_skips_replay(self, result, circuit, arch):
        report = verify_result(result, circuit, arch, level="static")
        assert report.ok
        with pytest.raises(ValueError):
            verify_result(result, circuit, arch, level="bogus")


class TestArborescenceGuarantee:
    def test_detour_path_caught(self):
        """A valid, consistent route that is not shortest must fail.

        The corrupted route is built so every *static* check passes —
        real device edges, correct wirelength and pathlength
        bookkeeping — leaving the commit-order replay as the only
        layer able to catch it.
        """
        net = PlacedNet(name="n0", source=(0, 0, 0), sinks=((2, 2, 1),))
        circuit = PlacedCircuit(name="detour", rows=3, cols=3, nets=[net])
        arch = xc3000(3, 3, WIDTH)
        result = route_with(circuit, arch, algorithm="pfa")
        assert verify_result(result, circuit, arch).ok

        # rebuild the exact graph the net was routed on, then find a
        # strictly longer alternative path by knocking out one edge of
        # the canonical shortest path at a time
        device = RoutingResourceGraph(arch)
        device.detach_all_pins()
        gnet = net.to_graph_net()
        device.attach_pins(gnet.terminals)
        g = device.graph
        source, sink = gnet.source, gnet.sinks[0]
        best_path, best = shortest_path(g, source, sink)
        # the channel lattice has many equal-cost shortest paths;
        # deleting each one found forces the search onto strictly
        # longer routes within a few iterations (every candidate uses
        # only original edges, so it is a real path of the full graph)
        removed = []
        detour = None
        cand_path, cand = best_path, best
        for _ in range(500):
            if cand > best + 1e-9:
                detour = cand_path
                break
            for u, v in zip(cand_path, cand_path[1:]):
                removed.append((u, v, g.weight(u, v)))
                g.remove_edge(u, v)
            cand_path, cand = shortest_path(g, source, sink)
        for u, v, w in removed:
            g.add_edge(u, v, w)
        assert detour is not None, "no strictly longer detour found"

        pristine = RoutingResourceGraph(arch)
        edges = [
            (u, v, pristine.base_weight(u, v))
            for u, v in zip(detour, detour[1:])
        ]
        length = sum(w for _, _, w in edges)
        bad_route = NetRoute(
            name="n0",
            algorithm="pfa",
            source=source,
            sinks=(sink,),
            edges=edges,
            wirelength=length,
            pathlengths={sink: length},
            optimal_pathlengths={sink: length},
        )
        bad = replace(result, routes=[bad_route])

        static = verify_result(bad, circuit, arch, level="static")
        assert static.ok, static.render()  # bookkeeping is consistent
        full = verify_result(bad, circuit, arch, level="full")
        assert {d.code for d in full.errors} == {
            "ARBORESCENCE_NOT_SHORTEST"
        }, full.render()


# ----------------------------------------------------------------------
# uncommit (the repair primitive)
# ----------------------------------------------------------------------
class TestUncommit:
    def test_commit_roundtrip(self, circuit, arch):
        result = route_with(circuit, arch, algorithm="ikmb")
        device = RoutingResourceGraph(arch)
        device.detach_all_pins()
        net = {n.name: n for n in circuit.nets}[result.routes[0].name]
        terminals = net.to_graph_net().terminals
        device.attach_pins(terminals)
        before = {
            edge_key(u, v): w for u, v, w in device.graph.edges()
        }
        route = result.routes[0]
        device.commit(route.tree())
        device.uncommit(route.tree())
        device.attach_pins(terminals)
        after = {
            edge_key(u, v): w for u, v, w in device.graph.edges()
        }
        assert before == after


# ----------------------------------------------------------------------
# engine integration: verify modes, repair, quarantine, trace
# ----------------------------------------------------------------------
def _trace_doc(session):
    buf = io.StringIO()
    session.write_trace(buf)
    return json.loads(buf.getvalue())


class TestVerifyModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(RoutingError):
            RouterConfig(verify="paranoid")

    @pytest.mark.parametrize("mode", ["final", "pass"])
    def test_modes_bit_identical_to_off(self, circuit, arch, mode):
        from repro.io import result_to_dict

        base = route_with(circuit, arch, algorithm="ikmb", verify="off")
        checked = route_with(circuit, arch, algorithm="ikmb", verify=mode)
        assert result_to_dict(base) == result_to_dict(checked)

    def test_pass_mode_records_verify_block(self, circuit, arch):
        session = RoutingSession(
            arch, RouterConfig(algorithm="ikmb", verify="pass")
        )
        session.route(circuit)
        doc = _trace_doc(session)
        assert doc["schema"] == "repro.engine/trace-v4"
        assert doc["config"]["verify"] == "pass"
        block = doc["passes"][-1]["verify"]
        assert block["checked"] == len(circuit.nets)
        assert block["violations"] == 0
        assert doc["totals"]["verify"]["checked"] >= len(circuit.nets)

    def test_off_mode_has_no_verify_block(self, circuit, arch):
        session = RoutingSession(arch, RouterConfig(algorithm="ikmb"))
        session.route(circuit)
        doc = _trace_doc(session)
        assert "verify" not in doc["passes"][-1]
        assert "verify" not in doc["totals"]


class TestQuarantineAndRepair:
    def _tampering_router(self, monkeypatch, should_tamper):
        """Patch the router to corrupt selected nets' bookkeeping."""
        from repro.router.router import FPGARouter

        original = FPGARouter._route_one

        def tampered(self, rrg, placed, congestion, critical=None,
                     cache=None):
            route = original(self, rrg, placed, congestion,
                             critical=critical, cache=cache)
            if route is not None and should_tamper(placed.name):
                return replace(route, wirelength=route.wirelength + 5.0)
            return route

        monkeypatch.setattr(FPGARouter, "_route_one", tampered)

    def test_injected_violation_repaired(self, circuit, arch,
                                         monkeypatch):
        target = circuit.nets[0].name
        tampered_once = []

        def should_tamper(name):
            if name == target and not tampered_once:
                tampered_once.append(name)
                return True
            return False

        self._tampering_router(monkeypatch, should_tamper)
        session = RoutingSession(
            arch, RouterConfig(algorithm="ikmb", verify="pass")
        )
        result = session.route(circuit)
        assert not result.failed_nets
        doc = _trace_doc(session)
        kinds = [e["type"] for e in doc["events"]]
        assert "verify_violation" in kinds
        assert "repair" in kinds
        violation = next(
            e for e in doc["events"] if e["type"] == "verify_violation"
        )
        assert violation["net"] == target
        assert "WIRELENGTH_MISMATCH" in violation["codes"]
        repair = next(e for e in doc["events"] if e["type"] == "repair")
        assert repair["outcome"] == "repaired"
        totals = doc["totals"]["verify"]
        assert totals["violations"] == 1
        assert totals["repaired"] == 1
        assert totals["quarantined"] == 0
        # the repaired result still certifies
        assert verify_result(result, circuit, arch).ok

    def test_unrepairable_net_quarantined(self, circuit, arch,
                                          monkeypatch):
        target = circuit.nets[0].name
        self._tampering_router(monkeypatch, lambda name: name == target)
        session = RoutingSession(
            arch, RouterConfig(algorithm="ikmb", verify="pass",
                               max_passes=2)
        )
        with pytest.raises(UnroutableError) as exc:
            session.route(circuit)
        assert target in exc.value.failed_nets
        doc = _trace_doc(session)
        quarantines = [
            e for e in doc["events"]
            if e["type"] == "repair" and e["outcome"] == "quarantined"
        ]
        assert quarantines
        assert doc["totals"]["verify"]["quarantined"] >= 1

    def test_final_mode_raises_on_violation(self, circuit, arch,
                                            monkeypatch):
        # verify="final" has no repair loop: the corrupted result must
        # surface as a VerificationError carrying the report
        target = circuit.nets[0].name
        self._tampering_router(monkeypatch, lambda name: name == target)
        session = RoutingSession(
            arch, RouterConfig(algorithm="ikmb", verify="final")
        )
        with pytest.raises(VerificationError) as exc:
            session.route(circuit)
        assert exc.value.report.has("WIRELENGTH_MISMATCH")
        doc = _trace_doc(session)
        assert doc["outcome"] == "verify_failed"
