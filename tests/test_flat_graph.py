"""Unit tests for the flat CSR graph core and its integration seams.

Covers what the property suite (test_flat_properties.py) does not:
the backend resolver, the deprecated ``Graph._adj`` escape hatch,
pickling, the cache's kernel tags, the worker's flat materialization,
the config/CLI surface, and the package exports.
"""

from __future__ import annotations

import pickle
import warnings

import pytest

import repro
from repro.errors import GraphError, RoutingError
from repro.fpga import xc4000
from repro.fpga.routing_graph import RoutingResourceGraph
from repro.graph import (
    FLAT_AUTO_THRESHOLD,
    FlatGraph,
    Graph,
    GraphView,
    SearchPolicy,
    ShortestPathCache,
    grid_graph,
    resolve_graph_backend,
)
from repro.net import Net
from repro.router import RouterConfig


def small_graph():
    g = Graph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("a", "c", 5.0)
    g.add_node("lone")
    return g


def assert_same_adjacency(g, h):
    assert list(g.nodes) == list(h.nodes)
    assert g.num_edges == h.num_edges
    for node in g.nodes:
        assert list(g.neighbor_items(node)) == list(h.neighbor_items(node))


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_explicit_choices_pass_through(self):
        g = small_graph()
        assert resolve_graph_backend("dict", g) == "dict"
        assert resolve_graph_backend("flat", g) == "flat"

    def test_auto_picks_dict_below_threshold(self):
        assert resolve_graph_backend("auto", small_graph()) == "dict"

    def test_auto_picks_flat_at_threshold(self):
        side = 1
        while side * side < FLAT_AUTO_THRESHOLD:
            side += 1
        g = grid_graph(side, side)
        assert g.num_nodes >= FLAT_AUTO_THRESHOLD
        assert resolve_graph_backend("auto", g) == "flat"

    def test_unknown_choice_rejected(self):
        with pytest.raises(GraphError):
            resolve_graph_backend("csr", small_graph())

    def test_config_validates_backend(self):
        with pytest.raises(RoutingError):
            RouterConfig(graph_backend="csr")
        for choice in ("dict", "flat", "auto"):
            assert RouterConfig(graph_backend=choice).graph_backend == choice


# ----------------------------------------------------------------------
# the deprecated dict-adjacency escape hatch
# ----------------------------------------------------------------------
def test_direct_adj_access_warns():
    g = small_graph()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        adj = g._adj
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
    assert adj is g._adjacency  # still functional, just deprecated


def test_internal_code_does_not_warn():
    """The library itself must stay off the deprecated property —
    routing a grid end to end emits no DeprecationWarning."""
    g = grid_graph(4, 4)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        view = g.freeze()
        view.sssp((0, 0))
        view.thaw()


# ----------------------------------------------------------------------
# pickling (process-engine shipping)
# ----------------------------------------------------------------------
def test_flatgraph_pickle_round_trip():
    g = small_graph()
    flat = g.freeze().flat
    flat.rows()  # populate a lazy mirror; it must not travel
    clone = pickle.loads(pickle.dumps(flat))
    assert isinstance(clone, FlatGraph)
    assert clone.nodes == flat.nodes
    assert clone.num_edges == flat.num_edges
    assert_same_adjacency(g, clone.thaw())


def test_pickle_is_base_arrays_only():
    flat = grid_graph(6, 6).freeze().flat
    flat.rows()
    flat.index  # populate both lazies
    state = flat.__getstate__()
    blob_with_lazies = pickle.dumps(flat)
    fresh = FlatGraph.from_graph(grid_graph(6, 6))
    assert len(blob_with_lazies) == len(pickle.dumps(fresh))
    assert "rows" not in str(state)


# ----------------------------------------------------------------------
# freeze()/GraphView lifecycle
# ----------------------------------------------------------------------
def test_weights_coerce_to_float64():
    g = Graph()
    g.add_edge(1, 2, 2)  # int weight
    h = g.freeze().thaw()
    (nbr, w), = h.neighbor_items(1)
    assert nbr == 2 and w == 2.0 and isinstance(w, float)


def test_view_fresh_tracks_other_graphs():
    g = small_graph()
    view = g.freeze()
    other = small_graph()
    assert view.fresh(g)
    assert not view.fresh(other)  # same version, different object


# ----------------------------------------------------------------------
# cache kernel tags (full + partial entries)
# ----------------------------------------------------------------------
def _flip_backend(cache, backend):
    cache._search = SearchPolicy("dijkstra", graph_backend=backend)


def test_full_sssp_not_served_across_backend_flip():
    g = small_graph()
    cache = ShortestPathCache(
        g, search=SearchPolicy("dijkstra", graph_backend="dict")
    )
    cache.sssp("a")
    assert cache.stats()["misses"] == 1
    assert cache._store_kernel["a"] == "dijkstra"
    cache.sssp("a")
    assert cache.stats()["hits"] == 1  # same kernel: served
    _flip_backend(cache, "flat")
    dist, _ = cache.sssp("a")
    # mismatched tag: entry dropped and recomputed by the flat kernel
    assert cache.stats()["misses"] == 2
    assert cache._store_kernel["a"] == "flat"
    assert dist["c"] == 3.0


def test_partial_entries_keyed_by_kernel():
    g = small_graph()
    cache = ShortestPathCache(
        g, search=SearchPolicy("dijkstra", graph_backend="dict")
    )
    cache.path("a", "c")
    misses = cache.stats()["misses"]
    _flip_backend(cache, "flat")
    path = cache.path("a", "c")
    assert cache.stats()["misses"] == misses + 1  # not served across flip
    assert path == ["a", "b", "c"]


# ----------------------------------------------------------------------
# worker materialization == session snapshot
# ----------------------------------------------------------------------
def _rrg_and_net():
    rrg = RoutingResourceGraph(xc4000(2, 2, 3))
    rrg.detach_all_pins()
    pins = sorted(rrg._pin_edges)[:3]
    return rrg, Net(pins[0], pins[1:], name="n0")


def test_materialize_flat_matches_dict_snapshot():
    from repro.engine.worker import NetTask, materialize_graph

    rrg, net = _rrg_and_net()
    snapshot = rrg.graph.copy()
    rrg.attach_pins(net.terminals, graph=snapshot)
    task = NetTask(
        name="n0",
        net=net,
        algo="djka",
        config=RouterConfig(),
        flat=rrg.graph.freeze().flat,
        pin_taps={pn: rrg.pin_taps(pn) for pn in net.terminals},
    )
    assert_same_adjacency(snapshot, materialize_graph(task))


def test_materialize_requires_some_shipping():
    from repro.engine.worker import NetTask, materialize_graph

    _, net = _rrg_and_net()
    task = NetTask(name="n0", net=net, algo="djka", config=RouterConfig())
    with pytest.raises(GraphError):
        materialize_graph(task)


def test_pin_taps_rejects_non_pin():
    rrg, _ = _rrg_and_net()
    with pytest.raises(GraphError):
        rrg.pin_taps(("J", 0, 0, "E", 0))


# ----------------------------------------------------------------------
# package surface
# ----------------------------------------------------------------------
def test_public_exports():
    for name in ("GraphView", "FlatGraph", "SearchPolicy", "RouterConfig",
                 "Diagnostic"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
    assert repro.GraphView is GraphView
    assert repro.FlatGraph is FlatGraph


def test_cli_graph_backend_flag():
    from repro.cli import _build_parser, _config

    parser = _build_parser()
    args = parser.parse_args(["route", "busc", "--graph-backend", "flat"])
    assert _config(args, "ikmb").graph_backend == "flat"
    args = parser.parse_args(["route", "busc"])
    assert _config(args, "ikmb").graph_backend == "auto"


def test_cli_legacy_aliases_warn():
    from repro.cli import _build_parser

    parser = _build_parser()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        args = parser.parse_args(
            ["route", "busc", "--max-passes", "4", "--trace-file", "t.json"]
        )
    assert args.passes == 4 and args.trace == "t.json"
    messages = [
        str(w.message) for w in caught
        if issubclass(w.category, DeprecationWarning)
    ]
    assert any("--passes" in m for m in messages)
    assert any("--trace" in m for m in messages)
