"""Tests for the routing-resource graph (Figure 2 model)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.fpga import (
    Architecture,
    RoutingResourceGraph,
    build_routing_graph,
    junction,
    pin_node,
    xc4000,
)
from repro.graph import dijkstra


@pytest.fixture
def small_rrg():
    return RoutingResourceGraph(
        Architecture(rows=3, cols=4, channel_width=2, fs=3,
                     pins_per_block=4)
    )


class TestConstruction:
    def test_segment_counts(self, small_rrg):
        arch = small_rrg.arch
        # H spans: (rows+1) channels x cols spans x W tracks
        h = (arch.rows + 1) * arch.cols * arch.channel_width
        v = (arch.cols + 1) * arch.rows * arch.channel_width
        segs = sum(
            1 for u, v_, w in small_rrg.graph.edges()
            if small_rrg.segment_info(u, v_) is not None
        )
        assert segs == h + v

    def test_horizontal_segment_endpoints(self, small_rrg):
        info = small_rrg.segment_info(
            junction(0, 0, "E", 0), junction(1, 0, "W", 0)
        )
        assert info is not None
        assert info.orientation == "H"
        assert info.group == ("H", 0, 0)

    def test_vertical_segment_endpoints(self, small_rrg):
        info = small_rrg.segment_info(
            junction(2, 1, "N", 1), junction(2, 2, "S", 1)
        )
        assert info is not None
        assert info.orientation == "V"

    def test_switch_edges_weight(self, small_rrg):
        # a disjoint-pattern turn at an interior crossing
        u = junction(1, 1, "W", 0)
        v = junction(1, 1, "N", 0)
        assert small_rrg.graph.has_edge(u, v)
        assert small_rrg.graph.weight(u, v) == small_rrg.arch.switch_weight

    def test_boundary_crossings_partial(self, small_rrg):
        # crossing (0, 0) has no W or S side
        assert not small_rrg.graph.has_node(junction(0, 0, "W", 0))
        assert not small_rrg.graph.has_node(junction(0, 0, "S", 0))
        assert small_rrg.graph.has_node(junction(0, 0, "E", 0))
        assert small_rrg.graph.has_node(junction(0, 0, "N", 0))

    def test_pins_attached_with_fc_taps(self, small_rrg):
        pn = pin_node(0, 0, 0)
        # Fc = W = 2 tracks x 2 segment ends
        assert small_rrg.graph.degree(pn) == 4

    def test_graph_connected(self, small_rrg):
        assert small_rrg.graph.is_connected()

    def test_build_convenience(self):
        rrg = build_routing_graph(xc4000(2, 2, 2))
        assert rrg.graph.num_nodes > 0


class TestDistances:
    def test_pin_to_pin_distance_scales_with_placement(self):
        rrg = RoutingResourceGraph(
            Architecture(rows=6, cols=6, channel_width=2, pins_per_block=4)
        )
        near = pin_node(0, 0, 0)
        far = pin_node(5, 5, 0)
        mid = pin_node(2, 0, 0)
        dist, _ = dijkstra(rrg.graph, near)
        assert dist[far] > dist[mid] > 0

    def test_routing_reflects_wirelength(self, small_rrg):
        # adjacent blocks one segment apart: distance about
        # 2 pin taps + ~1 segment (+ possibly a switch)
        a = pin_node(0, 0, 0)  # N side of (0,0)
        b = pin_node(1, 0, 0)  # N side of (1,0)
        dist, _ = dijkstra(small_rrg.graph, a, targets=[b])
        arch = small_rrg.arch
        assert dist[b] <= 2 * arch.pin_weight + 2 * arch.segment_weight + \
            2 * arch.switch_weight


class TestGroups:
    def test_group_tracks(self, small_rrg):
        keys = small_rrg.group_tracks(("H", 0, 0))
        assert len(keys) == small_rrg.arch.channel_width

    def test_group_utilization(self, small_rrg):
        group = ("H", 1, 1)
        assert small_rrg.group_utilization(group) == 0.0
        u, v = small_rrg.group_tracks(group)[0]
        small_rrg.graph.remove_edge(u, v)
        assert small_rrg.group_utilization(group) == pytest.approx(0.5)

    def test_base_weight_survives_reweighting(self, small_rrg):
        group = ("V", 0, 0)
        u, v = small_rrg.group_tracks(group)[0]
        base = small_rrg.base_weight(u, v)
        small_rrg.graph.set_weight(u, v, 99.0)
        assert small_rrg.base_weight(u, v) == base


class TestPinProtocol:
    def test_detach_all_then_attach(self, small_rrg):
        pn = pin_node(1, 1, 0)
        small_rrg.detach_all_pins()
        assert not small_rrg.graph.has_node(pn)
        small_rrg.attach_pins([pn])
        assert small_rrg.graph.degree(pn) == 4

    def test_attach_skips_consumed_taps(self, small_rrg):
        pn = pin_node(1, 1, 0)
        taps = list(small_rrg.graph.neighbors(pn))
        small_rrg.detach_all_pins()
        small_rrg.graph.remove_node(taps[0])
        small_rrg.attach_pins([pn])
        assert small_rrg.graph.degree(pn) == 3

    def test_attach_unknown_pin_raises(self, small_rrg):
        with pytest.raises(GraphError):
            small_rrg.attach_pins([("P", 99, 99, 0)])

    def test_detach_pins_idempotent(self, small_rrg):
        pn = pin_node(0, 0, 1)
        small_rrg.detach_pins([pn])
        small_rrg.detach_pins([pn])  # no error
        assert not small_rrg.graph.has_node(pn)


class TestCommitAndReset:
    def test_commit_removes_tree_nodes(self, small_rrg):
        from repro.graph import Graph

        u = junction(1, 1, "E", 0)
        v = junction(2, 1, "W", 0)
        tree = Graph()
        tree.add_edge(u, v, 1.0)
        touched = small_rrg.commit(tree)
        assert ("H", 1, 1) in touched
        assert not small_rrg.graph.has_node(u)
        assert not small_rrg.graph.has_node(v)

    def test_reset_restores_everything(self, small_rrg):
        nodes_before = small_rrg.graph.num_nodes
        edges_before = small_rrg.graph.num_edges
        from repro.graph import Graph

        tree = Graph()
        tree.add_edge(junction(1, 1, "E", 0), junction(2, 1, "W", 0), 1.0)
        small_rrg.commit(tree)
        small_rrg.detach_all_pins()
        small_rrg.reset()
        assert small_rrg.graph.num_nodes == nodes_before
        assert small_rrg.graph.num_edges == edges_before
