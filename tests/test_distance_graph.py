"""Tests for the metric closure (DistanceGraph)."""

from __future__ import annotations

import pytest

from repro.errors import DisconnectedError
from repro.graph import (
    DistanceGraph,
    Graph,
    ShortestPathCache,
    grid_graph,
    terminal_distances,
)


@pytest.fixture
def grid_closure(medium_grid):
    cache = ShortestPathCache(medium_grid)
    terminals = [(0, 0), (9, 9), (0, 9), (5, 5)]
    return DistanceGraph(cache, terminals), cache, terminals


class TestConstruction:
    def test_matrix_is_symmetric(self, grid_closure):
        closure, _, terminals = grid_closure
        for u in terminals:
            for v in terminals:
                if u != v:
                    assert closure.matrix[u][v] == closure.matrix[v][u]

    def test_distances_are_graph_distances(self, grid_closure):
        closure, _, _ = grid_closure
        assert closure.dist((0, 0), (9, 9)) == 18
        assert closure.dist((0, 0), (5, 5)) == 10
        assert closure.dist((5, 5), (5, 5)) == 0.0

    def test_disconnected_terminal_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        cache = ShortestPathCache(g)
        with pytest.raises(DisconnectedError):
            DistanceGraph(cache, [1, 3])

    def test_candidate_terminal_needs_no_own_sssp(self, medium_grid):
        # the IGMST optimization: with the net warm, adding one fresh
        # candidate must not trigger a Dijkstra rooted at the candidate
        cache = ShortestPathCache(medium_grid)
        base = [(0, 0), (9, 9), (0, 9)]
        # warm every base terminal (as IGMST's first ΔH evaluation does)
        cache.warm(base)
        DistanceGraph(cache, base + [(4, 4)])
        assert (4, 4) not in cache.cached_sources()
        assert len(cache) == len(base)


class TestExpansion:
    def test_expand_edge_is_shortest_path(self, grid_closure):
        closure, _, _ = grid_closure
        path = closure.expand_edge((0, 0), (5, 5))
        assert path[0] == (0, 0) and path[-1] == (5, 5)
        assert len(path) == 11  # 10 edges

    def test_expand_edges_builds_union(self, grid_closure):
        closure, _, _ = grid_closure
        union = closure.expand_edges([((0, 0), (5, 5)), ((0, 0), (0, 9))])
        assert union.has_node((5, 5))
        assert union.has_node((0, 9))
        assert union.is_connected()

    def test_expanded_weights_match_host(self, medium_grid):
        cache = ShortestPathCache(medium_grid)
        closure = DistanceGraph(cache, [(0, 0), (3, 3)])
        union = closure.expand_edges([((0, 0), (3, 3))])
        for u, v, w in union.edges():
            assert w == medium_grid.weight(u, v)


class TestHelper:
    def test_terminal_distances(self, medium_grid):
        cache = ShortestPathCache(medium_grid)
        matrix = terminal_distances(cache, [(0, 0), (2, 2)])
        assert matrix[(0, 0)][(2, 2)] == 4
