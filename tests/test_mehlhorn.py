"""Tests for Mehlhorn's fast graph Steiner heuristic [30]."""

from __future__ import annotations

import random

import pytest

from repro.errors import DisconnectedError, GraphError
from repro.graph import Graph, grid_graph, is_tree, random_net
from repro.net import Net
from repro.steiner import (
    MEHLHORN_HEURISTIC,
    igmst,
    kmb,
    mehlhorn,
    mehlhorn_cost,
    mehlhorn_tree_graph,
    optimal_steiner_cost,
    voronoi_regions,
)
from tests.conftest import random_instance


class TestVoronoi:
    def test_owners_partition_reachable_nodes(self, medium_grid):
        terminals = [(0, 0), (9, 9)]
        owner, dist, pred = voronoi_regions(medium_grid, terminals)
        assert len(owner) == 100
        assert owner[(0, 0)] == (0, 0)
        assert owner[(9, 9)] == (9, 9)
        assert owner[(1, 1)] == (0, 0)
        assert owner[(8, 8)] == (9, 9)

    def test_distances_to_nearest_terminal(self, medium_grid):
        terminals = [(0, 0), (9, 9)]
        owner, dist, _ = voronoi_regions(medium_grid, terminals)
        assert dist[(2, 1)] == 3
        assert dist[(9, 7)] == 2
        assert dist[(0, 0)] == 0

    def test_missing_terminal_raises(self, medium_grid):
        with pytest.raises(GraphError):
            voronoi_regions(medium_grid, [(0, 0), (99, 99)])

    def test_pred_walks_to_terminal(self, medium_grid):
        terminals = [(0, 0), (9, 9)]
        owner, dist, pred = voronoi_regions(medium_grid, terminals)
        node = (3, 2)
        while dist[node] > 0:
            node = pred[node]
        assert node == owner[(3, 2)]


class TestMehlhorn:
    def test_two_terminals_shortest_path(self, medium_grid):
        net = Net(source=(0, 0), sinks=((6, 3),))
        assert mehlhorn(medium_grid, net).cost == 9

    def test_valid_steiner_tree(self):
        for seed in range(8):
            g, net = random_instance(seed + 900, num_pins=5)
            tree = mehlhorn(g, net)
            assert is_tree(tree.tree)
            for t in net.terminals:
                assert tree.tree.has_node(t)

    def test_within_2x_optimal(self):
        for seed in range(8):
            g, net = random_instance(seed + 950, num_pins=4)
            opt = optimal_steiner_cost(g, net.terminals)
            cost = mehlhorn(g, net).cost
            assert opt - 1e-9 <= cost <= 2 * opt + 1e-9

    def test_quality_close_to_kmb(self):
        total_m = total_k = 0.0
        for seed in range(10):
            g, net = random_instance(seed + 970, num_pins=6)
            total_m += mehlhorn(g, net).cost
            total_k += kmb(g, net).cost
        # Mehlhorn's sparser closure loses a little; stay within 10%
        assert total_m <= 1.10 * total_k

    def test_single_terminal(self, medium_grid):
        g = mehlhorn_tree_graph(medium_grid, [(4, 4)])
        assert g.num_nodes == 1

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(DisconnectedError):
            mehlhorn_tree_graph(g, [1, 3])

    def test_cost_matches_tree(self, medium_grid):
        terms = [(0, 0), (9, 9), (5, 2)]
        assert mehlhorn_cost(medium_grid, terms) == pytest.approx(
            mehlhorn_tree_graph(medium_grid, terms).total_weight()
        )

    def test_as_igmst_engine(self):
        g, net = random_instance(42, num_pins=5)
        iterated = igmst(g, net, heuristic=MEHLHORN_HEURISTIC)
        assert iterated.algorithm == "IMEHLHORN"
        assert iterated.cost <= mehlhorn(g, net).cost + 1e-9
        assert is_tree(iterated.tree)
