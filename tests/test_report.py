"""Tests for the quick-report generator and its CLI command."""

from __future__ import annotations

import pytest

from repro.analysis.report import generate_report
from repro.cli import main


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(table1_trials=1)

    def test_contains_every_section(self, report):
        for heading in (
            "Table 1",
            "Figure 3",
            "Figure 4",
            "Figures 6/13",
            "Figure 10",
            "Figure 11",
            "Figure 14",
            "CPU times",
        ):
            assert heading in report

    def test_is_markdown(self, report):
        assert report.startswith("# repro")
        assert "```" in report

    def test_mentions_published_columns(self, report):
        assert "(paper)" in report


class TestCLIReport:
    def test_to_stdout(self, capsys):
        assert main(["report", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out

    def test_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["report", "--trials", "1",
                     "--output", str(path)]) == 0
        assert path.stat().st_size > 2000
        assert "written to" in capsys.readouterr().out
