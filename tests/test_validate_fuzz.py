"""Malformed-input corpus: loaders fail structurally, never raw.

Every file under ``tests/corpus/`` is a deliberately broken input —
truncated JSON, wrong format/version markers, missing or ill-typed
fields, corrupted checkpoints.  The filename prefix selects the loader
(``circuit_`` / ``result_`` / ``checkpoint_``), and every loader must
reject its file with a :class:`~repro.errors.ReproError` subclass
carrying a useful message — never a raw ``KeyError``/``TypeError``/
``JSONDecodeError`` traceback.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import CheckpointError, FormatError, NetError, ReproError
from repro.engine.checkpoint import load_checkpoint
from repro.io import load_circuit, load_result

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")

LOADERS = {
    "circuit": load_circuit,
    "result": load_result,
    "checkpoint": load_checkpoint,
}


def corpus_files():
    return sorted(
        name for name in os.listdir(CORPUS) if name.endswith(".json")
    )


def test_corpus_is_nonempty_and_prefixed():
    files = corpus_files()
    assert files, "tests/corpus/ must not be empty"
    for name in files:
        assert name.split("_")[0] in LOADERS, (
            f"{name}: corpus files must be named "
            f"circuit_*/result_*/checkpoint_*"
        )


@pytest.mark.parametrize("name", corpus_files())
def test_malformed_input_raises_structured_error(name):
    loader = LOADERS[name.split("_")[0]]
    with pytest.raises(ReproError) as exc:
        loader(os.path.join(CORPUS, name))
    # structured subclasses only — the base class would lose the
    # path/key context the issue requires
    assert isinstance(
        exc.value, (FormatError, CheckpointError, NetError)
    ), f"{name}: got bare {type(exc.value).__name__}"
    assert str(exc.value), f"{name}: error must carry a message"


@pytest.mark.parametrize(
    "name",
    [n for n in corpus_files() if n.startswith(("circuit_", "result_"))],
)
def test_format_errors_carry_source_context(name):
    if name.startswith("circuit_degenerate"):
        # degenerate *semantics* keep their established NetError type
        pytest.skip("semantic error, not a format error")
    path = os.path.join(CORPUS, name)
    loader = LOADERS[name.split("_")[0]]
    with pytest.raises(FormatError) as exc:
        loader(path)
    assert exc.value.path == path
    assert path in str(exc.value)
