"""Brute-force cross-checks of the exact solvers on tiny instances.

The Dreyfus–Wagner GMST solver and the tight-edge GSA solver are the
oracles the rest of the suite leans on; here they are themselves
verified against exhaustive enumeration on graphs small enough to brute
force.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.arborescence import optimal_arborescence_cost
from repro.graph import Graph, UnionFind, dijkstra
from repro.net import Net
from repro.steiner import optimal_steiner_cost

INF = float("inf")


def brute_force_steiner(graph: Graph, terminals) -> float:
    """Minimum Steiner tree cost by enumerating edge subsets."""
    edges = list(graph.edges())
    terms = set(terminals)
    best = INF
    for k in range(len(terms) - 1, len(edges) + 1):
        if k >= best / min((w for _, _, w in edges if w > 0), default=1):
            pass  # no useful prune; keep simple
        for subset in combinations(range(len(edges)), k):
            cost = sum(edges[i][2] for i in subset)
            if cost >= best:
                continue
            uf = UnionFind()
            for i in subset:
                u, v, _ = edges[i]
                uf.union(u, v)
            root = next(iter(terms))
            if all(uf.connected(root, t) for t in terms):
                best = cost
    return best


def brute_force_arborescence(graph: Graph, net: Net) -> float:
    """Minimum GSA cost by enumerating edge subsets."""
    edges = list(graph.edges())
    d0, _ = dijkstra(graph, net.source)
    best = INF
    for k in range(len(net.sinks), len(edges) + 1):
        for subset in combinations(range(len(edges)), k):
            cost = sum(edges[i][2] for i in subset)
            if cost >= best:
                continue
            sub = Graph()
            sub.add_node(net.source)
            for i in subset:
                u, v, w = edges[i]
                sub.add_edge(u, v, w)
            try:
                dist, _ = dijkstra(sub, net.source)
            except Exception:
                continue
            ok = all(
                s in dist and abs(dist[s] - d0[s]) < 1e-9
                for s in net.sinks
            )
            if ok:
                best = cost
    return best


def tiny_instance(seed: int, nodes: int = 6, extra: int = 3):
    rng = random.Random(seed)
    g = Graph()
    order = list(range(nodes))
    rng.shuffle(order)
    for i in range(1, nodes):
        g.add_edge(order[i], order[rng.randrange(i)],
                   float(rng.randint(1, 5)))
    added = 0
    while added < extra:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(rng.randint(1, 5)))
            added += 1
    pins = rng.sample(range(nodes), 3)
    return g, Net(source=pins[0], sinks=tuple(pins[1:]))


class TestGMSTOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        g, net = tiny_instance(seed)
        exact = optimal_steiner_cost(g, net.terminals)
        brute = brute_force_steiner(g, net.terminals)
        assert exact == pytest.approx(brute)


class TestGSAOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        g, net = tiny_instance(seed + 50)
        exact = optimal_arborescence_cost(g, net)
        brute = brute_force_arborescence(g, net)
        assert exact == pytest.approx(brute)

    @pytest.mark.parametrize("seed", range(4))
    def test_gsa_at_least_gmst(self, seed):
        g, net = tiny_instance(seed + 100)
        assert optimal_arborescence_cost(g, net) >= (
            optimal_steiner_cost(g, net.terminals) - 1e-9
        )
