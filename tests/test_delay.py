"""Tests for the Elmore-delay evaluation layer."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    RCParameters,
    compare_delay,
    elmore_delays,
    max_sink_delay,
    routing_tree_delay,
)
from repro.arborescence import djka, idom, pfa
from repro.errors import GraphError, NetError, ReproError
from repro.graph import Graph, grid_graph
from repro.net import Net
from repro.steiner import kmb
from tests.conftest import random_instance


def path_tree(lengths):
    """A path source - a - b - ... with the given edge lengths."""
    g = Graph()
    nodes = ["n0"] + [f"v{i}" for i in range(len(lengths))]
    for (u, v), w in zip(zip(nodes, nodes[1:]), lengths):
        g.add_edge(u, v, w)
    return g, nodes


class TestRCParameters:
    def test_defaults(self):
        rc = RCParameters()
        assert rc.unit_resistance == 1.0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            RCParameters(sink_load=-1.0)


class TestElmoreOnPaths:
    def test_single_segment_hand_computed(self):
        # driver R=1 drives wire of length 2 (r=2, c=2) into load 1:
        # T(root) = 1 * (2 + 1) = 3
        # T(sink) = 3 + 2 * (2/2 + 1) = 3 + 4 = 7
        g, nodes = path_tree([2.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        delays = elmore_delays(g, net)
        assert delays["n0"] == pytest.approx(3.0)
        assert delays[nodes[-1]] == pytest.approx(7.0)

    def test_delay_monotone_along_path(self):
        g, nodes = path_tree([1.0, 1.0, 1.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        delays = elmore_delays(g, net)
        vals = [delays[n] for n in nodes]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_longer_wire_slower(self):
        g1, n1 = path_tree([1.0])
        g2, n2 = path_tree([4.0])
        d1 = max_sink_delay(g1, Net(source="n0", sinks=(n1[-1],)))
        d2 = max_sink_delay(g2, Net(source="n0", sinks=(n2[-1],)))
        assert d2 > d1

    def test_quadratic_growth_with_length(self):
        # unbuffered RC delay grows superlinearly with wire length
        def delay_for(length):
            g, nodes = path_tree([float(length)])
            return max_sink_delay(g, Net(source="n0", sinks=(nodes[-1],)))

        d2 = delay_for(2)
        d4 = delay_for(4)
        assert d4 > 2 * d2 * 0.9  # clearly superlinear territory


class TestElmoreOnTrees:
    def test_star_balanced(self):
        g = Graph()
        for leaf in ("a", "b", "c"):
            g.add_edge("n0", leaf, 1.0)
        net = Net(source="n0", sinks=("a", "b", "c"))
        delays = elmore_delays(g, net)
        assert delays["a"] == pytest.approx(delays["b"])
        assert delays["a"] == pytest.approx(delays["c"])

    def test_side_branch_loads_main_path(self):
        # adding a branch off the path increases the sink's delay even
        # though the sink's own path is unchanged
        g1, nodes = path_tree([1.0, 1.0])
        net1 = Net(source="n0", sinks=(nodes[-1],))
        base = max_sink_delay(g1, net1)
        g2, nodes2 = path_tree([1.0, 1.0])
        g2.add_edge(nodes2[1], "branch", 2.0)
        net2 = Net(source="n0", sinks=(nodes2[-1], "branch"))
        loaded = elmore_delays(g2, net2)[nodes2[-1]]
        assert loaded > base

    def test_missing_source_raises(self):
        g, nodes = path_tree([1.0])
        with pytest.raises(GraphError):
            elmore_delays(g, Net(source="ghost", sinks=(nodes[-1],)))

    def test_disconnected_tree_raises(self):
        g, nodes = path_tree([1.0])
        g.add_node("island")
        with pytest.raises(GraphError):
            elmore_delays(g, Net(source="n0", sinks=(nodes[-1],)))


class TestAlgorithmComparison:
    def test_arborescences_beat_kmb_on_delay(self):
        # the technology-sensitive claim: under RC delay, shortest-path
        # trees win even when they spend more wirelength (aggregate
        # over instances; KMB's longer source-sink paths dominate)
        wins = 0
        trials = 8
        for seed in range(trials):
            g, net = random_instance(seed + 1200, num_pins=6, size=10)
            res = compare_delay(
                g, net, {"kmb": kmb, "idom": idom}
            )
            if res["idom"][1] <= res["kmb"][1] + 1e-9:
                wins += 1
        assert wins >= trials // 2 + 1

    def test_routing_tree_delay_wrapper(self):
        g, net = random_instance(3, num_pins=4)
        tree = pfa(g, net)
        assert routing_tree_delay(tree) == pytest.approx(
            max_sink_delay(tree.tree, net)
        )

    def test_rc_scaling(self):
        g, net = random_instance(5, num_pins=4)
        tree = djka(g, net)
        fast = routing_tree_delay(
            tree, RCParameters(driver_resistance=0.1)
        )
        slow = routing_tree_delay(
            tree, RCParameters(driver_resistance=10.0)
        )
        assert slow > fast


class TestDegenerateInputs:
    """Edge cases the delay model must handle without crash or NaN."""

    def test_single_sink_is_path_algorithm(self):
        g, nodes = path_tree([1.0, 2.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        delays = elmore_delays(g, net)
        assert all(math.isfinite(d) for d in delays.values())
        assert max_sink_delay(g, net) == delays[nodes[-1]]

    def test_source_equals_sink_is_a_net_error(self):
        # a net may not list its source as a sink: the Net constructor
        # rejects the duplicate pin up front, so the delay model never
        # sees the degenerate source==sink case
        with pytest.raises(NetError):
            Net(source="n0", sinks=("n0",))

    def test_zero_length_segment_contributes_nothing(self):
        g, nodes = path_tree([1.0, 0.0, 1.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        delays = elmore_delays(g, net)
        # zero-length wire: no resistance, no capacitance — the two
        # nodes it joins see identical delay
        assert delays[nodes[1]] == pytest.approx(delays[nodes[2]])
        assert all(math.isfinite(d) for d in delays.values())

    def test_all_zero_rc_yields_zero_delay_everywhere(self):
        g, nodes = path_tree([1.0, 2.0, 3.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        rc = RCParameters(
            unit_resistance=0.0,
            unit_capacitance=0.0,
            driver_resistance=0.0,
            sink_load=0.0,
        )
        delays = elmore_delays(g, net, rc)
        assert set(delays.values()) == {0.0}

    def test_star_tree_with_zero_rc_segments(self):
        g = Graph()
        for i, w in enumerate([0.0, 1.0, 0.0]):
            g.add_edge("s", f"t{i}", w)
        net = Net(source="s", sinks=("t0", "t1", "t2"))
        delays = elmore_delays(g, net)
        assert all(math.isfinite(d) for d in delays.values())


class TestInvalidParasitics:
    """Invalid RCParameters raise GraphError (a ReproError), never an
    arithmetic error deep inside the accumulation."""

    @pytest.mark.parametrize("field", [
        "unit_resistance", "unit_capacitance",
        "driver_resistance", "sink_load",
    ])
    @pytest.mark.parametrize("bad", [
        float("nan"), float("inf"), -float("inf"), -0.5, None, "1.0", True,
    ])
    def test_constructor_rejects(self, field, bad):
        with pytest.raises(GraphError):
            RCParameters(**{field: bad})

    def test_graph_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            RCParameters(sink_load=float("nan"))

    def test_hand_built_rc_revalidated_by_elmore(self):
        # a frozen-dataclass bypass (object.__setattr__) must not
        # smuggle NaN past the delay model: elmore_delays re-checks
        rc = RCParameters()
        object.__setattr__(rc, "unit_resistance", float("nan"))
        g, nodes = path_tree([1.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        with pytest.raises(GraphError):
            elmore_delays(g, net, rc)

    def test_no_zero_division_from_non_numeric_rc(self):
        rc = RCParameters()
        object.__setattr__(rc, "unit_capacitance", None)
        g, nodes = path_tree([1.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        try:
            elmore_delays(g, net, rc)
        except GraphError:
            pass  # the only acceptable failure mode
        else:  # pragma: no cover - defends the assertion message
            pytest.fail("invalid rc must raise GraphError")

    def test_max_sink_delay_missing_sink_is_graph_error(self):
        # the sink exists in the net but not in the (wrong) tree: the
        # old behaviour was a bare KeyError from the delays lookup
        g, nodes = path_tree([1.0])
        bad_net = Net(source="n0", sinks=("elsewhere",))
        g.add_node("elsewhere")  # connected? no — caught as not-in-tree
        g.add_edge(nodes[-1], "elsewhere", 1.0)
        tree_without = Graph()
        tree_without.add_edge("n0", nodes[-1], 1.0)
        with pytest.raises(GraphError, match="not in tree"):
            max_sink_delay(tree_without, bad_net)
