"""Tests for the Elmore-delay evaluation layer."""

from __future__ import annotations

import pytest

from repro.analysis import (
    RCParameters,
    compare_delay,
    elmore_delays,
    max_sink_delay,
    routing_tree_delay,
)
from repro.arborescence import djka, idom, pfa
from repro.errors import GraphError
from repro.graph import Graph, grid_graph
from repro.net import Net
from repro.steiner import kmb
from tests.conftest import random_instance


def path_tree(lengths):
    """A path source - a - b - ... with the given edge lengths."""
    g = Graph()
    nodes = ["n0"] + [f"v{i}" for i in range(len(lengths))]
    for (u, v), w in zip(zip(nodes, nodes[1:]), lengths):
        g.add_edge(u, v, w)
    return g, nodes


class TestRCParameters:
    def test_defaults(self):
        rc = RCParameters()
        assert rc.unit_resistance == 1.0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            RCParameters(sink_load=-1.0)


class TestElmoreOnPaths:
    def test_single_segment_hand_computed(self):
        # driver R=1 drives wire of length 2 (r=2, c=2) into load 1:
        # T(root) = 1 * (2 + 1) = 3
        # T(sink) = 3 + 2 * (2/2 + 1) = 3 + 4 = 7
        g, nodes = path_tree([2.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        delays = elmore_delays(g, net)
        assert delays["n0"] == pytest.approx(3.0)
        assert delays[nodes[-1]] == pytest.approx(7.0)

    def test_delay_monotone_along_path(self):
        g, nodes = path_tree([1.0, 1.0, 1.0])
        net = Net(source="n0", sinks=(nodes[-1],))
        delays = elmore_delays(g, net)
        vals = [delays[n] for n in nodes]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_longer_wire_slower(self):
        g1, n1 = path_tree([1.0])
        g2, n2 = path_tree([4.0])
        d1 = max_sink_delay(g1, Net(source="n0", sinks=(n1[-1],)))
        d2 = max_sink_delay(g2, Net(source="n0", sinks=(n2[-1],)))
        assert d2 > d1

    def test_quadratic_growth_with_length(self):
        # unbuffered RC delay grows superlinearly with wire length
        def delay_for(length):
            g, nodes = path_tree([float(length)])
            return max_sink_delay(g, Net(source="n0", sinks=(nodes[-1],)))

        d2 = delay_for(2)
        d4 = delay_for(4)
        assert d4 > 2 * d2 * 0.9  # clearly superlinear territory


class TestElmoreOnTrees:
    def test_star_balanced(self):
        g = Graph()
        for leaf in ("a", "b", "c"):
            g.add_edge("n0", leaf, 1.0)
        net = Net(source="n0", sinks=("a", "b", "c"))
        delays = elmore_delays(g, net)
        assert delays["a"] == pytest.approx(delays["b"])
        assert delays["a"] == pytest.approx(delays["c"])

    def test_side_branch_loads_main_path(self):
        # adding a branch off the path increases the sink's delay even
        # though the sink's own path is unchanged
        g1, nodes = path_tree([1.0, 1.0])
        net1 = Net(source="n0", sinks=(nodes[-1],))
        base = max_sink_delay(g1, net1)
        g2, nodes2 = path_tree([1.0, 1.0])
        g2.add_edge(nodes2[1], "branch", 2.0)
        net2 = Net(source="n0", sinks=(nodes2[-1], "branch"))
        loaded = elmore_delays(g2, net2)[nodes2[-1]]
        assert loaded > base

    def test_missing_source_raises(self):
        g, nodes = path_tree([1.0])
        with pytest.raises(GraphError):
            elmore_delays(g, Net(source="ghost", sinks=(nodes[-1],)))

    def test_disconnected_tree_raises(self):
        g, nodes = path_tree([1.0])
        g.add_node("island")
        with pytest.raises(GraphError):
            elmore_delays(g, Net(source="n0", sinks=(nodes[-1],)))


class TestAlgorithmComparison:
    def test_arborescences_beat_kmb_on_delay(self):
        # the technology-sensitive claim: under RC delay, shortest-path
        # trees win even when they spend more wirelength (aggregate
        # over instances; KMB's longer source-sink paths dominate)
        wins = 0
        trials = 8
        for seed in range(trials):
            g, net = random_instance(seed + 1200, num_pins=6, size=10)
            res = compare_delay(
                g, net, {"kmb": kmb, "idom": idom}
            )
            if res["idom"][1] <= res["kmb"][1] + 1e-9:
                wins += 1
        assert wins >= trials // 2 + 1

    def test_routing_tree_delay_wrapper(self):
        g, net = random_instance(3, num_pins=4)
        tree = pfa(g, net)
        assert routing_tree_delay(tree) == pytest.approx(
            max_sink_delay(tree.tree, net)
        )

    def test_rc_scaling(self):
        g, net = random_instance(5, num_pins=4)
        tree = djka(g, net)
        fast = routing_tree_delay(
            tree, RCParameters(driver_resistance=0.1)
        )
        slow = routing_tree_delay(
            tree, RCParameters(driver_resistance=10.0)
        )
        assert slow > fast
