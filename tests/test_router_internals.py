"""Focused tests for router internals and the experiment width driver."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    _pristine_max_paths,
    run_width_table,
)
from repro.fpga import (
    Architecture,
    RoutingResourceGraph,
    XC4000_CIRCUITS,
    circuit_spec,
    scaled_spec,
    synthesize_circuit,
    xc4000,
)
from repro.graph import Graph
from repro.net import Net
from repro.router import RouterConfig, route_circuit
from repro.router.router import (
    FPGARouter,
    steiner_candidates_near_tree,
)
from repro.steiner import kmb_tree_graph


class TestCandidateNeighborhood:
    @pytest.fixture
    def rrg(self):
        return RoutingResourceGraph(
            Architecture(rows=4, cols=4, channel_width=3, pins_per_block=4)
        )

    def test_excludes_tree_nodes_and_pins(self, rrg):
        from repro.fpga import pin_node
        from repro.graph import ShortestPathCache

        rrg.detach_all_pins()
        a = pin_node(0, 0, 0)
        b = pin_node(3, 3, 0)
        rrg.attach_pins([a, b])
        cache = ShortestPathCache(rrg.graph)
        seed = kmb_tree_graph(rrg.graph, [a, b], cache)
        cands = steiner_candidates_near_tree(rrg.graph, seed, depth=2)
        tree_nodes = set(seed.nodes)
        for c in cands:
            assert c not in tree_nodes
            assert c[0] == "J"

    def test_depth_zero_is_empty(self, rrg):
        g = rrg.graph
        u = next(iter(g.nodes))
        seed = Graph()
        seed.add_node(u)
        assert steiner_candidates_near_tree(g, seed, depth=0) == []

    def test_depth_grows_pool(self, rrg):
        g = rrg.graph
        u = next(n for n in g.nodes if n[0] == "J")
        seed = Graph()
        seed.add_node(u)
        d1 = steiner_candidates_near_tree(g, seed, depth=1)
        d3 = steiner_candidates_near_tree(g, seed, depth=3)
        assert len(d3) >= len(d1)


class TestPristinePaths:
    def test_matches_empty_device_distances(self):
        circuit = synthesize_circuit(
            scaled_spec(circuit_spec("term1"), 0.15), seed=4
        )
        arch = xc4000(circuit.rows, circuit.cols, 6)
        pristine = _pristine_max_paths(circuit, arch)
        assert set(pristine) == {n.name for n in circuit.nets}
        assert all(v > 0 for v in pristine.values())

    def test_lower_bounds_routed_paths(self):
        circuit = synthesize_circuit(
            scaled_spec(circuit_spec("term1"), 0.15), seed=4
        )
        arch = xc4000(circuit.rows, circuit.cols, 8)
        pristine = _pristine_max_paths(circuit, arch)
        result = route_circuit(
            circuit, arch, RouterConfig(algorithm="kmb")
        )
        for route in result.routes:
            assert route.max_pathlength >= pristine[route.name] - 1e-6


class TestWidthDriver:
    def test_small_width_table(self):
        specs = [s for s in XC4000_CIRCUITS if s.name == "term1"]
        result = run_width_table(
            specs,
            xc4000,
            algorithms=("kmb",),
            fraction=0.12,
            seed=2,
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.widths["kmb"] >= 1
        assert "SEGA" in row.published
        text = result.render(baseline="kmb")
        assert "TOTAL" in text and "ratio" in text

    def test_totals(self):
        from repro.analysis.experiments import WidthRow, WidthTableResult

        r = WidthTableResult(family="x")
        r.rows = [
            WidthRow("a", {"kmb": 3, "pfa": 4}, {}),
            WidthRow("b", {"kmb": 5, "pfa": 5}, {}),
        ]
        assert r.totals() == {"kmb": 8, "pfa": 9}


class TestStallDetection:
    def test_unroutable_reports_failures(self):
        circuit = synthesize_circuit(
            scaled_spec(circuit_spec("term1"), 0.2), seed=6
        )
        arch = xc4000(circuit.rows, circuit.cols, 1)
        router = FPGARouter(arch, RouterConfig(algorithm="kmb"))
        from repro.errors import UnroutableError

        with pytest.raises(UnroutableError) as exc:
            router.route(circuit)
        assert exc.value.failed_nets
        assert exc.value.passes <= 20

    def test_hopeless_case_stalls_early(self):
        # two nets forced through the same single-track cut: the
        # failure count can never reach zero, so the stall window (3
        # non-improving passes) must abort well before the pass budget
        from repro.errors import UnroutableError
        from repro.fpga import PlacedCircuit, PlacedNet

        nets = [
            PlacedNet("a", (0, 0, 0), ((4, 0, 0),)),
            PlacedNet("b", (0, 0, 1), ((4, 0, 1),)),
            PlacedNet("c", (0, 0, 2), ((4, 0, 2),)),
            PlacedNet("d", (0, 0, 3), ((4, 0, 3),)),
        ]
        circuit = PlacedCircuit(name="cut", rows=1, cols=5, nets=nets)
        arch = xc4000(1, 5, 1)
        router = FPGARouter(arch, RouterConfig(algorithm="kmb"))
        with pytest.raises(UnroutableError) as exc:
            router.route(circuit)
        assert exc.value.passes < 20
