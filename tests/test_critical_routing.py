"""Tests for mixed criticality-aware routing (§2 classification)."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc4000
from repro.router import FPGARouter, RouterConfig, route_circuit


@pytest.fixture(scope="module")
def circuit():
    return synthesize_circuit(
        scaled_spec(circuit_spec("term1"), 0.22), seed=1
    )


class TestConfigValidation:
    def test_unknown_critical_algorithm(self):
        with pytest.raises(RoutingError):
            RouterConfig(critical_algorithm="warp")

    def test_two_pin_critical_rejected(self):
        with pytest.raises(RoutingError):
            RouterConfig(critical_algorithm="two_pin")

    def test_fraction_bounds(self):
        with pytest.raises(RoutingError):
            RouterConfig(critical_fraction=1.5)

    def test_critical_nets_normalized_to_frozenset(self):
        cfg = RouterConfig(
            critical_algorithm="pfa", critical_nets={"a", "b"}
        )
        assert isinstance(cfg.critical_nets, frozenset)


class TestClassification:
    def test_fraction_selects_longest_nets(self, circuit):
        cfg = RouterConfig(
            critical_algorithm="pfa", critical_fraction=0.25
        )
        router = FPGARouter(
            xc4000(circuit.rows, circuit.cols, 8), cfg
        )
        names = router._critical_names(circuit)
        assert len(names) == round(0.25 * circuit.num_nets)
        # selected nets have HPWL >= every unselected net's
        hpwl = {n.name: n.half_perimeter() for n in circuit.nets}
        worst_selected = min(hpwl[n] for n in names)
        best_unselected = max(
            v for k, v in hpwl.items() if k not in names
        )
        assert worst_selected >= best_unselected - 1  # ties allowed

    def test_no_critical_algorithm_means_empty(self, circuit):
        router = FPGARouter(
            xc4000(circuit.rows, circuit.cols, 8), RouterConfig()
        )
        assert router._critical_names(circuit) == set()

    def test_explicit_names_win(self, circuit):
        cfg = RouterConfig(
            critical_algorithm="pfa",
            critical_nets=frozenset({circuit.nets[0].name}),
            critical_fraction=0.9,
        )
        router = FPGARouter(
            xc4000(circuit.rows, circuit.cols, 8), cfg
        )
        assert router._critical_names(circuit) == {circuit.nets[0].name}


class TestMixedRouting:
    def test_mixed_dispatch_visible_in_routes(self, circuit):
        arch = xc4000(circuit.rows, circuit.cols, 10)
        cfg = RouterConfig(
            algorithm="kmb",
            critical_algorithm="pfa",
            critical_fraction=0.3,
        )
        result = route_circuit(circuit, arch, cfg)
        assert result.complete
        algos = {r.algorithm for r in result.routes}
        assert "KMB" in algos and "PFA" in algos

    def test_critical_nets_get_optimal_paths(self, circuit):
        arch = xc4000(circuit.rows, circuit.cols, 10)
        cfg = RouterConfig(
            algorithm="kmb",
            critical_algorithm="idom",
            critical_fraction=0.3,
        )
        result = route_circuit(circuit, arch, cfg)
        for route in result.routes:
            if route.algorithm == "IDOM":
                # pathlengths match the optimum recorded at routing time
                for sink, opt in route.optimal_pathlengths.items():
                    assert route.pathlengths[sink] <= opt + 1e-6

    def test_mixed_mode_still_completes_at_reasonable_width(self, circuit):
        from repro.router import minimum_channel_width

        pure, _ = minimum_channel_width(
            circuit, xc4000, RouterConfig(algorithm="kmb")
        )
        mixed, _ = minimum_channel_width(
            circuit, xc4000,
            RouterConfig(
                algorithm="kmb",
                critical_algorithm="pfa",
                critical_fraction=0.25,
            ),
        )
        # routing a quarter of the nets as arborescences costs at most
        # a couple of extra tracks
        assert mixed <= pure + 2
