"""Tests for the worst-case families of Figures 10, 11 and 14."""

from __future__ import annotations

import pytest

from repro.arborescence import (
    greedy_set_cover,
    idom,
    optimal_arborescence_cost,
    pfa,
    pfa_trap_family,
    setcover_family,
    staircase_instance,
)
from repro.errors import GraphError
from repro.graph import dijkstra, is_tree


class TestPFATrapFamily:
    def test_instance_structure(self):
        inst = pfa_trap_family(3)
        assert len(inst.net.sinks) == 6
        assert inst.graph.has_node("g")
        assert inst.graph.has_node("m2")

    def test_analytic_optimum_matches_exact(self):
        for pairs in (1, 2, 3):
            inst = pfa_trap_family(pairs)
            exact = optimal_arborescence_cost(inst.graph, inst.net)
            assert exact == pytest.approx(inst.optimal_cost)

    def test_pfa_pays_the_traps(self):
        inst = pfa_trap_family(4)
        cost = pfa(inst.graph, inst.net).cost
        assert cost == pytest.approx(inst.trap_cost)

    def test_idom_recovers_the_hub(self):
        inst = pfa_trap_family(4)
        cost = idom(inst.graph, inst.net).cost
        assert cost == pytest.approx(inst.optimal_cost)

    def test_ratio_grows_linearly(self):
        ratios = []
        for pairs in (2, 4, 8):
            inst = pfa_trap_family(pairs)
            ratios.append(pfa(inst.graph, inst.net).cost / inst.optimal_cost)
        assert ratios[0] < ratios[1] < ratios[2]
        # doubling the pairs roughly doubles the ratio
        assert ratios[2] / ratios[1] > 1.5

    def test_solutions_remain_arborescences(self):
        inst = pfa_trap_family(3)
        dist, _ = dijkstra(inst.graph, inst.net.source)
        for algo in (pfa, idom):
            tree = algo(inst.graph, inst.net)
            assert is_tree(tree.tree)
            for sink in inst.net.sinks:
                assert tree.pathlength(sink) == pytest.approx(dist[sink])

    def test_invalid_pairs(self):
        with pytest.raises(GraphError):
            pfa_trap_family(0)


class TestStaircase:
    def test_geometry(self):
        inst = staircase_instance(3)
        assert inst.net.source == (0, 0)
        assert inst.net.sinks == ((1, 6), (2, 4), (3, 2))

    def test_upper_bound_is_feasible(self):
        # the analytic chain bound must dominate the true optimum
        for k in (2, 3, 4):
            inst = staircase_instance(k)
            opt = optimal_arborescence_cost(inst.graph, inst.net)
            assert opt <= inst.optimal_upper_bound + 1e-9

    def test_pfa_valid_and_bounded(self):
        for k in (2, 4, 6):
            inst = staircase_instance(k)
            tree = pfa(inst.graph, inst.net)
            dist, _ = dijkstra(inst.graph, inst.net.source)
            for sink in inst.net.sinks:
                assert tree.pathlength(sink) == pytest.approx(dist[sink])
            # the RSA bound: at most 2x the chain upper bound
            assert tree.cost <= 2 * inst.optimal_upper_bound + 1e-9

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            staircase_instance(0)


class TestSetCoverFamily:
    def test_boxes_cover_universe(self):
        inst = setcover_family(3)
        universe = {(r, c) for r in range(2) for c in range(8)}
        assert set().union(*inst.boxes.values()) == universe
        # the two row boxes alone cover everything
        assert (
            inst.boxes["R0"] | inst.boxes["R1"] == universe
        )

    def test_greedy_selects_log_many(self):
        for levels in (2, 3, 4):
            inst = setcover_family(levels)
            universe = set().union(*inst.boxes.values())
            chosen = greedy_set_cover(universe, inst.boxes)
            assert len(chosen) == levels + 1
            assert all(name.startswith("C") for name in chosen)

    def test_greedy_requires_coverage(self):
        with pytest.raises(GraphError):
            greedy_set_cover({1, 2}, {"a": frozenset({1})})

    def test_graph_expansion(self):
        inst = setcover_family(2)
        # each sink has zero-weight edges to every box containing it
        sink = ("sink", 0, 0)
        neighbors = list(inst.graph.neighbors(sink))
        assert all(n[0] == "box" for n in neighbors)
        # row box R0 and the first column box C0 both contain (0, 0)
        assert ("box", "R0") in neighbors
        assert ("box", "C0") in neighbors

    def test_substrate_idom_escapes_the_bound(self):
        # documented reproduction finding: with path-level sharing the
        # expanded graph is solvable at cost 1 and IDOM finds it
        inst = setcover_family(3)
        assert idom(inst.graph, inst.net).cost == pytest.approx(1.0)
