#!/usr/bin/env python3
"""Watch the iterated constructions work (Figures 5, 6, 12, 13).

Runs IKMB and IDOM with trace recording on small instances and prints
each greedy round: the Steiner candidate accepted, the savings it
produced, and the cost of the evolving solution — the exact narrative
of the paper's Figures 6 and 13.

Run:  python examples/iterated_steiner_trace.py
"""

from __future__ import annotations

import random

from repro import Net, grid_graph, ikmb, idom, kmb, dom
from repro.analysis import run_trace_demo
from repro.analysis.tables import render_table


def print_trace(title: str, traced, base_name: str, base_cost: float):
    trace = traced.trace
    rows = [[0, f"(initial {base_name} solution)", None, trace.initial_cost]]
    for i, (node, gain, cost) in enumerate(trace.steps, start=1):
        rows.append([i, repr(node), round(gain, 3), round(cost, 3)])
    print(
        render_table(
            ["round", "accepted Steiner point", "savings", "cost"],
            rows,
            title=title,
        )
    )
    saved = 100 * trace.total_savings / trace.initial_cost
    print(f"  -> total improvement over {base_name}: {saved:.1f}%\n")


def main() -> None:
    traced_ikmb, traced_idom = run_trace_demo()
    print_trace(
        "IKMB on the double-cross gadget (Figure 6 dynamic)",
        traced_ikmb,
        "KMB",
        traced_ikmb.trace.initial_cost,
    )
    print_trace(
        "IDOM on the double-hub gadget (Figure 13 dynamic)",
        traced_idom,
        "DOM",
        traced_idom.trace.initial_cost,
    )

    # and on a realistic congested grid: how often does iteration help?
    rng = random.Random(3)
    g = grid_graph(15, 15)
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0 + rng.random())
    improved = 0
    total_gain = 0.0
    trials = 20
    for _ in range(trials):
        pins = rng.sample(list(g.nodes), 6)
        net = Net(source=pins[0], sinks=tuple(pins[1:]))
        base = kmb(g, net).cost
        it = ikmb(g, net).cost
        if it < base - 1e-9:
            improved += 1
            total_gain += (base - it) / base * 100
    print(
        f"On {trials} random 6-pin nets over a perturbed 15x15 grid, "
        f"IKMB improved\n{improved} instances "
        f"(mean gain {total_gain / max(improved, 1):.1f}% where it fired) "
        f"— iteration is a\nstrict-improvement wrapper, exactly as §3 claims."
    )


if __name__ == "__main__":
    main()
