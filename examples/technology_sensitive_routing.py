#!/usr/bin/env python3
"""Technology-sensitive routing: Elmore delay and objective blending.

Two demonstrations of the paper's §1 motivation that "delay minimization
[is not] synonymous [with] wirelength optimization":

1. evaluate all five tree algorithms under a distributed-RC (Elmore)
   delay model — the pathlength-optimal arborescences win on delay even
   while losing on wirelength, and the gap widens with heavier loads;
2. blend wirelength with congestion on a multi-weighted graph ([4, 7])
   and trace the tradeoff curve.

Run:  python examples/technology_sensitive_routing.py
"""

from __future__ import annotations

import random

from repro import Net, grid_graph
from repro.analysis import RCParameters, compare_delay
from repro.analysis.tables import render_table
from repro.arborescence import djka, idom, pfa
from repro.graph import MultiWeightGraph, sweep_tradeoff
from repro.steiner import ikmb, kmb


def main() -> None:
    rng = random.Random(11)
    g = grid_graph(14, 14)
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0 + rng.random())
    pins = rng.sample(list(g.nodes), 6)
    net = Net(source=pins[0], sinks=tuple(pins[1:]))
    algos = {"kmb": kmb, "ikmb": ikmb, "djka": djka, "pfa": pfa,
             "idom": idom}

    for label, rc in (
        ("light loads (sink_load=0.5)", RCParameters(sink_load=0.5)),
        ("heavy loads (sink_load=4.0)", RCParameters(sink_load=4.0)),
    ):
        res = compare_delay(g, net, algos, rc)
        rows = [
            [name, round(wire, 1), round(delay, 1)]
            for name, (wire, delay) in res.items()
        ]
        print(render_table(
            ["algorithm", "wirelength", "max Elmore delay"],
            rows,
            title=f"Elmore evaluation, {label}",
        ))
        print()

    mwg = MultiWeightGraph(objectives=("wirelength", "congestion"))
    for u, v, w in g.edges():
        mwg.add_edge(u, v, wirelength=w, congestion=rng.random() * 2)
    curve = sweep_tradeoff(
        mwg, net, kmb, "wirelength", "congestion",
        [0.0, 0.25, 0.5, 0.75, 1.0],
    )
    print(render_table(
        ["lambda", "wirelength", "congestion"],
        [[lam, round(x, 1), round(y, 2)] for lam, x, y in curve],
        title="Multi-weighted tradeoff sweep (the [4,7] framework)",
    ))


if __name__ == "__main__":
    main()
