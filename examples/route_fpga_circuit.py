#!/usr/bin/env python3
"""Route a synthetic benchmark circuit onto a Xilinx-4000-style FPGA.

End-to-end demonstration of the Section 5 pipeline:

1. regenerate a benchmark circuit from its published statistics
   (Table 3's ``term1``, scaled down for a quick run);
2. search for the minimum channel width with the IKMB Steiner router;
3. compare against the two-pin decomposition baseline (the executable
   stand-in for SEGA/GBP);
4. print the channel-occupancy map and write an SVG rendering.

Run:  python examples/route_fpga_circuit.py
"""

from __future__ import annotations

import pathlib

from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc4000
from repro.router import RouterConfig, minimum_channel_width
from repro.viz import render_occupancy, save_svg


def main() -> None:
    spec = scaled_spec(circuit_spec("term1"), 0.3)
    circuit = synthesize_circuit(spec, seed=1)
    print(f"Circuit: {circuit.stats()}\n")

    width, result = minimum_channel_width(
        circuit, xc4000, RouterConfig(algorithm="ikmb")
    )
    print(
        f"IKMB router: complete routing at W={width} "
        f"({result.passes_used} passes, "
        f"wirelength {result.total_wirelength:.1f})"
    )

    base_width, base_result = minimum_channel_width(
        circuit, xc4000, RouterConfig(algorithm="two_pin")
    )
    print(
        f"two-pin baseline: needs W={base_width} "
        f"({base_width / width:.2f}x the Steiner router's width; the "
        f"paper reports CGE/SEGA/GBP needing 17-26% more)\n"
    )

    arch = xc4000(circuit.rows, circuit.cols, width)
    print(render_occupancy(result, arch))

    out = pathlib.Path("routed_term1.svg")
    save_svg(str(out), result, arch)
    print(f"\nSVG rendering written to {out.resolve()}")


if __name__ == "__main__":
    main()
