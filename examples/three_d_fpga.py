#!/usr/bin/env python3
"""Routing on a 3-D FPGA (the paper's §6 future-work direction).

Builds a two-layer symmetrical-array FPGA (per Alexander et al.'s 3-D
FPGA work [1, 2]), routes cross-layer nets with the unchanged graph
algorithms, and shows how stacking relieves congestion.

Run:  python examples/three_d_fpga.py
"""

from __future__ import annotations

import random

from repro.analysis.tables import render_table
from repro.fpga import (
    Architecture,
    Architecture3D,
    PlacedNet3D,
    RoutingResourceGraph3D,
    route_nets_3d,
)
from repro.steiner import kmb
from repro.arborescence import pfa


def main() -> None:
    base = Architecture(rows=5, cols=5, channel_width=3, pins_per_block=6)
    rng = random.Random(4)

    # a set of 2-pin nets on layer 0, plus two cross-layer nets
    nets = []
    used = set()
    for i in range(6):
        while True:
            src = (0, rng.randrange(5), rng.randrange(5), rng.randrange(6))
            snk = (0, rng.randrange(5), rng.randrange(5), rng.randrange(6))
            if src != snk and src not in used and snk not in used:
                used.update((src, snk))
                break
        nets.append(PlacedNet3D(f"flat{i}", src, (snk,)))
    nets.append(PlacedNet3D("up0", (0, 0, 0, 0), ((1, 4, 4, 0),)))
    nets.append(PlacedNet3D("up1", (1, 0, 4, 1), ((0, 4, 0, 1),)))

    arch = Architecture3D(base=base, layers=2, vias_per_crossing=2)
    rrg = RoutingResourceGraph3D(arch)
    print(
        f"3-D routing graph: {arch.layers} layers, "
        f"|V|={rrg.graph.num_nodes}, |E|={rrg.graph.num_edges}\n"
    )

    wl_kmb = route_nets_3d(arch, nets, algorithm=kmb)
    wl_pfa = route_nets_3d(arch, nets, algorithm=pfa)
    rows = [
        [name, round(wl_kmb[name], 2), round(wl_pfa[name], 2)]
        for name in wl_kmb
    ]
    print(render_table(
        ["net", "KMB wirelength", "PFA wirelength"],
        rows,
        title="Per-net wirelength on the 2-layer device "
        "(same algorithms, new substrate)",
    ))

    # capacity relief: on a width-1 device, how many parallel nets fit?
    from repro.errors import ReproError

    # a 1-row device: every bus net must cross the same vertical cut,
    # whose capacity is (rows+1) x W = 2 tracks per layer
    tight = Architecture(rows=1, cols=5, channel_width=1, pins_per_block=6)
    stress = [
        PlacedNet3D(f"bus{i}", (0, 0, 0, i), ((0, 4, 0, i),))
        for i in range(5)
    ]

    def count_routable(arch3d) -> int:
        rrg3 = RoutingResourceGraph3D(arch3d)
        rrg3.detach_all_pins()
        routed = 0
        for placed in stress:
            gnet = placed.to_graph_net()
            rrg3.attach_pins(gnet.terminals)
            try:
                tree = kmb(rrg3.graph, gnet)
            except ReproError:
                rrg3.detach_pins(gnet.terminals)
                continue
            rrg3.commit(tree.tree)
            routed += 1
        return routed

    one = count_routable(
        Architecture3D(base=tight, layers=1, vias_per_crossing=0)
    )
    two = count_routable(
        Architecture3D(base=tight, layers=2, vias_per_crossing=1)
    )
    print(
        f"\nCapacity relief on a width-1 device: {one}/5 bus nets route "
        f"on one layer,\n{two}/5 with a second layer stacked on top — "
        f"the [1, 2] motivation in one line."
    )


if __name__ == "__main__":
    main()
