#!/usr/bin/env python3
"""Critical-net routing: the wirelength / pathlength tradeoff curve.

Routes the same circuit with the pure-wirelength router (IKMB) and the
two arborescence routers (PFA, IDOM) at a common channel width, then
reports how much wirelength each arborescence spends to buy its optimal
source–sink pathlengths — the Table 5 experiment in miniature, plus a
per-net scatter of pathlength stretch.

Run:  python examples/critical_net_tradeoffs.py
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc4000
from repro.router import FPGARouter, RouterConfig, minimum_channel_width


def main() -> None:
    spec = scaled_spec(circuit_spec("9symml"), 0.3)
    circuit = synthesize_circuit(spec, seed=2)
    print(f"Circuit: {circuit.stats()}\n")

    algorithms = ("ikmb", "pfa", "idom")
    config = RouterConfig(steiner_candidate_depth=1)

    # common width: smallest feasible for all three, plus one track of
    # headroom so congestion doesn't drown the pathlength signal
    width = (
        max(
            minimum_channel_width(
                circuit, xc4000, config.with_algorithm(a)
            )[0]
            for a in algorithms
        )
        + 1
    )
    print(f"Common channel width: {width}\n")

    results = {}
    for algo in algorithms:
        arch = xc4000(circuit.rows, circuit.cols, width)
        results[algo] = FPGARouter(
            arch, config.with_algorithm(algo)
        ).route(circuit)

    rows = []
    ref = results["ikmb"]
    for algo in algorithms:
        res = results[algo]
        rows.append(
            [
                algo,
                round(res.total_wirelength, 1),
                round(
                    (res.total_wirelength / ref.total_wirelength - 1)
                    * 100,
                    1,
                ),
                round(res.mean_pathlength_stretch(), 3),
            ]
        )
    print(
        render_table(
            ["router", "wirelength", "wire % vs IKMB",
             "mean path stretch"],
            rows,
            title="Wirelength vs pathlength at equal channel width",
        )
    )

    # per-net detail: the nets where IKMB's trees stretch paths most
    stretches = []
    for route in ref.routes:
        for sink, opt in route.optimal_pathlengths.items():
            if opt > 0:
                stretches.append(
                    (route.pathlengths[sink] / opt, route.name)
                )
    stretches.sort(reverse=True)
    print("\nWorst IKMB pathlength stretches (PFA/IDOM pin these to ~1.0):")
    for stretch, name in stretches[:5]:
        print(f"  {name}: {stretch:.2f}x optimal")


if __name__ == "__main__":
    main()
