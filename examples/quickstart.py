#!/usr/bin/env python3
"""Quickstart: route one net five different ways.

Builds a congested grid routing graph (the paper's Table 1 workload),
routes a 5-pin net with each family of algorithms, and prints the
wirelength / max-pathlength tradeoff each one strikes:

* KMB / IKMB — minimum wirelength (non-critical nets, §3);
* DJKA / PFA / IDOM — optimal source–sink pathlengths (critical nets,
  §4), with PFA/IDOM also keeping wirelength near the Steiner optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    Net,
    ShortestPathCache,
    dijkstra,
    djka,
    grid_graph,
    idom,
    ikmb,
    kmb,
    pfa,
)
from repro.analysis import congested_grid
from repro.analysis.tables import render_table


def main() -> None:
    rng = random.Random(7)
    graph, mean_weight = congested_grid(20, 10, rng)
    print(
        f"Routing graph: 20x20 grid, 10 pre-routed nets, "
        f"mean edge weight {mean_weight:.2f}\n"
    )

    pins = rng.sample(list(graph.nodes), 5)
    net = Net(source=pins[0], sinks=tuple(pins[1:]), name="demo")
    print(f"Net: source={net.source}, sinks={list(net.sinks)}\n")

    cache = ShortestPathCache(graph)
    dist, _ = dijkstra(graph, net.source)
    optimal_max_path = max(dist[s] for s in net.sinks)

    rows = []
    for fn in (kmb, ikmb, djka, pfa, idom):
        tree = fn(graph, net, cache)
        rows.append(
            [
                tree.algorithm,
                round(tree.cost, 2),
                round(tree.max_pathlength, 2),
                "yes" if tree.is_arborescence(graph, cache) else "no",
            ]
        )
    print(
        render_table(
            ["algorithm", "wirelength", "max pathlength",
             "shortest-paths tree?"],
            rows,
            title=f"Five routings (optimal max pathlength = "
            f"{optimal_max_path:.2f})",
        )
    )
    print(
        "\nNote the paper's headline observation: PFA/IDOM achieve the "
        "optimal\nmax pathlength while spending wirelength comparable "
        "to the best\nSteiner heuristics."
    )


if __name__ == "__main__":
    main()
