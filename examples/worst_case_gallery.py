#!/usr/bin/env python3
"""Gallery of the paper's adversarial instances (Figures 10, 11, 14).

Shows each worst-case family in action:

* Figure 10 — PFA lured onto per-pair traps (ratio grows with N) while
  IDOM recovers the shared trunk;
* Figure 11 — the rectilinear staircase where path folding drifts
  toward 2x optimal;
* Figure 14 — the Set-Cover family behind IDOM's Ω(log N) bound, with
  the abstract greedy dynamic and the substrate-level escape.

Run:  python examples/worst_case_gallery.py
"""

from __future__ import annotations

from repro.analysis import run_fig10, run_fig11, run_fig14
from repro.analysis.tables import render_table
from repro.arborescence import idom, pfa, pfa_trap_family


def main() -> None:
    print(
        render_table(
            ["pairs", "optimal", "PFA", "IDOM", "PFA/opt"],
            [
                [r["pairs"], r["optimal"], round(r["pfa"], 3),
                 round(r["idom"], 3), round(r["pfa_ratio"], 2)]
                for r in run_fig10((1, 2, 4, 8, 16))
            ],
            title="Figure 10: PFA's Theta(N) trap family",
        )
    )

    inst = pfa_trap_family(4)
    pfa_tree = pfa(inst.graph, inst.net)
    idom_tree = idom(inst.graph, inst.net)
    print(
        f"\n  at 4 pairs: PFA uses Steiner nodes "
        f"{sorted(map(str, set(pfa_tree.tree.nodes) - set(inst.net.terminals)))}"
    )
    print(
        f"  IDOM accepted {list(map(str, idom_tree.steiner_nodes))} "
        f"(the shared hub) and pays {idom_tree.cost:.3f} "
        f"= optimum {inst.optimal_cost:.3f}\n"
    )

    print(
        render_table(
            ["sinks", "optimal*", "PFA", "ratio"],
            [
                [r["sinks"], r["optimal"], round(r["pfa"], 1),
                 round(r["ratio"], 3)]
                for r in run_fig11((2, 3, 4, 5, 6))
            ],
            title="Figure 11: the staircase (PFA drifts above optimal)",
        )
    )
    print()

    print(
        render_table(
            ["levels", "sinks", "greedy sets", "optimal", "IDOM graph"],
            [
                [r["levels"], r["sinks"], r["greedy_sets"],
                 r["optimal_sets"], r["idom_graph_cost"]]
                for r in run_fig14((1, 2, 3, 4, 5))
            ],
            title="Figure 14: Set-Cover family "
            "(abstract greedy pays Theta(log N))",
        )
    )
    print(
        "\nNote: substrate-level IDOM escapes Figure 14's bound by "
        "sharing paths\nthrough unselected macros — see EXPERIMENTS.md "
        "for the discussion."
    )


if __name__ == "__main__":
    main()
