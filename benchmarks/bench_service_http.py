"""Service HTTP front-end throughput and latency.

Not a paper table — this bench characterizes the tentpole of the
service milestone: routing jobs driven end-to-end over the HTTP API
(``repro.service.http`` + ``repro.service.client``), with the durable
journal, admission, verification and result-cache machinery all in the
loop.  Two measurements:

* **submit→result latency**: one client, one job at a time — the full
  wire round trip including journaled enqueue, claim, route, full
  verification and result fetch;
* **throughput (jobs/min)** at 1, 8 and 32 concurrent clients, every
  submission a distinct circuit (distinct fingerprints, so dedupe
  never short-circuits the route);
* **SSE fan-out** at 1, 32 and 256 concurrent subscribers on one
  job's event stream — the broadcast hub must serve them all from
  exactly one log tailer, every subscriber must receive every trace
  line plus the terminal state, and the bench reports aggregate
  delivery rate (events/s across all subscribers).

Every job's result is fetched over the wire and must be
checker-verified (``verified=True`` on the terminal record).

Emits ``BENCH_service_http.json`` at the repository root (and a text
block under ``benchmarks/output/``).  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_service_http.py

or through pytest, where it asserts the sanity floor (all jobs done
and verified, finite positive rates).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import tempfile
import threading
import time

from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit
from repro.service import (
    AdmissionPolicy,
    BackgroundServer,
    RoutingService,
    ServiceClient,
)

try:  # pytest provides conftest helpers; standalone runs inline them
    from .conftest import full_scale, record
except ImportError:  # pragma: no cover - script entry
    from conftest import full_scale, record

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_service_http.json"

#: concurrent-client sweep required by the service milestone
CLIENT_COUNTS = (1, 8, 32)
#: concurrent-subscriber sweep for the SSE broadcast hub
SSE_SUBSCRIBER_COUNTS = (1, 32, 256)
WORKERS = 4
KMB = {"algorithm": "kmb"}


def _circuit(seed: int):
    spec = scaled_spec(circuit_spec("term1"), 0.22)
    return synthesize_circuit(spec, seed=seed)


def _serve(root: str):
    """A routing service + HTTP front end + draining worker pool."""
    # the default policy is tuned for interactive use; the 32-client
    # sweep needs headroom (one tenant per bench client, all active)
    service = RoutingService(
        root,
        policy=AdmissionPolicy(
            max_queue_depth=4096, max_jobs_per_tenant=64
        ),
    )
    background = BackgroundServer(service)
    host, port = background.start()
    pool = threading.Thread(
        target=lambda: service.serve(
            workers=WORKERS, poll_s=0.01, install_signal_handlers=False
        ),
        daemon=True,
    )
    pool.start()

    def stop():
        service.supervisor.request_drain()
        pool.join(timeout=60)
        background.stop()

    return service, f"http://{host}:{port}", stop


def measure_latency(url: str, jobs: int, seed0: int) -> dict:
    """One-at-a-time submit→result wall times, seconds."""
    client = ServiceClient(url)
    samples = []
    for i in range(jobs):
        circuit = _circuit(seed0 + i)
        begin = time.perf_counter()
        submitted = client.submit(
            circuit, config=KMB, width=6, family="xc3000"
        )
        final = client.wait(submitted["job_id"], timeout_s=300)
        assert final["state"] == "done" and final["verified"], final
        client.result(submitted["job_id"])
        samples.append(time.perf_counter() - begin)
    return {
        "jobs": jobs,
        "mean_s": statistics.mean(samples),
        "median_s": statistics.median(samples),
        "max_s": max(samples),
    }


def measure_throughput(
    url: str, clients: int, jobs_per_client: int, seed0: int
) -> dict:
    """Jobs/minute with ``clients`` concurrent submitters."""
    done = []
    errors = []
    lock = threading.Lock()

    def one_client(index: int) -> None:
        client = ServiceClient(url)
        try:
            ids = []
            for i in range(jobs_per_client):
                circuit = _circuit(
                    seed0 + index * jobs_per_client + i
                )
                ids.append(
                    client.submit(
                        circuit, config=KMB, width=6, family="xc3000",
                        tenant=f"bench-{index}",
                    )["job_id"]
                )
            for job_id in ids:
                final = client.wait(job_id, timeout_s=600)
                assert final["state"] == "done" and final["verified"]
                with lock:
                    done.append(job_id)
        except Exception as exc:  # surfaced by the caller
            with lock:
                errors.append(repr(exc))

    begin = time.perf_counter()
    threads = [
        threading.Thread(target=one_client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=900)
    elapsed = time.perf_counter() - begin
    assert not errors, errors
    total = clients * jobs_per_client
    assert len(done) == total, (len(done), total)
    return {
        "clients": clients,
        "jobs": total,
        "elapsed_s": elapsed,
        "jobs_per_min": total / elapsed * 60.0,
    }


def measure_sse_fanout(subscribers: int, lines: int, seed: int) -> dict:
    """Aggregate SSE delivery rate, N subscribers on one job.

    Runs against a fresh store with no worker pool so the job stays
    queued: the bench appends synthetic trace lines to the job's
    ``log.jsonl`` (exactly what the engine does) and cancels the job
    to fan the terminal state out.  Every subscriber must see every
    line; the hub must have started exactly one tailer.
    """
    with tempfile.TemporaryDirectory() as root:
        service = RoutingService(root)
        background = BackgroundServer(service)
        host, port = background.start()
        url = f"http://{host}:{port}"
        try:
            client = ServiceClient(url)
            job_id = client.submit(
                _circuit(seed), config=KMB, width=6, family="xc3000"
            )["job_id"]
            counts = [0] * subscribers
            threads = []

            def watch(index: int) -> None:
                own = ServiceClient(url)
                for event, _data, _eid in own.events(
                    job_id, heartbeats=False
                ):
                    if event == "trace":
                        counts[index] += 1

            for i in range(subscribers):
                thread = threading.Thread(
                    target=watch, args=(i,), daemon=True
                )
                thread.start()
                threads.append(thread)
            hub = background.frontend.hub
            deadline = time.monotonic() + 60
            while hub.stats()["subscribers"] < subscribers:
                assert time.monotonic() < deadline, hub.stats()
                time.sleep(0.01)
            begin = time.perf_counter()
            log_path = service.store.log_path(job_id)
            with open(log_path, "a", encoding="utf-8") as fh:
                for i in range(lines):
                    fh.write(json.dumps(
                        {"type": "bench", "i": i, "pad": "x" * 64}
                    ) + "\n")
            client.cancel(job_id)
            for thread in threads:
                thread.join(timeout=300)
            elapsed = time.perf_counter() - begin
            assert not any(t.is_alive() for t in threads)
            assert counts == [lines] * subscribers, (
                "lossy fan-out", sorted(set(counts)),
            )
            stats = hub.stats()
            assert stats["tails_started"] == 1, stats
            return {
                "subscribers": subscribers,
                "lines": lines,
                "elapsed_s": elapsed,
                "events_per_s": subscribers * lines / elapsed,
                "tails_started": stats["tails_started"],
                "lagged": stats["dropped_slow"],
            }
        finally:
            background.stop()


def run_bench() -> dict:
    latency_jobs = 10 if full_scale() else 4
    jobs_per_client = 4 if full_scale() else 2
    sse_lines = 400 if full_scale() else 120
    doc = {"workers": WORKERS, "throughput": {}, "sse_fanout": {}}
    with tempfile.TemporaryDirectory() as root:
        service, url, stop = _serve(root)
        try:
            doc["latency"] = measure_latency(url, latency_jobs, 10_000)
            seed0 = 20_000
            for clients in CLIENT_COUNTS:
                doc["throughput"][str(clients)] = measure_throughput(
                    url, clients, jobs_per_client, seed0
                )
                seed0 += 10_000
        finally:
            stop()
    for subscribers in SSE_SUBSCRIBER_COUNTS:
        doc["sse_fanout"][str(subscribers)] = measure_sse_fanout(
            subscribers, sse_lines, seed=90_000 + subscribers
        )
    return doc


def render(doc: dict) -> str:
    lines = [
        "service HTTP bench (submit -> verified result, over the wire)",
        f"  workers: {doc['workers']}",
        "  latency (1 client, sequential): "
        f"median {doc['latency']['median_s'] * 1e3:.0f} ms, "
        f"mean {doc['latency']['mean_s'] * 1e3:.0f} ms, "
        f"max {doc['latency']['max_s'] * 1e3:.0f} ms "
        f"({doc['latency']['jobs']} jobs)",
        "  throughput:",
    ]
    for clients in CLIENT_COUNTS:
        row = doc["throughput"][str(clients)]
        lines.append(
            f"    {row['clients']:>2} client(s): "
            f"{row['jobs_per_min']:8.1f} jobs/min "
            f"({row['jobs']} jobs in {row['elapsed_s']:.2f} s)"
        )
    lines.append("  SSE fan-out (one job, one shared tailer):")
    for subscribers in SSE_SUBSCRIBER_COUNTS:
        row = doc["sse_fanout"][str(subscribers)]
        lines.append(
            f"    {row['subscribers']:>3} subscriber(s): "
            f"{row['events_per_s']:9.0f} events/s aggregate "
            f"({row['lines']} lines in {row['elapsed_s']:.2f} s, "
            f"{row['tails_started']} tailer)"
        )
    return "\n".join(lines)


def main() -> dict:
    doc = run_bench()
    BENCH_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    record("bench_service_http", render(doc) + f"\n[json: {BENCH_PATH}]")
    return doc


def test_service_http_bench():
    doc = main()
    assert doc["latency"]["median_s"] > 0
    for clients in CLIENT_COUNTS:
        assert doc["throughput"][str(clients)]["jobs_per_min"] > 0
    for subscribers in SSE_SUBSCRIBER_COUNTS:
        row = doc["sse_fanout"][str(subscribers)]
        assert row["tails_started"] == 1
        assert row["events_per_s"] > 0


if __name__ == "__main__":  # pragma: no cover - script entry
    main()
