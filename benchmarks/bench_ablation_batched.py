"""Ablation — batched vs one-at-a-time Steiner insertion (§3).

The paper notes Steiner points "may be added in batches based on a
non-interference criterion", with very few rounds needed in practice
(≤ 3 typical).  This bench compares solution quality and candidate-scan
rounds for the two IGMST modes.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import congested_grid
from repro.analysis.tables import render_table
from repro.graph import ShortestPathCache, random_net
from repro.steiner import ikmb
from .conftest import full_scale, record


def test_ablation_batched(benchmark):
    rng = random.Random(21)
    count = 10 if full_scale() else 5
    instances = []
    for _ in range(count):
        g, _ = congested_grid(12, 6, rng)
        instances.append((g, random_net(g, 6, rng)))

    def run():
        stats = {}
        for batched in (False, True):
            total = 0.0
            rounds = []
            for g, net in instances:
                cache = ShortestPathCache(g)
                tree = ikmb(
                    g, net, cache=cache, batched=batched, record_trace=True
                )
                total += tree.cost
                rounds.append(tree.trace.rounds)
            stats[batched] = (total, rounds)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for batched, (total, rounds) in stats.items():
        rows.append(
            [
                "batched" if batched else "one-at-a-time",
                round(total, 2),
                max(rounds),
                round(sum(rounds) / len(rounds), 1),
            ]
        )
    record(
        "ablation_batched",
        render_table(
            ["mode", "total wirelength", "max rounds", "mean rounds"],
            rows,
            title="Ablation: IGMST insertion mode",
        ),
    )
    total_seq, _ = stats[False]
    total_bat, rounds_bat = stats[True]
    # batched quality stays within 5% of sequential
    assert total_bat <= total_seq * 1.05
    # and the paper's observation holds: very few batch rounds
    assert max(rounds_bat) <= 4
