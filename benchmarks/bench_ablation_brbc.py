"""Ablation — BRBC's radius/cost tradeoff vs PFA/IDOM (§2, ref [14]).

The paper's Section 2 claim, made executable: sweeping BRBC's epsilon
trades wirelength for radius, but "with the tradeoff parameter tuned
completely towards pathlength minimization" it only matches Dijkstra's
tree — whereas PFA/IDOM sit strictly below that endpoint (optimal
radius at less wirelength).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import render_table
from repro.arborescence import (
    brbc,
    idom,
    pd_tradeoff_curve,
    pfa,
    radius_cost_curve,
)
from repro.graph import ShortestPathCache, grid_graph, random_net
from .conftest import full_scale, record


def test_ablation_brbc_tradeoff(benchmark):
    trials = 10 if full_scale() else 5
    rng = random.Random(41)
    g = grid_graph(14, 14)
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0 + rng.random())
    nets = [random_net(g, 6, rng) for _ in range(trials)]
    epsilons = [0.0, 0.25, 0.5, 1.0, 2.0]
    pd_cs = [0.0, 0.5, 1.0]

    def run():
        curve_totals = {eps: [0.0, 0.0] for eps in epsilons}
        pd_totals = {c: [0.0, 0.0] for c in pd_cs}
        pfa_total = idom_total = 0.0
        for net in nets:
            cache = ShortestPathCache(g)
            for eps, cost, ratio in radius_cost_curve(
                g, net, epsilons, cache
            ):
                curve_totals[eps][0] += cost
                curve_totals[eps][1] += ratio
            for c, cost, ratio in pd_tradeoff_curve(g, net, pd_cs, cache):
                pd_totals[c][0] += cost
                pd_totals[c][1] += ratio
            pfa_total += pfa(g, net, cache).cost
            idom_total += idom(g, net, cache=cache).cost
        return curve_totals, pd_totals, pfa_total, idom_total

    curve_totals, pd_totals, pfa_total, idom_total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        [f"BRBC eps={eps:g}", round(cost, 1), round(ratio / trials, 3)]
        for eps, (cost, ratio) in curve_totals.items()
    ] + [
        [f"AHHK c={c:g}", round(cost, 1), round(ratio / trials, 3)]
        for c, (cost, ratio) in pd_totals.items()
    ] + [
        ["PFA", round(pfa_total, 1), 1.0],
        ["IDOM", round(idom_total, 1), 1.0],
    ]
    record(
        "ablation_brbc",
        render_table(
            ["construction", "total wirelength", "mean max radius ratio"],
            rows,
            title="Ablation: BRBC [14] / AHHK [9] tradeoff curves vs "
            "PFA/IDOM (radius ratio 1.0 = optimal pathlengths)",
        ),
    )
    brbc0_cost = curve_totals[0.0][0]
    pd1_cost = pd_totals[1.0][0]
    # the §2 claim: at their pathlength-optimal endpoints, both tradeoff
    # methods reduce to Dijkstra's tree, which the paper's
    # arborescences undercut in wirelength
    assert pfa_total <= brbc0_cost + 1e-6
    assert idom_total <= brbc0_cost + 1e-6
    assert pfa_total <= pd1_cost + 1e-6
    assert idom_total <= pd1_cost + 1e-6
    # and the BRBC curve trades in the right direction end to end
    # (per-step monotonicity is not guaranteed for a heuristic sweep)
    costs = [curve_totals[eps][0] for eps in epsilons]
    assert costs[0] >= costs[-1] - 1e-6
    ratios = [curve_totals[eps][1] for eps in epsilons]
    assert ratios[-1] >= ratios[0] - 1e-6
