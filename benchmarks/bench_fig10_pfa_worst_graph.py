"""Figure 10 — PFA's Θ(N) worst case on arbitrary weighted graphs.

Builds the trap family (shared cheap trunk vs per-pair MaxDom traps)
and shows PFA's cost ratio growing linearly with the number of sink
pairs while IDOM — as the paper notes — "optimally solves these
particular worst-case examples".
"""

from __future__ import annotations

import pytest

from repro.analysis import run_fig10
from repro.analysis.tables import render_table
from repro.arborescence import optimal_arborescence_cost, pfa_trap_family
from .conftest import full_scale, record


def test_fig10_pfa_worst_graph(benchmark):
    pair_counts = (1, 2, 4, 8, 16, 32) if full_scale() else (1, 2, 4, 8, 16)
    rows = benchmark.pedantic(
        run_fig10, args=(pair_counts,), rounds=1, iterations=1
    )
    record(
        "fig10_pfa_worst_graph",
        render_table(
            ["pairs", "optimal", "PFA", "IDOM", "PFA/opt", "IDOM/opt"],
            [
                [r["pairs"], r["optimal"], r["pfa"], r["idom"],
                 r["pfa_ratio"], r["idom_ratio"]]
                for r in rows
            ],
            title="Figure 10: PFA trap family (ratio grows ~N/2; "
            "IDOM stays optimal)",
        ),
    )
    ratios = [r["pfa_ratio"] for r in rows]
    # strictly growing degradation, linear in N
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 0.4 * rows[-1]["pairs"]
    # IDOM solves every instance optimally (pairs >= 2)
    for r in rows:
        if r["pairs"] >= 2:
            assert r["idom_ratio"] == pytest.approx(1.0)

    # cross-check the analytic optimum against the exact solver on a
    # small instance
    inst = pfa_trap_family(2)
    exact = optimal_arborescence_cost(inst.graph, inst.net)
    assert exact == pytest.approx(inst.optimal_cost)
