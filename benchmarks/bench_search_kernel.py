"""Goal-directed search kernels vs plain Dijkstra on a routing graph.

Not a paper table — this bench quantifies the tentpole claim behind
``RouterConfig.search``: on an XC4000-style routing-resource graph,
A* under the channel-lattice Manhattan bound (and the bidirectional
kernel) answer single-target queries with substantially fewer heap
pops than plain early-exit Dijkstra, while the differential suite
(``tests/differential/``) proves the answers identical.

Emits ``BENCH_search.json`` at the repository root (and a text block
under ``benchmarks/output/``).  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_search_kernel.py

or through pytest, where it asserts the headline ≥ 25% heap-pop
reduction for the A* kernel.
"""

from __future__ import annotations

import json
import pathlib
import random
import time

from repro.fpga import build_routing_graph, xc4000
from repro.graph import (
    DijkstraCounters,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    manhattan_heuristic,
    set_dijkstra_counters,
)

try:  # pytest provides `record` via conftest; standalone runs inline it
    from .conftest import full_scale, record
except ImportError:  # pragma: no cover - script entry
    from conftest import full_scale, record

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_search.json"

#: the acceptance floor for the A* kernel's heap-pop reduction
REDUCTION_FLOOR_PCT = 25.0

SEED = 1995


def build_queries(graph, rnd, per_class):
    """Deterministic single-target query mix on the routing graph.

    Two classes: pin-to-pin (the router's precheck shape, heuristic
    scale 0.5 on XC4000 weights) and junction-to-junction (pure channel
    geometry, where the Manhattan bound is nearly exact).
    """
    pins = sorted((n for n in graph.nodes if n[0] == "P"), key=repr)
    juncs = sorted((n for n in graph.nodes if n[0] == "J"), key=repr)
    classes = {
        "pin_to_pin": [
            (rnd.choice(pins), rnd.choice(pins)) for _ in range(per_class)
        ],
        "junction_to_junction": [
            (rnd.choice(juncs), rnd.choice(juncs))
            for _ in range(per_class)
        ],
    }
    return {
        name: [(s, t) for s, t in qs if s != t]
        for name, qs in classes.items()
    }


def run_kernel(kernel, graph, queries, scale):
    """All queries under one kernel; returns (counters, seconds, dists)."""
    counters = DijkstraCounters()
    previous = set_dijkstra_counters(counters)
    dists = []
    start = time.perf_counter()
    try:
        for s, t in queries:
            if kernel == "dijkstra":
                dist, _ = dijkstra(graph, s, targets=[t])
                dists.append(dist.get(t))
            elif kernel == "astar":
                h = manhattan_heuristic(graph, t, scale=scale)
                dist, _ = astar(graph, s, t, h)
                dists.append(dist.get(t))
            else:
                d, _ = bidirectional_dijkstra(graph, s, t)
                dists.append(d)
    finally:
        set_dijkstra_counters(previous)
    return counters.snapshot(), time.perf_counter() - start, dists


def run_bench():
    size = 12 if full_scale() else 8
    width = 10
    arch = xc4000(size, size, width)
    rrg = build_routing_graph(arch)
    graph = rrg.graph
    scale = min(arch.segment_weight, arch.pin_weight)
    rnd = random.Random(SEED)
    per_class = 60 if full_scale() else 40
    classes = build_queries(graph, rnd, per_class)

    doc = {
        "schema": "repro.bench/search-v1",
        "architecture": {
            "family": "xc4000",
            "rows": size,
            "cols": size,
            "channel_width": width,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
        },
        "seed": SEED,
        "heuristic_scale": scale,
        "classes": {},
        "totals": {},
        "reduction_pct": {},
    }

    totals = {k: {"heap_pops": 0, "relaxations": 0, "pruned": 0,
                  "seconds": 0.0}
              for k in ("dijkstra", "astar", "bidir")}
    for cls_name, queries in classes.items():
        cls_doc = {"queries": len(queries), "kernels": {}}
        reference = None
        for kernel in ("dijkstra", "astar", "bidir"):
            snap, seconds, dists = run_kernel(
                kernel, graph, queries, scale
            )
            if reference is None:
                reference = dists
            elif dists != reference:
                raise AssertionError(
                    f"{kernel} distances diverged from plain Dijkstra "
                    f"on {cls_name}"
                )
            cls_doc["kernels"][kernel] = {
                "heap_pops": snap["heap_pops"],
                "relaxations": snap["relaxations"],
                "pruned": snap["pruned"],
                "seconds": round(seconds, 4),
            }
            for key in ("heap_pops", "relaxations", "pruned"):
                totals[kernel][key] += snap[key]
            totals[kernel]["seconds"] += seconds
        doc["classes"][cls_name] = cls_doc

    base = totals["dijkstra"]["heap_pops"]
    for kernel, snap in totals.items():
        snap["seconds"] = round(snap["seconds"], 4)
        doc["totals"][kernel] = snap
        doc["reduction_pct"][kernel] = round(
            100.0 * (1.0 - snap["heap_pops"] / base), 2
        )
    return doc


def write_bench(doc):
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines = [
        "search kernel bench (single-target queries, "
        f"{doc['architecture']['rows']}x{doc['architecture']['cols']} "
        "xc4000 routing graph)",
        f"{'kernel':<10} {'heap pops':>12} {'relaxations':>12} "
        f"{'reduction':>10}",
    ]
    for kernel in ("dijkstra", "astar", "bidir"):
        t = doc["totals"][kernel]
        lines.append(
            f"{kernel:<10} {t['heap_pops']:>12} {t['relaxations']:>12} "
            f"{doc['reduction_pct'][kernel]:>9.1f}%"
        )
    lines.append(f"[saved to {BENCH_PATH}]")
    record("bench_search_kernel", "\n".join(lines))


def test_bench_search_kernel():
    doc = run_bench()
    write_bench(doc)
    assert doc["reduction_pct"]["astar"] >= REDUCTION_FLOOR_PCT
    # the bidirectional kernel must at least not regress
    assert doc["reduction_pct"]["bidir"] > 0.0


if __name__ == "__main__":  # pragma: no cover
    test_bench_search_kernel()
    print("ok")
