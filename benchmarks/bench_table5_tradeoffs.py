"""Table 5 — wirelength vs maximum pathlength at equal channel width.

Routes each circuit with IKMB, PFA and IDOM at the smallest channel
width feasible for *all three*, then reports each arborescence
algorithm's total-wirelength increase and mean per-net max-pathlength
change versus IKMB.

Expected shape (paper: +18.2% / +12.8% wirelength, −9.5% / −10.2%
max pathlength for PFA / IDOM): both arborescence algorithms spend
extra wirelength and recover it as strictly shorter worst-case
source–sink paths.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_table5
from repro.fpga import XC4000_CIRCUITS, xc4000
from repro.router import RouterConfig
from .conftest import circuit_fraction, full_scale, record


def _specs():
    if full_scale():
        return XC4000_CIRCUITS
    keep = {"apex7", "term1", "9symml"}
    return tuple(s for s in XC4000_CIRCUITS if s.name in keep)


def test_table5_tradeoffs(benchmark):
    specs = _specs()
    fraction = min(circuit_fraction(s, target_nets=20) for s in specs)
    config = RouterConfig(steiner_candidate_depth=1, max_steiner_nodes=4)
    result = benchmark.pedantic(
        run_table5,
        kwargs={
            "specs": specs,
            "family_builder": xc4000,
            "algorithms": ("pfa", "idom"),
            "fraction": fraction,
            "seed": 5,
            "config": config,
            # one track above the common minimum: at the scaled-down
            # widths (W~4 vs the paper's 9-17) the bare minimum drowns
            # the pathlength signal in congestion detours (EXPERIMENTS.md)
            "headroom": 0 if full_scale() else 1,
        },
        rounds=1,
        iterations=1,
    )
    record("table5_tradeoffs", result.render())
    wire, path = result.averages()
    # the defining tradeoff: arborescences pay wirelength (within noise)...
    assert wire["pfa"] >= -1.0
    assert wire["idom"] >= -1.0
    # ...and buy shorter worst-case paths on average
    assert path["pfa"] < 0.0
    assert path["idom"] < 0.0
