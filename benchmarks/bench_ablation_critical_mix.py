"""Ablation — mixed criticality-aware routing (§2 net classification).

The paper routes nets "in either category" with the matching algorithm
family.  This bench routes the same circuit three ways — all-Steiner,
all-arborescence, and mixed (top-HPWL quarter critical → PFA, rest →
KMB) — and measures what the mix costs in width/wirelength and buys in
critical-net pathlength.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc4000
from repro.router import FPGARouter, RouterConfig, minimum_channel_width
from .conftest import circuit_fraction, full_scale, record


def test_ablation_critical_mix(benchmark):
    spec = circuit_spec("apex7")
    fraction = 0.4 if full_scale() else circuit_fraction(spec)
    circuit = synthesize_circuit(scaled_spec(spec, fraction), seed=7)
    configs = {
        "all KMB": RouterConfig(algorithm="kmb"),
        "mixed (25% critical -> PFA)": RouterConfig(
            algorithm="kmb",
            critical_algorithm="pfa",
            critical_fraction=0.25,
        ),
        "all PFA": RouterConfig(algorithm="pfa"),
    }

    def run():
        rows = []
        for label, cfg in configs.items():
            w, res = minimum_channel_width(circuit, xc4000, cfg)
            crit = [
                r for r in res.routes if r.algorithm in ("PFA", "IDOM")
            ]
            stretch = res.mean_pathlength_stretch()
            rows.append(
                [label, w, round(res.total_wirelength, 1),
                 len(crit), round(stretch, 3)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_critical_mix",
        render_table(
            ["configuration", "min W", "wirelength",
             "arborescence nets", "mean path stretch"],
            rows,
            title="Ablation: criticality-aware mixed routing",
        ),
    )
    by_label = {r[0]: r for r in rows}
    w_kmb = by_label["all KMB"][1]
    w_mix = by_label["mixed (25% critical -> PFA)"][1]
    w_pfa = by_label["all PFA"][1]
    # the mix sits between the two pure modes in channel width
    assert w_kmb <= w_mix + 1
    assert w_mix <= w_pfa + 1
    # and the mixed run actually routed some nets as arborescences
    assert by_label["mixed (25% critical -> PFA)"][3] > 0
