"""Table 2 — minimum channel width, Xilinx 3000-series circuits.

For each of the five XC3000 benchmark circuits (busc, dma, bnre, dfsm,
z03 — regenerated synthetically at matching statistics, DESIGN.md §4)
the bench finds the minimum channel width of our Steiner router (IKMB)
and of the executable CGE stand-in (the two-pin decomposition baseline),
and prints them next to the published CGE / paper widths.

Expected shape: the decomposition baseline needs substantially more
channel width than the Steiner router (the paper reports CGE needing
22% more on average; our synthetic circuits typically show an even
larger gap because the baseline shares nothing between connections).
"""

from __future__ import annotations

import pytest

from repro.analysis import run_width_table
from repro.fpga import XC3000_CIRCUITS, xc3000
from repro.router import RouterConfig
from .conftest import circuit_fraction, full_scale, record


def test_table2_xc3000(benchmark):
    specs = XC3000_CIRCUITS
    fraction = min(circuit_fraction(s) for s in specs)
    config = RouterConfig(
        steiner_candidate_depth=1 if not full_scale() else 2,
        max_steiner_nodes=4 if not full_scale() else 8,
    )
    result = benchmark.pedantic(
        run_width_table,
        kwargs={
            "specs": specs,
            "family_builder": xc3000,
            "algorithms": ("ikmb", "two_pin"),
            "fraction": fraction,
            "seed": 3,
            "config": config,
        },
        rounds=1,
        iterations=1,
    )
    record("table2_xc3000", result.render(baseline="ikmb"))
    totals = result.totals()
    # every circuit routed; the Steiner router never needs more width
    for row in result.rows:
        assert row.widths["ikmb"] <= row.widths["two_pin"]
    # aggregate gap: baseline needs at least ~15% more width, mirroring
    # the paper's CGE-vs-ours 22% gap
    assert totals["two_pin"] >= 1.15 * totals["ikmb"]
