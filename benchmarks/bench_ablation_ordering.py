"""Ablation — net ordering and the move-to-front heuristic (§5).

The paper routes nets one at a time with a move-to-front retry scheme.
This bench compares initial orderings (high-fanout-first, HPWL-first,
input order) by achieved channel width and passes used.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc4000
from repro.router import RouterConfig, minimum_channel_width
from .conftest import circuit_fraction, full_scale, record


def test_ablation_ordering(benchmark):
    spec = circuit_spec("term1")
    fraction = 0.5 if full_scale() else circuit_fraction(spec)
    circuit = synthesize_circuit(scaled_spec(spec, fraction), seed=13)

    def run():
        rows = []
        for order in ("pins_desc", "hpwl_desc", "input"):
            cfg = RouterConfig(algorithm="kmb", order=order)
            w, res = minimum_channel_width(circuit, xc4000, cfg)
            rows.append([order, w, res.passes_used])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_ordering",
        render_table(
            ["initial order", "min W", "passes"],
            rows,
            title="Ablation: initial net ordering "
            "(move-to-front active in all rows)",
        ),
    )
    widths = [r[1] for r in rows]
    # all orderings must converge thanks to move-to-front; widths stay
    # within one track of each other on this circuit
    assert max(widths) - min(widths) <= 2
