"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper (DESIGN.md §3)
and follows the same conventions:

* deterministic seeds;
* laptop-friendly default scale, full published scale with
  ``REPRO_FULL=1`` in the environment;
* results printed to stdout *and* written under ``benchmarks/output/``
  so EXPERIMENTS.md can reference the exact artifacts.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def full_scale() -> bool:
    """True when the suite should run at published scale."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def circuit_fraction(spec, target_nets: int = 26) -> float:
    """Scale factor capping a circuit near ``target_nets`` nets.

    At full scale the published size (fraction 1.0) is used.
    """
    if full_scale():
        return 1.0
    return min(0.2, max(0.04, target_nets / spec.num_nets))


def record(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture
def out():
    """The ``record`` helper as a fixture."""
    return record
