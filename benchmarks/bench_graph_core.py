"""Flat CSR graph core vs dict adjacency: end-to-end routing wall-clock.

Not a paper table — this bench quantifies the tentpole claim behind
``RouterConfig.graph_backend``: on production-sized XC4000 devices the
flat backend (CSR arrays + incremental refreeze + the ``best[]``-array
Dijkstra kernel) routes whole circuits substantially faster than the
dict-adjacency reference, while producing bit-identical results — the
differential suite (``tests/differential/``) proves trees, wirelengths
and channel widths equal; this bench re-asserts the result signature
on every timed run so a speed win can never mask a divergence.

Timing methodology: the two backends are *interleaved* rep by rep and
the best-of-N wall-clock is kept per backend.  Back-to-back runs of
the same workload drift 10-30% on shared machines; interleaving puts
both backends through the same thermal/load environment and best-of-N
discards the outliers, which is what makes a CI gate on wall-clock
viable at all.

Emits ``BENCH_graph_core.json`` at the repository root (and a text
block under ``benchmarks/output/``).  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_graph_core.py

or through pytest, where it asserts the headline ≥ 30% wall-clock
reduction on the 16x16 device.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

from repro.engine import RoutingSession
from repro.fpga import CircuitSpec, synthesize_circuit, xc4000
from repro.router import RouterConfig

try:  # pytest provides `record` via conftest; standalone runs inline it
    from .conftest import full_scale, record
except ImportError:  # pragma: no cover - script entry
    from conftest import full_scale, record

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_graph_core.json"

#: the acceptance floor for the 16x16 wall-clock reduction
REDUCTION_FLOOR_PCT = 30.0

SEED = 7

#: DOM exercises the full flat surface — per-sink SSSPs through the
#: ShortestPathCache plus dominance scans over the dist/pred dicts —
#: and is the heaviest per-net consumer of freeze()/sssp() among the
#: acceptance algorithms, so it is where the CSR core's win is most
#: load-bearing (and most reproducible).
ALGORITHM = "dom"
MAX_PASSES = 8

#: (label, cols, rows, channel width, nets_2_3, nets_4_10, nets_over_10,
#:  min_reps, max_reps) — the gated device gets a larger rep budget so
#: best-of-N converges on the true minimum for both backends before
#: the floor is applied
DEVICES = [
    ("8x8", 8, 8, 5, 16, 6, 2, 3, 5),
    ("16x16", 16, 16, 8, 30, 12, 4, 3, 8),
]

#: a rep "improves" a backend's minimum only when it beats it by more
#: than this fraction; two consecutive non-improving reps end the loop
CONVERGENCE_RTOL = 0.01

#: the device whose reduction is gated in CI
GATED_DEVICE = "16x16"


def build_workload(label, cols, rows, width, n23, n410, n10):
    spec = CircuitSpec(
        name=f"bench-{label}", family="xc4000", cols=cols, rows=rows,
        nets_2_3=n23, nets_4_10=n410, nets_over_10=n10, published={},
    )
    return xc4000(cols, rows, width), synthesize_circuit(spec, seed=SEED)


def result_signature(result):
    """An exact, comparable image of a routing result: pass count,
    total wirelength, and every route's edge set — the same contract
    the differential suite enforces, re-checked on every timed run."""
    routes = tuple(
        (r.name, r.wirelength, tuple(sorted(repr(e) for e in r.edges)))
        for r in sorted(result.routes, key=lambda r: r.name)
    )
    return (result.passes_used, result.total_wirelength, routes)


def route_once(arch, circuit, backend):
    """One full serial routing run; returns (seconds, signature)."""
    config = RouterConfig(
        algorithm=ALGORITHM, max_passes=MAX_PASSES,
        graph_backend=backend,
    )
    # collector pauses are the single largest noise source at this
    # timescale; a collected+disabled heap gives both backends the
    # same allocation conditions
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = RoutingSession(arch, config, engine="serial").route(circuit)
        seconds = time.perf_counter() - start
    finally:
        gc.enable()
    return seconds, result_signature(result)


def bench_device(label, cols, rows, width, n23, n410, n10,
                 min_reps, max_reps, extra_reps=0):
    arch, circuit = build_workload(label, cols, rows, width, n23, n410, n10)
    max_reps += extra_reps
    best = {"dict": float("inf"), "flat": float("inf")}
    signatures = {}
    reps = stale = 0
    while reps < max_reps:
        improved = False
        for backend in ("dict", "flat"):  # interleaved: shared conditions
            seconds, signature = route_once(arch, circuit, backend)
            if seconds < best[backend] * (1.0 - CONVERGENCE_RTOL):
                improved = True
            best[backend] = min(best[backend], seconds)
            previous = signatures.setdefault(backend, signature)
            if signature != previous:
                raise AssertionError(
                    f"{backend} backend non-deterministic on {label}"
                )
        reps += 1
        stale = 0 if improved else stale + 1
        # both minima held through two consecutive rounds: converged
        if reps >= min_reps and stale >= 2:
            break
    if signatures["dict"] != signatures["flat"]:
        raise AssertionError(
            f"flat result diverged from dict reference on {label}"
        )
    reduction = 100.0 * (best["dict"] - best["flat"]) / best["dict"]
    return {
        "cols": cols,
        "rows": rows,
        "channel_width": width,
        "nets": len(circuit.nets),
        "reps": reps,
        "dict_seconds": round(best["dict"], 4),
        "flat_seconds": round(best["flat"], 4),
        "reduction_pct": round(reduction, 2),
        "total_wirelength": signatures["dict"][1],
        "routed_nets": len(signatures["dict"][2]),
    }


def run_bench():
    extra_reps = 2 if full_scale() else 0
    doc = {
        "schema": "repro.bench/graph-core-v1",
        "algorithm": ALGORITHM,
        "max_passes": MAX_PASSES,
        "engine": "serial",
        "seed": SEED,
        "gated_device": GATED_DEVICE,
        "reduction_floor_pct": REDUCTION_FLOOR_PCT,
        "devices": {},
    }
    for label, *shape in DEVICES:
        doc["devices"][label] = bench_device(
            label, *shape, extra_reps=extra_reps
        )
    doc["reduction_pct"] = doc["devices"][GATED_DEVICE]["reduction_pct"]
    return doc


def write_bench(doc):
    with open(BENCH_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    lines = [
        "graph core bench (full serial routing, "
        f"{doc['algorithm']} x{doc['max_passes']} passes, xc4000)",
        f"{'device':<8} {'nets':>5} {'dict':>8} {'flat':>8} "
        f"{'reduction':>10}",
    ]
    for label, dev in doc["devices"].items():
        lines.append(
            f"{label:<8} {dev['nets']:>5} {dev['dict_seconds']:>7.2f}s "
            f"{dev['flat_seconds']:>7.2f}s {dev['reduction_pct']:>9.1f}%"
        )
    lines.append(f"[saved to {BENCH_PATH}]")
    record("bench_graph_core", "\n".join(lines))


def test_bench_graph_core():
    doc = run_bench()
    write_bench(doc)
    gated = doc["devices"][GATED_DEVICE]
    assert gated["reduction_pct"] >= REDUCTION_FLOOR_PCT
    # the small device must at least not regress
    assert doc["devices"]["8x8"]["reduction_pct"] > 0.0


if __name__ == "__main__":  # pragma: no cover
    test_bench_graph_core()
    print("ok")
