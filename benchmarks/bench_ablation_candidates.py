"""Ablation — IGMST Steiner-candidate strategies (DESIGN.md §6).

The paper's IGMST scans all of V − N for candidates; the router
restricts the scan for speed.  This bench quantifies the
quality/runtime tradeoff of ``all`` vs ``neighborhood`` vs an explicit
near-tree pool on congested grids.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis import congested_grid
from repro.analysis.tables import render_table
from repro.graph import ShortestPathCache, random_net
from repro.steiner import ikmb, kmb
from .conftest import full_scale, record


def _instances(count: int, seed: int = 9):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        g, _ = congested_grid(14, 8, rng)
        out.append((g, random_net(g, 6, rng)))
    return out


def test_ablation_candidate_strategies(benchmark):
    instances = _instances(8 if full_scale() else 4)

    def run():
        rows = []
        for strategy in ("all", "neighborhood"):
            total_cost = 0.0
            total_kmb = 0.0
            start = time.perf_counter()
            for g, net in instances:
                cache = ShortestPathCache(g)
                total_kmb += kmb(g, net, cache).cost
                total_cost += ikmb(
                    g, net, cache=cache, candidates=strategy
                ).cost
            elapsed = time.perf_counter() - start
            rows.append(
                [
                    strategy,
                    round(total_cost, 2),
                    round((total_cost / total_kmb - 1) * 100, 2),
                    round(elapsed * 1000 / len(instances), 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_candidates",
        render_table(
            ["candidates", "total wirelength", "% vs KMB", "ms/net"],
            rows,
            title="Ablation: IGMST candidate strategy "
            "(quality vs runtime)",
        ),
    )
    by_name = {r[0]: r for r in rows}
    # the full scan is the quality reference; the restricted scan must
    # stay within a few percent of it while remaining beneficial vs KMB
    assert by_name["all"][1] <= by_name["neighborhood"][1] + 1e-6
    assert by_name["neighborhood"][2] <= 0.5  # still no worse than KMB
