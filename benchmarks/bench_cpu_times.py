"""§5 CPU-time note — IKMB / PFA / IDOM on |V|=50, |E|=1000, |N|=5.

The paper reports "several dozen milliseconds on a Sun/4 workstation"
for these instance sizes; this bench times our implementations on the
same random-graph family with pytest-benchmark (the absolute numbers
are machine-dependent; the *relative* cost of the three constructions
is the reproducible quantity).
"""

from __future__ import annotations

import random

import pytest

from repro.arborescence import idom, pfa
from repro.graph import random_connected_graph, random_net
from repro.steiner import ikmb
from .conftest import record


def _instance(seed: int):
    rng = random.Random(seed)
    g = random_connected_graph(50, 1000, rng)
    return g, random_net(g, 5, rng)


@pytest.mark.parametrize(
    "name,fn", [("ikmb", ikmb), ("pfa", pfa), ("idom", idom)]
)
def test_cpu_time(benchmark, name, fn):
    g, net = _instance(77)
    tree = benchmark(fn, g, net)
    assert tree.cost > 0


def test_cpu_time_report(benchmark):
    from repro.analysis import run_cpu_times

    times = benchmark.pedantic(
        run_cpu_times, kwargs={"trials": 5}, rounds=1, iterations=1
    )
    from repro.analysis.tables import render_table

    record(
        "cpu_times",
        render_table(
            ["algorithm", "ms per net (|V|=50, |E|=1000, |N|=5)"],
            [[k, round(v, 2)] for k, v in times.items()],
            title="CPU-time comparison (paper: several dozen ms on Sun/4)",
        ),
    )
    # all three run within interactive budgets on these sizes
    assert all(v < 1000 for v in times.values())
