"""Ablation — 3-D FPGAs (§6: "all of our methods generalize to
three-dimensional FPGAs [1, 2]").

Routes the same net set on a single-layer device and on two-layer
stacks with increasing via richness, measuring total wirelength: extra
layers add routing capacity, so congested nets shorten (the motivation
of the 3-D FPGA papers the conclusion cites).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import render_table
from repro.fpga import Architecture, Architecture3D, PlacedNet3D, route_nets_3d
from .conftest import full_scale, record


def _nets(count: int, cols: int, rows: int, pins_per_block: int, seed: int):
    rng = random.Random(seed)
    nets = []
    used = set()
    for i in range(count):
        while True:
            src = (0, rng.randrange(cols), rng.randrange(rows),
                   rng.randrange(pins_per_block))
            snk = (0, rng.randrange(cols), rng.randrange(rows),
                   rng.randrange(pins_per_block))
            if src != snk and src not in used and snk not in used:
                used.update((src, snk))
                break
        nets.append(PlacedNet3D(f"n{i}", src, (snk,)))
    return nets


def test_ablation_three_d(benchmark):
    base = Architecture(rows=5, cols=5, channel_width=2, pins_per_block=6)
    count = 16 if full_scale() else 10
    nets = _nets(count, base.cols, base.rows, base.pins_per_block, seed=9)

    def run():
        rows = []
        for layers, vias in ((1, 0), (2, 1), (2, 2)):
            arch = Architecture3D(
                base=base, layers=layers, vias_per_crossing=vias
            )
            wl = route_nets_3d(arch, nets)
            rows.append([layers, vias, round(sum(wl.values()), 2)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_three_d",
        render_table(
            ["layers", "vias/crossing", "total wirelength"],
            rows,
            title="Ablation: 3-D stacking relieves congestion "
            "(same nets, same base layer)",
        ),
    )
    single, two_sparse, two_dense = (r[2] for r in rows)
    # more capacity can only help (weakly), and usually strictly does
    assert two_sparse <= single + 1e-9
    assert two_dense <= two_sparse + 1e-9
