"""Ablation — congestion-aware edge re-weighting (DESIGN.md §6).

The paper updates edge weights after every routed net.  Disabling that
(α = 0) makes early nets hog central channels and costs channel width
and/or routing passes; this bench measures both configurations on the
same circuit.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import render_table
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc4000
from repro.router import RouterConfig, minimum_channel_width
from .conftest import circuit_fraction, full_scale, record


def test_ablation_congestion(benchmark):
    spec = circuit_spec("apex7")
    fraction = 0.5 if full_scale() else circuit_fraction(spec)
    circuit = synthesize_circuit(scaled_spec(spec, fraction), seed=7)

    def run():
        rows = []
        for label, cfg in (
            ("congestion on (alpha=2)", RouterConfig(algorithm="kmb")),
            (
                "congestion off",
                RouterConfig(algorithm="kmb", congestion=False),
            ),
        ):
            w, res = minimum_channel_width(circuit, xc4000, cfg)
            rows.append([label, w, res.passes_used,
                         round(res.total_wirelength, 1)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_congestion",
        render_table(
            ["configuration", "min W", "passes", "wirelength"],
            rows,
            title="Ablation: congestion re-weighting on/off",
        ),
    )
    on_w, off_w = rows[0][1], rows[1][1]
    on_effort = rows[0][1] * 100 + rows[0][2]
    off_effort = rows[1][1] * 100 + rows[1][2]
    # congestion awareness never hurts the achieved channel width, and
    # overall effort (width, then passes) should not degrade
    assert on_w <= off_w
    assert on_effort <= off_effort
