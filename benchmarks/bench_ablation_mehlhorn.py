"""Ablation — Mehlhorn's O(E + V log V) KMB alternative ([30]).

The Appendix notes KMB's complexity "can be reduced ... using an
alternative implementation [30]".  This bench verifies the speed/quality
tradeoff of that implementation on routing-scale graphs: near-identical
tree cost at a fraction of the shortest-path work.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis.tables import render_table
from repro.graph import grid_graph, random_net
from repro.steiner import kmb, mehlhorn
from .conftest import full_scale, record


def test_ablation_mehlhorn(benchmark):
    size = 30 if full_scale() else 20
    trials = 20 if full_scale() else 10
    rng = random.Random(17)
    g = grid_graph(size, size)
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0 + rng.random())
    nets = [random_net(g, 8, rng) for _ in range(trials)]

    def run():
        out = {}
        for name, fn in (("kmb", kmb), ("mehlhorn", mehlhorn)):
            start = time.perf_counter()
            cost = sum(fn(g, net).cost for net in nets)
            out[name] = (cost, (time.perf_counter() - start) / trials)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, round(cost, 2), round(sec * 1000, 1)]
        for name, (cost, sec) in out.items()
    ]
    record(
        "ablation_mehlhorn",
        render_table(
            ["heuristic", "total wirelength", "ms/net"],
            rows,
            title=f"Ablation: KMB vs Mehlhorn on a {size}x{size} grid",
        ),
    )
    kmb_cost, kmb_time = out["kmb"]
    meh_cost, meh_time = out["mehlhorn"]
    # same approximation guarantee; quality within a few percent
    assert meh_cost <= 1.08 * kmb_cost
    # and the single multi-source Dijkstra must be clearly faster than
    # KMB's per-terminal SSSPs on graphs of this size
    assert meh_time < kmb_time
