"""PathFinder negotiated routing vs the paper's arborescence routers.

Not a paper table — this bench quantifies the tentpole claim behind
``RouterConfig(mode="negotiate")`` on the seeded XC3000/XC4000
benchmark circuits:

* **channel width**: negotiation converges at a minimum channel width
  no worse than the PFA/IDOM one-net-at-a-time routers (contention is
  priced and negotiated away instead of excluded);
* **critical-path delay**: at the same channel width, timing-driven
  negotiation (``timing=True``) produces a measurably lower Elmore
  critical-path delay than wirelength-only negotiation, and no worse
  than the PFA baseline — the performance-driven pitch, reproduced.

Every converged routing is certified by the independent checker
(``verify_result(level="full")``) before its numbers are recorded.

Emits ``BENCH_pathfinder.json`` at the repository root (and a text
block under ``benchmarks/output/``).  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_pathfinder.py

or through pytest, where it asserts the headline inequalities.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis import max_sink_delay
from repro.engine import RoutingSession
from repro.fpga import (
    circuit_spec,
    scaled_spec,
    synthesize_circuit,
    xc3000,
    xc4000,
)
from repro.router import RouterConfig, minimum_channel_width
from repro.validate import verify_result

try:  # pytest provides conftest helpers; standalone runs inline them
    from .conftest import circuit_fraction, full_scale, record
except ImportError:  # pragma: no cover - script entry
    from conftest import circuit_fraction, full_scale, record

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_pathfinder.json"

#: (bench key, spec name, family builder, synth seed)
CIRCUITS = (
    ("busc_xc3000", "busc", xc3000, 3),
    ("alu4_xc4000", "alu4", xc4000, 5),
)

#: the circuit the CI smoke gates the delay inequalities on
TIMING_CIRCUIT = "busc_xc3000"


def critical_path_of(result, circuit):
    """Worst Elmore sink delay over the result's routed trees."""
    by_name = {n.name: n for n in circuit.nets}
    return max(
        max_sink_delay(r.tree(), by_name[r.name].to_graph_net())
        for r in result.routes
    )


def certified(result, circuit, arch, cfg):
    report = verify_result(result, circuit, arch, cfg, level="full")
    assert report.ok, [d.render() for d in report.errors]
    return result


def route_at(circuit, family, width, cfg):
    arch = family(circuit.rows, circuit.cols, width)
    with RoutingSession(arch, cfg) as session:
        result = session.route(circuit)
    return certified(result, circuit, arch, cfg), arch


def bench_circuit(key, spec_name, family, seed):
    spec = circuit_spec(spec_name)
    circuit = synthesize_circuit(
        scaled_spec(spec, circuit_fraction(spec)), seed=seed
    )

    widths = {}
    delays = {}
    for algo in ("pfa", "idom"):
        cfg = RouterConfig(algorithm=algo)
        w, result = minimum_channel_width(circuit, family, cfg)
        arch = family(circuit.rows, circuit.cols, w)
        certified(result, circuit, arch, cfg)
        widths[algo] = w
        delays[algo] = critical_path_of(result, circuit)

    nego_cfg = RouterConfig(mode="negotiate")
    w_nego, nego_min = minimum_channel_width(circuit, family, nego_cfg)
    arch = family(circuit.rows, circuit.cols, w_nego)
    certified(nego_min, circuit, arch, nego_cfg)
    widths["negotiate"] = w_nego

    # delay comparison at a common width: the widest of the minima, so
    # every router is evaluated with the resources it asked for.  The
    # stall guard gets extra headroom here: near-converged timing runs
    # can bounce at overuse 1-2 for more than the default 8 iterations
    # before settling, and this is a measurement, not a width search.
    w_eval = max(widths.values())
    wl_result, _ = route_at(
        circuit, family, w_eval,
        RouterConfig(mode="negotiate", negotiate_stall=16),
    )
    timing_result, _ = route_at(
        circuit, family, w_eval,
        RouterConfig(mode="negotiate", timing=True, negotiate_stall=16),
    )
    delays["negotiate"] = critical_path_of(wl_result, circuit)
    delays["negotiate_timing"] = critical_path_of(timing_result, circuit)

    return {
        "circuit": spec_name,
        "nets": len(circuit.nets),
        "rows": circuit.rows,
        "cols": circuit.cols,
        "seed": seed,
        "min_channel_width": widths,
        "eval_width": w_eval,
        "critical_path_delay": delays,
        "negotiate_iterations": {
            "wirelength": wl_result.passes_used,
            "timing": timing_result.passes_used,
        },
    }


def run_bench():
    doc = {
        "bench": "pathfinder",
        "full_scale": full_scale(),
        "timing_circuit": TIMING_CIRCUIT,
        "circuits": {},
    }
    lines = []
    for key, spec_name, family, seed in CIRCUITS:
        row = bench_circuit(key, spec_name, family, seed)
        doc["circuits"][key] = row
        w = row["min_channel_width"]
        d = row["critical_path_delay"]
        lines.append(
            f"{key}: W(pfa)={w['pfa']} W(idom)={w['idom']} "
            f"W(nego)={w['negotiate']} | delay@W={row['eval_width']}: "
            f"pfa={d['pfa']:.2f} nego={d['negotiate']:.2f} "
            f"nego+timing={d['negotiate_timing']:.2f}"
        )
    BENCH_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    record("pathfinder", "\n".join(lines))
    return doc


def check_headlines(doc):
    """The inequalities the CI smoke gates on."""
    for key, row in doc["circuits"].items():
        w = row["min_channel_width"]
        # negotiation never needs more tracks than the paper routers
        assert w["negotiate"] <= w["pfa"], (key, w)
        assert w["negotiate"] <= w["idom"], (key, w)
    d = doc["circuits"][doc["timing_circuit"]]["critical_path_delay"]
    # timing-driven negotiation beats the PFA baseline on delay and
    # measurably improves on wirelength-only negotiation
    assert d["negotiate_timing"] <= d["pfa"], d
    assert d["negotiate_timing"] < d["negotiate"], d


def test_pathfinder_bench():
    check_headlines(run_bench())


if __name__ == "__main__":  # pragma: no cover
    doc = run_bench()
    check_headlines(doc)
    for key, row in doc["circuits"].items():
        print(key, row["min_channel_width"], row["critical_path_delay"])
    print(f"wrote {BENCH_PATH}")
