"""Figure 4 — one four-pin net, four qualitatively different solutions.

Reconstructs the paper's showcase: an instance where KMB wastes
wirelength AND pathlength, IGMST (=IKMB) matches the exact Steiner
optimum, DJKA achieves optimal paths at high wirelength, and IDOM is
simultaneously optimal in wirelength *and* maximum pathlength.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_fig4
from .conftest import record


def test_fig4_example(benchmark):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    record("fig4_example", result.render() + f"\nnet: {result.net}")
    rows = dict((name, (wl, mp)) for name, wl, mp in result.rows)
    # KMB strictly suboptimal in wirelength; IKMB matches the optimum
    assert rows["KMB"][0] > result.opt_wirelength
    assert rows["IKMB (=IGMST)"][0] == pytest.approx(result.opt_wirelength)
    # the arborescence algorithms achieve optimal max pathlength
    assert rows["DJKA"][1] == pytest.approx(result.opt_max_path)
    assert rows["IDOM"][1] == pytest.approx(result.opt_max_path)
    # IDOM wins over KMB in wirelength AND pathlength simultaneously
    # (the paper highlights exactly this double win)
    assert rows["IDOM"][0] < rows["KMB"][0]
    assert rows["IDOM"][1] < rows["KMB"][1]
