"""Figure 16 — rendered routing solution for the busc circuit.

Routes the (synthetic) busc circuit with the IKMB router at its minimum
channel width, then emits the ASCII channel-occupancy map and an SVG
rendering under ``benchmarks/output/`` — our equivalent of the paper's
routed-busc plot.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.tables import render_table
from repro.fpga import circuit_spec, scaled_spec, synthesize_circuit, xc3000
from repro.router import RouterConfig, minimum_channel_width
from repro.viz import occupancy_histogram, render_occupancy, render_svg
from .conftest import OUTPUT_DIR, circuit_fraction, full_scale, record


def test_fig16_render_busc(benchmark):
    spec = circuit_spec("busc")
    fraction = 1.0 if full_scale() else circuit_fraction(spec)
    small = scaled_spec(spec, fraction)
    circuit = synthesize_circuit(small, seed=3)
    config = RouterConfig(algorithm="ikmb", steiner_candidate_depth=1)

    def run():
        return minimum_channel_width(circuit, xc3000, config)

    width, result = benchmark.pedantic(run, rounds=1, iterations=1)
    arch = xc3000(circuit.rows, circuit.cols, width)
    ascii_map = render_occupancy(result, arch)
    hist = occupancy_histogram(result, arch)
    hist_table = render_table(
        ["tracks used", "channel spans"],
        sorted(hist.items()),
        title="Span-occupancy histogram",
    )
    record("fig16_render", ascii_map + "\n\n" + hist_table)

    OUTPUT_DIR.mkdir(exist_ok=True)
    svg_path = OUTPUT_DIR / "fig16_busc.svg"
    svg_path.write_text(render_svg(result, arch), encoding="utf-8")
    print(f"[SVG written to {svg_path}]")

    assert result.complete
    assert svg_path.stat().st_size > 1000
    # no channel span may exceed the device's track count
    assert max(hist) <= width
