"""Figure 11 — PFA on the rectilinear staircase (ratio approaching 2).

The pointset of Rao et al. [32]: horizontal pitch 1, vertical pitch 2,
source at the origin.  PFA's folding produces combs whose cost drifts
above the staircase optimum as the instance grows; on grid graphs the
performance ratio of path folding is tight at 2.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_fig11
from repro.analysis.tables import render_table
from .conftest import full_scale, record


def test_fig11_pfa_worst_grid(benchmark):
    sink_counts = (2, 3, 4, 5, 6, 8, 10) if full_scale() else (2, 3, 4, 5, 6)
    rows = benchmark.pedantic(
        run_fig11, args=(sink_counts,), rounds=1, iterations=1
    )
    record(
        "fig11_pfa_worst_grid",
        render_table(
            ["sinks", "optimal*", "PFA", "ratio"],
            [[r["sinks"], r["optimal"], r["pfa"], r["ratio"]] for r in rows],
            title="Figure 11: PFA on the staircase "
            "(*exact optimum for <=6 sinks, chain upper bound beyond)",
        ),
    )
    # PFA never beats the optimum and the ratio never improves with size
    for r in rows:
        assert r["ratio"] >= 1.0 - 1e-9
    assert rows[-1]["ratio"] >= rows[0]["ratio"] - 1e-9
    # the construction stays a valid arborescence throughout: the cost
    # is bounded by the RSA guarantee of 2x optimal on grids
    for r in rows:
        assert r["ratio"] <= 2.0 + 1e-9
