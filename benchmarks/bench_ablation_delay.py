"""Ablation — Elmore-delay evaluation of the tree families (§1, [11,15]).

The paper motivates arborescences with signal delay and notes the
constructions "can be easily tuned to the specific parasitics of the
underlying technology".  This bench evaluates all five main algorithms
under the distributed-RC (Elmore) model: the pathlength-optimal trees
should win on delay even where they lose on wirelength — and the gap
should widen as sink loads grow.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import RCParameters, compare_delay
from repro.analysis.tables import render_table
from repro.arborescence import djka, idom, pfa
from repro.graph import ShortestPathCache, grid_graph, random_net
from repro.steiner import ikmb, kmb
from .conftest import full_scale, record

ALGOS = {"kmb": kmb, "ikmb": ikmb, "djka": djka, "pfa": pfa, "idom": idom}


def test_ablation_elmore_delay(benchmark):
    trials = 12 if full_scale() else 6
    rng = random.Random(31)
    g = grid_graph(14, 14)
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0 + rng.random())
    nets = [random_net(g, 6, rng) for _ in range(trials)]

    def run():
        totals = {name: [0.0, 0.0] for name in ALGOS}
        for net in nets:
            res = compare_delay(g, net, ALGOS, RCParameters(sink_load=2.0))
            for name, (wire, delay) in res.items():
                totals[name][0] += wire
                totals[name][1] += delay
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    base_wire, base_delay = totals["kmb"]
    rows = [
        [
            name,
            round(wire, 1),
            round((wire / base_wire - 1) * 100, 1),
            round(delay, 1),
            round((delay / base_delay - 1) * 100, 1),
        ]
        for name, (wire, delay) in totals.items()
    ]
    record(
        "ablation_delay",
        render_table(
            ["algorithm", "wirelength", "wire% vs KMB",
             "Elmore delay", "delay% vs KMB"],
            rows,
            title="Ablation: Elmore-delay evaluation "
            "(technology-sensitive view of Table 1)",
        ),
    )
    # the arborescence constructions must win on delay in aggregate
    assert totals["pfa"][1] < totals["kmb"][1]
    assert totals["idom"][1] < totals["kmb"][1]
    # and IDOM/PFA should also beat DJKA's delay (less capacitive load)
    assert totals["idom"][1] <= totals["djka"][1] + 1e-9
