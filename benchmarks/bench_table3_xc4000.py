"""Table 3 — minimum channel width, Xilinx 4000-series circuits.

The nine XC4000 circuits (alu4 … alu2) routed by our IKMB router and
the two-pin decomposition baseline (executable stand-in for SEGA/GBP),
printed next to the published SEGA/GBP/paper widths.

Expected shape: as in Table 2 — the multi-pin Steiner router needs the
smallest width on every circuit (the paper reports SEGA and GBP needing
26% / 17% more width on average).
"""

from __future__ import annotations

import pytest

from repro.analysis import run_width_table
from repro.fpga import XC4000_CIRCUITS, xc4000
from repro.router import RouterConfig
from .conftest import circuit_fraction, full_scale, record


def test_table3_xc4000(benchmark):
    specs = XC4000_CIRCUITS
    fraction = min(circuit_fraction(s) for s in specs)
    config = RouterConfig(
        steiner_candidate_depth=1 if not full_scale() else 2,
        max_steiner_nodes=4 if not full_scale() else 8,
    )
    result = benchmark.pedantic(
        run_width_table,
        kwargs={
            "specs": specs,
            "family_builder": xc4000,
            "algorithms": ("ikmb", "two_pin"),
            "fraction": fraction,
            "seed": 5,
            "config": config,
        },
        rounds=1,
        iterations=1,
    )
    record("table3_xc4000", result.render(baseline="ikmb"))
    totals = result.totals()
    for row in result.rows:
        assert row.widths["ikmb"] <= row.widths["two_pin"]
    assert totals["two_pin"] >= 1.15 * totals["ikmb"]
