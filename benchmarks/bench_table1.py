"""Table 1 — the eight tree algorithms on congested 20×20 grids.

Regenerates the paper's central algorithm comparison: average
wirelength (normalized to KMB) and average maximum pathlength
(normalized to optimal) for KMB/ZEL/IKMB/IZEL/DJKA/DOM/PFA/IDOM at
three congestion levels and two net sizes, printed side by side with
the published values.

Expected shape (paper §5): iterated variants beat their stand-alone
versions; IZEL best of the Steiner family; every arborescence at 0%
pathlength; IDOM ≤ PFA ≤ DOM ≤ DJKA in wirelength; PFA/IDOM beat KMB's
wirelength on uncongested graphs.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_table1
from .conftest import full_scale, record


def _trials() -> int:
    return 50 if full_scale() else 5


def test_table1(benchmark):
    result = benchmark.pedantic(
        run_table1,
        kwargs={"trials": _trials(), "seed": 1995},
        rounds=1,
        iterations=1,
    )
    text = result.render(published=True)
    record("table1", text)

    # Qualitative assertions the paper's Table 1 exhibits.
    cells = result.cells
    for level in ("none", "low", "medium"):
        for size in (5, 8):
            # all arborescence algorithms achieve optimal max pathlength
            for algo in ("DJKA", "DOM", "PFA", "IDOM"):
                assert cells[(level, size, algo)][1] == pytest.approx(0.0)
            # KMB is the wirelength reference
            assert cells[(level, size, "KMB")][0] == pytest.approx(0.0)
            # iterated constructions never lose to their base heuristic
            assert (
                cells[(level, size, "IKMB")][0]
                <= cells[(level, size, "KMB")][0] + 1e-9
            )
            assert (
                cells[(level, size, "IZEL")][0]
                <= cells[(level, size, "ZEL")][0] + 1e-9
            )
            # IDOM no worse than DOM, DOM no worse than DJKA (averages)
            assert (
                cells[(level, size, "IDOM")][0]
                <= cells[(level, size, "DOM")][0] + 1e-9
            )
    # uncongested: PFA/IDOM beat KMB in wirelength despite optimal paths
    assert cells[("none", 5, "PFA")][0] < 0.0
    assert cells[("none", 5, "IDOM")][0] < 0.0
