"""Figures 6 & 13 — greedy execution traces of IKMB and IDOM.

Replays the papers' step-by-step narratives (initial heuristic cost,
then one accepted Steiner point per round with strictly decreasing
cost) on deterministic gadgets where each construction accepts exactly
two Steiner points.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_trace_demo
from repro.analysis.tables import render_table
from .conftest import record


def test_fig6_fig13_traces(benchmark):
    traced_ikmb, traced_idom = benchmark.pedantic(
        run_trace_demo, rounds=1, iterations=1
    )
    blocks = []
    for label, traced in (
        ("Figure 6 (IKMB)", traced_ikmb),
        ("Figure 13 (IDOM)", traced_idom),
    ):
        trace = traced.trace
        rows = [["(initial)", None, trace.initial_cost]]
        for node, gain, cost in trace.steps:
            rows.append([repr(node), gain, cost])
        blocks.append(
            render_table(
                ["accepted Steiner point", "savings", "cost after"],
                rows,
                title=label,
            )
        )
    record("fig6_fig13_traces", "\n\n".join(blocks))

    for traced in (traced_ikmb, traced_idom):
        trace = traced.trace
        assert len(trace.steps) >= 2
        costs = [trace.initial_cost] + [c for _, _, c in trace.steps]
        assert all(a > b for a, b in zip(costs, costs[1:]))
        assert trace.final_cost == pytest.approx(traced.cost)
