"""Figure 3 — routed nets force detours beyond rectilinear distance.

Before any routing, shortest paths in the routing graph equal
rectilinear distance (stretch exactly 1.0); after committing nets
(removing their edges), sampled pairs show strictly larger stretch.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_fig3_detours
from .conftest import full_scale, record


def test_fig3_detours(benchmark):
    kwargs = (
        {"grid_size": 20, "prerouted": 45, "pairs": 120}
        if full_scale()
        else {"grid_size": 16, "prerouted": 25, "pairs": 40}
    )
    before, after = benchmark.pedantic(
        run_fig3_detours, kwargs=kwargs, rounds=1, iterations=1
    )
    record("fig3_detours", before.render() + "\n\n" + after.render())
    # Figure 3(a): pristine grid distances are exactly rectilinear
    assert before.mean_stretch == pytest.approx(1.0)
    assert before.max_stretch == pytest.approx(1.0)
    # Figure 3(b): after committing nets, detours appear
    assert after.mean_stretch > 1.0
    assert after.max_stretch > 1.05
