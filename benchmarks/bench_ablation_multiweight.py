"""Ablation — multi-weighted objective blending ([4, 7], §2).

The companion framework the paper builds on: edge weights as vectors
(wirelength, congestion, ...) scalarized with tunable coefficients.
This bench traces the wirelength/congestion tradeoff curve of KMB under
a λ sweep and checks its monotone structure — the "mutually competing
objectives ... simultaneously optimized" behaviour.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import render_table
from repro.graph import MultiWeightGraph, grid_graph, sweep_tradeoff
from repro.net import Net
from repro.steiner import kmb
from .conftest import full_scale, record


def test_ablation_multiweight(benchmark):
    rng = random.Random(23)
    size = 16 if full_scale() else 10
    base = grid_graph(size, size)
    mwg = MultiWeightGraph(objectives=("wirelength", "congestion"))
    for u, v, w in base.edges():
        # hot spot in the center: congestion grows toward the middle
        cx = (u[0] + v[0]) / 2 - size / 2
        cy = (u[1] + v[1]) / 2 - size / 2
        hot = max(0.0, 1.0 - (cx * cx + cy * cy) / (size * size / 4))
        mwg.add_edge(u, v, wirelength=w, congestion=3.0 * hot)
    pins = rng.sample(list(base.nodes), 5)
    net = Net(source=pins[0], sinks=tuple(pins[1:]))
    lambdas = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]

    def run():
        return sweep_tradeoff(
            mwg, net, kmb, "wirelength", "congestion", lambdas
        )

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_multiweight",
        render_table(
            ["lambda", "wirelength", "congestion"],
            [[lam, x, y] for lam, x, y in curve],
            title="Ablation: multi-weighted objective sweep "
            "(KMB under (1-l)*wire + l*congestion)",
        ),
    )
    wires = [x for _, x, _ in curve]
    congs = [y for _, _, y in curve]
    assert all(a <= b + 1e-9 for a, b in zip(wires, wires[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(congs, congs[1:]))
    # the sweep must actually trade: endpoints differ in congestion
    assert congs[0] > congs[-1]
