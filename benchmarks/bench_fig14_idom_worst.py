"""Figure 14 — the Set-Cover reduction behind IDOM's Ω(log N) bound.

Two measurements on the macro-box family:

* the *abstract* greedy dynamic the figure argues about — greedy set
  cover with adversarial tie-breaking selects Θ(log N) trap boxes while
  the optimal cover has size 2; and
* our *substrate-level* IDOM on the expanded macro graph, which escapes
  the bound (cost stays at the graph optimum of 1 unit edge) because
  shortest-path unions share wiring through unselected macros — see
  EXPERIMENTS.md for why the lower bound binds the paper's abstract
  pay-per-macro cost model rather than the expanded graph.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import run_fig14
from repro.analysis.tables import render_table
from .conftest import full_scale, record


def test_fig14_idom_worst(benchmark):
    levels = (1, 2, 3, 4, 5, 6, 7) if full_scale() else (1, 2, 3, 4, 5)
    rows = benchmark.pedantic(
        run_fig14, args=(levels,), rounds=1, iterations=1
    )
    record(
        "fig14_idom_worst",
        render_table(
            ["levels", "sinks", "greedy sets", "optimal sets",
             "greedy ratio", "IDOM graph cost"],
            [
                [r["levels"], r["sinks"], r["greedy_sets"],
                 r["optimal_sets"], r["greedy_ratio"],
                 r["idom_graph_cost"]]
                for r in rows
            ],
            title="Figure 14: set-cover family — abstract greedy pays "
            "Θ(log N); substrate IDOM escapes (see EXPERIMENTS.md)",
        ),
    )
    # the abstract greedy ratio grows logarithmically with N
    for r in rows:
        assert r["greedy_sets"] == r["levels"] + 1
        assert r["greedy_ratio"] == pytest.approx((r["levels"] + 1) / 2)
        # Θ(log N): sinks = 2^(levels+1)
        assert r["greedy_sets"] >= math.log2(r["sinks"])
    # substrate-level IDOM solves the expanded graph at the true optimum
    for r in rows:
        assert r["idom_graph_cost"] == pytest.approx(1.0)
