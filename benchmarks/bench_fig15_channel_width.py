"""Figure 15 — routing multi-pin nets as units reduces channel width.

The paper's schematic shows a two-track channel collapsing to one track
when a multi-pin net is Steiner-routed instead of decomposed.  The
bench measures the same phenomenon end-to-end: minimum channel width of
the IKMB router vs the two-pin decomposition on a small circuit.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_fig15
from repro.analysis.tables import render_table
from .conftest import full_scale, record


def test_fig15_channel_width(benchmark):
    fraction = 0.3 if full_scale() else 0.2
    result = benchmark.pedantic(
        run_fig15, kwargs={"fraction": fraction}, rounds=1, iterations=1
    )
    record(
        "fig15_channel_width",
        render_table(
            ["circuit", "W (Steiner)", "W (two-pin)", "ratio"],
            [[result["circuit"], result["steiner_width"],
              result["two_pin_width"], result["ratio"]]],
            title="Figure 15: Steiner routing vs decomposition, "
            "minimum channel width",
        ),
    )
    assert result["steiner_width"] < result["two_pin_width"]
