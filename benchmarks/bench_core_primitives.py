"""Microbenchmarks of the substrate primitives.

Not a paper table — these pytest-benchmark timings track the costs that
dominate every experiment (Dijkstra, metric closure + MST, KMB, DOM) so
performance regressions in the substrate are visible independently of
the end-to-end benches.
"""

from __future__ import annotations

import random

import pytest

from repro.arborescence import dom, pfa
from repro.graph import (
    DistanceGraph,
    ShortestPathCache,
    dijkstra,
    grid_graph,
    prim_mst,
    random_connected_graph,
    random_net,
)
from repro.steiner import kmb


@pytest.fixture(scope="module")
def grid():
    return grid_graph(20, 20)


@pytest.fixture(scope="module")
def dense_random():
    return random_connected_graph(200, 2000, random.Random(5))


def test_bench_dijkstra_grid(benchmark, grid):
    dist, _ = benchmark(dijkstra, grid, (0, 0))
    assert len(dist) == 400


def test_bench_dijkstra_random(benchmark, dense_random):
    dist, _ = benchmark(dijkstra, dense_random, 0)
    assert len(dist) == 200


def test_bench_prim_mst(benchmark, dense_random):
    edges, cost = benchmark(prim_mst, dense_random)
    assert len(edges) == 199


def test_bench_metric_closure(benchmark, grid):
    terminals = [(0, 0), (19, 19), (0, 19), (19, 0), (10, 10)]

    def run():
        cache = ShortestPathCache(grid)
        return DistanceGraph(cache, terminals)

    closure = benchmark(run)
    assert closure.dist((0, 0), (19, 19)) == 38


def test_bench_kmb(benchmark, grid):
    rng = random.Random(1)
    net = random_net(grid, 6, rng)
    tree = benchmark(kmb, grid, net)
    assert tree.cost > 0


def test_bench_dom(benchmark, grid):
    rng = random.Random(2)
    net = random_net(grid, 6, rng)
    tree = benchmark(dom, grid, net)
    assert tree.cost > 0


def test_bench_pfa(benchmark, grid):
    rng = random.Random(3)
    net = random_net(grid, 6, rng)
    tree = benchmark(pfa, grid, net)
    assert tree.cost > 0
