"""Table 4 — minimum channel width of IKMB vs PFA vs IDOM.

Recall the paper's point: PFA and IDOM optimize maximum pathlength
*first*, so they need somewhat more channel width than IKMB — but (per
the published numbers) still no more than the wirelength-only SEGA/GBP
routers.  This bench measures the three algorithms' minimum widths on
the XC4000 circuits.

Expected shape: W(ikmb) ≤ W(pfa) and W(ikmb) ≤ W(idom) per circuit,
with the arborescence totals within ~25% of IKMB's (paper: 17% and 13%).
"""

from __future__ import annotations

import pytest

from repro.analysis import run_width_table
from repro.fpga import XC4000_CIRCUITS, xc4000
from repro.router import RouterConfig
from .conftest import circuit_fraction, full_scale, record


def _specs():
    # Table 4's full circuit list at REPRO_FULL; a 4-circuit spread of
    # sizes by default (IDOM width searches are the suite's slowest).
    if full_scale():
        return XC4000_CIRCUITS
    keep = {"apex7", "term1", "9symml", "alu2"}
    return tuple(s for s in XC4000_CIRCUITS if s.name in keep)


def test_table4_width_by_algorithm(benchmark):
    specs = _specs()
    fraction = min(circuit_fraction(s, target_nets=20) for s in specs)
    config = RouterConfig(steiner_candidate_depth=1, max_steiner_nodes=4)
    result = benchmark.pedantic(
        run_width_table,
        kwargs={
            "specs": specs,
            "family_builder": xc4000,
            "algorithms": ("ikmb", "pfa", "idom"),
            "fraction": fraction,
            "seed": 5,
            "config": config,
        },
        rounds=1,
        iterations=1,
    )
    record("table4_width_by_algorithm", result.render(baseline="ikmb"))
    totals = result.totals()
    # Table 4's shape: IKMB (pure wirelength) needs no more width than
    # the pathlength-constrained arborescence algorithms.  At scaled
    # widths (W≈3) a single quantized track flips a ratio, so allow one
    # track of slack per run in total (the paper's full-size ratios are
    # 1.00 / 1.17 / 1.13).
    assert totals["ikmb"] <= totals["pfa"] + 1
    assert totals["ikmb"] <= totals["idom"] + 1
