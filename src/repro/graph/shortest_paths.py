"""Single-source shortest paths (Dijkstra) and a per-source memo cache.

Every algorithm in the paper is built on shortest paths: KMB and ZEL use
the metric closure over the net, the dominance relation of Section 4 is
*defined* through ``minpath`` values, and DJKA is literally a pruned
Dijkstra tree.  The paper stresses (Sections 3 and 4) that the iterated
constructions only become practical once shortest-path computations are
"factored out" and shared; :class:`ShortestPathCache` is that shared
store, keyed by ``(source, graph.version)`` so any graph mutation
transparently invalidates stale entries.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..errors import DisconnectedError, GraphError
from .core import Graph

Node = Hashable
INF = float("inf")


def dijkstra(
    graph: Graph,
    source: Node,
    targets: Optional[Iterable[Node]] = None,
    cutoff: Optional[float] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Run Dijkstra's algorithm [16] from ``source``.

    Parameters
    ----------
    graph:
        The weighted graph.
    source:
        Start node.
    targets:
        If given, the search stops as soon as every target has been
        settled (early exit) — the router uses this when it only needs
        pin-to-pin distances on a large routing graph.
    cutoff:
        If given, nodes farther than ``cutoff`` are not settled.  Used by
        neighborhood-restricted Steiner candidate generation.

    Returns
    -------
    (dist, pred):
        ``dist[v]`` is the shortest-path cost from ``source`` to each
        settled node ``v``; ``pred[v]`` is v's predecessor on one such
        shortest path (``pred[source]`` is absent).

    Notes
    -----
    Ties between equal-cost paths are broken by heap insertion order,
    which is deterministic given a deterministic graph construction
    order; all generators in :mod:`repro.graph.generators` are seeded.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining.discard(source)

    dist: Dict[Node, float] = {}
    pred: Dict[Node, Node] = {}
    seen = {source: 0.0}
    counter = 0
    heap: List[Tuple[float, int, Node]] = [(0.0, counter, source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in graph.neighbor_items(u):
            if v in dist:
                continue
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            if v not in seen or nd < seen[v]:
                seen[v] = nd
                pred[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    return dist, pred


def reconstruct_path(
    pred: Dict[Node, Node], source: Node, target: Node
) -> List[Node]:
    """Rebuild the node sequence ``source .. target`` from a pred map."""
    if target == source:
        return [source]
    if target not in pred:
        raise DisconnectedError(source, target)
    path = [target]
    node = target
    while node != source:
        node = pred[node]
        path.append(node)
    path.reverse()
    return path


def shortest_path(
    graph: Graph, source: Node, target: Node
) -> Tuple[List[Node], float]:
    """Convenience wrapper: one shortest path and its cost."""
    dist, pred = dijkstra(graph, source, targets=[target])
    if target not in dist:
        raise DisconnectedError(source, target)
    return reconstruct_path(pred, source, target), dist[target]


def path_cost(graph: Graph, path: List[Node]) -> float:
    """Total weight of consecutive edges along ``path``."""
    return sum(graph.weight(u, v) for u, v in zip(path, path[1:]))


class ShortestPathCache:
    """Memoized single-source shortest-path trees for one graph.

    The cache stores, per source node, the full ``(dist, pred)`` result of
    an untruncated Dijkstra run.  Entries are invalidated automatically
    when :attr:`Graph.version` changes, so the router can mutate the graph
    between nets and keep using the same cache object.

    This is the concrete realization of the paper's complexity reductions:
    IGMST evaluates ``ΔH`` for every candidate node, and IDOM calls DOM
    ``O(|V|·|N|)`` times — both become tractable because every call reuses
    the same terminal-rooted shortest-path trees.
    """

    def __init__(self, graph: Graph):
        self._graph = graph
        self._store: Dict[Node, Tuple[Dict[Node, float], Dict[Node, Node]]] = {}
        self._version = graph.version

    @property
    def graph(self) -> Graph:
        return self._graph

    def _check_version(self) -> None:
        if self._graph.version != self._version:
            self._store.clear()
            self._version = self._graph.version

    def sssp(self, source: Node) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        """Full shortest-path tree from ``source`` (memoized)."""
        self._check_version()
        entry = self._store.get(source)
        if entry is None:
            entry = dijkstra(self._graph, source)
            self._store[source] = entry
        return entry

    def dist(self, source: Node, target: Node) -> float:
        """``minpath_G(source, target)``; INF if unreachable.

        Answered from whichever endpoint is already cached (the graph is
        undirected so ``d(u,v) == d(v,u)``), preferring ``source``.
        """
        self._check_version()
        if source in self._store:
            return self._store[source][0].get(target, INF)
        if target in self._store:
            return self._store[target][0].get(source, INF)
        return self.sssp(source)[0].get(target, INF)

    def path(self, source: Node, target: Node) -> List[Node]:
        """One shortest path ``source .. target`` as a node list."""
        self._check_version()
        if source in self._store:
            dist, pred = self._store[source]
            if target not in dist:
                raise DisconnectedError(source, target)
            return reconstruct_path(pred, source, target)
        dist, pred = self.sssp(target)
        if source not in dist:
            raise DisconnectedError(source, target)
        path = reconstruct_path(pred, target, source)
        path.reverse()
        return path

    def warm(self, sources: Iterable[Node]) -> None:
        """Pre-compute SSSPs from every node in ``sources``."""
        for s in sources:
            self.sssp(s)

    def cached_sources(self) -> List[Node]:
        self._check_version()
        return list(self._store)

    def __len__(self) -> int:
        self._check_version()
        return len(self._store)
