"""Single-source shortest paths (Dijkstra) and a per-source memo cache.

Every algorithm in the paper is built on shortest paths: KMB and ZEL use
the metric closure over the net, the dominance relation of Section 4 is
*defined* through ``minpath`` values, and DJKA is literally a pruned
Dijkstra tree.  The paper stresses (Sections 3 and 4) that the iterated
constructions only become practical once shortest-path computations are
"factored out" and shared; :class:`ShortestPathCache` is that shared
store, keyed by ``(source, graph.version)`` so any graph mutation
transparently invalidates stale entries.

Instrumentation.  The routing engine (:mod:`repro.engine`) accounts for
every Dijkstra run: install a :class:`DijkstraCounters` with
:func:`set_dijkstra_counters` and each call records its heap pops and
edge relaxations there.  The cache keeps its own hit/miss/invalidation
tallies (:meth:`ShortestPathCache.stats`).

Partial runs.  ``targets``/``cutoff``-limited searches settle only a
subset of the graph, so their ``dist`` maps are *not* valid single-source
results: a node absent from a partial map may still be reachable.  The
cache therefore stores limited runs under a distinct key that includes
the limits (:meth:`ShortestPathCache.sssp_limited`) and never lets them
satisfy full-query lookups; the reverse direction — answering a limited
query from a cached *full* run — is always sound and is done eagerly.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..errors import DisconnectedError, EngineTimeoutError, GraphError
from .core import Graph, edge_key

Node = Hashable
INF = float("inf")

#: cache entry: (dist, pred) of one Dijkstra run
Entry = Tuple[Dict[Node, float], Dict[Node, Node]]


class DijkstraCounters:
    """Aggregated operation counts across Dijkstra runs.

    ``calls`` is the number of search-kernel invocations (plain
    Dijkstra, A*, or bidirectional), ``heap_pops`` counts every pop
    (including stale entries), ``relaxations`` counts successful edge
    relaxations (heap pushes), and ``pruned`` counts heap entries a
    kernel abandoned unpopped at termination — the direct measure of
    how much frontier an early exit or goal-directed bound cut off.
    ``record`` takes one lock per *call*, not per operation, so
    multi-threaded engine workers can share a single instance.
    """

    __slots__ = ("calls", "heap_pops", "relaxations", "pruned", "_lock")

    def __init__(self) -> None:
        self.calls = 0
        self.heap_pops = 0
        self.relaxations = 0
        self.pruned = 0
        self._lock = threading.Lock()

    def record(
        self, heap_pops: int, relaxations: int, pruned: int = 0
    ) -> None:
        with self._lock:
            self.calls += 1
            self.heap_pops += heap_pops
            self.relaxations += relaxations
            self.pruned += pruned

    def merge(self, snapshot: Dict[str, int]) -> None:
        """Fold a worker's :meth:`snapshot` into this instance."""
        with self._lock:
            self.calls += snapshot.get("calls", 0)
            self.heap_pops += snapshot.get("heap_pops", 0)
            self.relaxations += snapshot.get("relaxations", 0)
            self.pruned += snapshot.get("pruned", 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "calls": self.calls,
                "heap_pops": self.heap_pops,
                "relaxations": self.relaxations,
                "pruned": self.pruned,
            }

    def reset(self) -> None:
        with self._lock:
            self.calls = 0
            self.heap_pops = 0
            self.relaxations = 0
            self.pruned = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DijkstraCounters(calls={self.calls}, "
            f"heap_pops={self.heap_pops}, "
            f"relaxations={self.relaxations}, pruned={self.pruned})"
        )


class DijkstraBudget:
    """Cooperative abort bound for Dijkstra runs.

    The engine installs one of these (via :func:`set_dijkstra_budget`)
    around each net's routing when ``RouterConfig.route_timeout_s`` or
    ``max_relaxations`` is configured.  The search checks the budget on
    every heap pop: a relaxation overrun fires exactly; the wall-clock
    deadline is polled every 64 pops (plus once at the first pop), so a
    hung search is interrupted within a bounded amount of extra work
    instead of stalling the pass forever.
    """

    __slots__ = ("max_relaxations", "deadline")

    def __init__(
        self,
        max_relaxations: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.max_relaxations = max_relaxations
        self.deadline = deadline

    def check(
        self,
        heap_pops: int,
        relaxations: int,
        backend: str = "dijkstra",
    ) -> None:
        """Raise :class:`EngineTimeoutError` when the budget is blown.

        ``backend`` names the search kernel doing the work ("dijkstra",
        "astar", "bidir"); it is carried in the error's ``partial``
        stats so timeout reports identify which kernel was active.
        """
        if (
            self.max_relaxations is not None
            and relaxations > self.max_relaxations
        ):
            raise EngineTimeoutError(
                f"Dijkstra relaxation budget exhausted "
                f"({relaxations} > {self.max_relaxations})",
                kind="relaxations",
                budget=self.max_relaxations,
                elapsed=relaxations,
                partial={
                    "backend": backend,
                    "heap_pops": heap_pops,
                    "relaxations": relaxations,
                },
            )
        if self.deadline is not None and heap_pops % 64 == 1:
            now = time.perf_counter()
            if now > self.deadline:
                raise EngineTimeoutError(
                    "per-net routing deadline exceeded mid-search",
                    kind="net",
                    elapsed=now - self.deadline,
                    partial={
                        "backend": backend,
                        "heap_pops": heap_pops,
                        "relaxations": relaxations,
                    },
                )


#: the currently-installed budget (None = unbounded, zero overhead)
_BUDGET: Optional[DijkstraBudget] = None


def set_dijkstra_budget(
    budget: Optional[DijkstraBudget],
) -> Optional[DijkstraBudget]:
    """Install ``budget`` as the global Dijkstra execution bound.

    Returns the previously installed budget so callers can restore it
    (the engine brackets each net's routing this way).  ``None``
    removes any bound.
    """
    global _BUDGET
    previous = _BUDGET
    _BUDGET = budget
    return previous


def get_dijkstra_budget() -> Optional[DijkstraBudget]:
    """The currently-installed :class:`DijkstraBudget`, if any."""
    return _BUDGET


#: the currently-installed counters (None = no accounting overhead)
_COUNTERS: Optional[DijkstraCounters] = None


def set_dijkstra_counters(
    counters: Optional[DijkstraCounters],
) -> Optional[DijkstraCounters]:
    """Install ``counters`` as the global Dijkstra accounting sink.

    Returns the previously installed instance so callers can restore it
    (the engine does this around each :class:`RoutingSession` run).
    Passing ``None`` disables accounting.
    """
    global _COUNTERS
    previous = _COUNTERS
    _COUNTERS = counters
    return previous


def get_dijkstra_counters() -> Optional[DijkstraCounters]:
    """The currently-installed :class:`DijkstraCounters`, if any."""
    return _COUNTERS


def dijkstra(
    graph: Graph,
    source: Node,
    targets: Optional[Iterable[Node]] = None,
    cutoff: Optional[float] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Run Dijkstra's algorithm [16] from ``source``.

    Parameters
    ----------
    graph:
        The weighted graph.
    source:
        Start node.
    targets:
        If given, the search stops as soon as every target has been
        settled (early exit) — the router uses this when it only needs
        pin-to-pin distances on a large routing graph.
    cutoff:
        If given, nodes farther than ``cutoff`` are not settled.  Used by
        neighborhood-restricted Steiner candidate generation.

    Returns
    -------
    (dist, pred):
        ``dist[v]`` is the shortest-path cost from ``source`` to each
        settled node ``v``; ``pred[v]`` is v's predecessor on one such
        shortest path (``pred[source]`` is absent).

    Notes
    -----
    Ties between equal-cost paths are broken by heap insertion order,
    which is deterministic given a deterministic graph construction
    order; all generators in :mod:`repro.graph.generators` are seeded.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining.discard(source)

    dist: Dict[Node, float] = {}
    pred: Dict[Node, Node] = {}
    seen = {source: 0.0}
    counter = 0
    pops = 0
    budget = _BUDGET
    heap: List[Tuple[float, int, Node]] = [(0.0, counter, source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        pops += 1
        if budget is not None:
            budget.check(pops, counter, backend="dijkstra")
        if u in dist:
            continue
        dist[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in graph.neighbor_items(u):
            if v in dist:
                continue
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            if v not in seen or nd < seen[v]:
                seen[v] = nd
                pred[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    counters = _COUNTERS
    if counters is not None:
        # leftover heap entries were never popped: frontier pruned by
        # an early exit / cutoff (plus stale duplicates on full runs)
        counters.record(pops, counter, len(heap))
    return dist, pred


def reconstruct_path(
    pred: Dict[Node, Node], source: Node, target: Node
) -> List[Node]:
    """Rebuild the node sequence ``source .. target`` from a pred map."""
    if target == source:
        return [source]
    if target not in pred:
        raise DisconnectedError(source, target)
    path = [target]
    node = target
    while node != source:
        node = pred[node]
        path.append(node)
    path.reverse()
    return path


def shortest_path(
    graph: Graph, source: Node, target: Node
) -> Tuple[List[Node], float]:
    """Convenience wrapper: one shortest path and its cost."""
    dist, pred = dijkstra(graph, source, targets=[target])
    if target not in dist:
        raise DisconnectedError(source, target)
    return reconstruct_path(pred, source, target), dist[target]


def path_cost(graph: Graph, path: List[Node]) -> float:
    """Total weight of consecutive edges along ``path``."""
    return sum(graph.weight(u, v) for u, v in zip(path, path[1:]))


class ShortestPathCache:
    """Memoized single-source shortest-path trees for one graph.

    The cache stores, per source node, the full ``(dist, pred)`` result of
    an untruncated Dijkstra run.  Entries are invalidated automatically
    when :attr:`Graph.version` changes, so the router can mutate the graph
    between nets and keep using the same cache object.

    This is the concrete realization of the paper's complexity reductions:
    IGMST evaluates ``ΔH`` for every candidate node, and IDOM calls DOM
    ``O(|V|·|N|)`` times — both become tractable because every call reuses
    the same terminal-rooted shortest-path trees.

    Limited runs (``targets``/``cutoff``) are second-class citizens: they
    live in a separate store keyed by their limits and can never answer a
    full query (see :meth:`sssp_limited`).

    Search policies.  Constructed with a
    :class:`~repro.graph.search.SearchPolicy`, the cache answers
    point-to-point queries with goal-directed kernels instead of full
    SSSPs:

    * :meth:`dist` consults a pair-distance store and computes misses
      with the policy's kernel (A*/bidirectional).  Pair values are
      exact, hence backend-independent — but kernel ``(dist, pred)``
      maps are *never* stored where plain-Dijkstra results live: the
      partial-store key carries the kernel name, and A*/bidirectional
      results are reduced to bare floats.  An endpoint that keeps
      missing (``_PAIR_PROMOTE`` kernel computes) is promoted to a full
      SSSP so closure-style workloads never do worse than the plain
      backend.
    * :meth:`path` becomes *canonically source-rooted*: the path is
      always reconstructed from a (possibly early-exit) plain Dijkstra
      run rooted at the query's source, independent of what happens to
      be cached.  An early-exit run's settled prefix is bit-identical
      to the full run, so every search backend returns the identical
      node sequence — this is what makes ``RouterConfig.search``
      results indistinguishable across backends.

    Without a policy the cache behaves exactly as it always has (plain
    kernels, full-SSSP fallbacks).

    Accounting: ``hits``/``misses`` count lookups answered from /
    absent from the store; ``invalidations`` counts version-change (or
    :meth:`rebind`) events that actually dropped entries, and
    ``entries_invalidated`` the total number of entries dropped.
    """

    #: pair-query misses per endpoint before promoting it to a full SSSP
    _PAIR_PROMOTE = 8

    def __init__(self, graph: Graph, search=None):
        self._graph = graph
        self._store: Dict[Node, Entry] = {}
        #: producing kernel ("dijkstra" = dict, "flat" = CSR) per full
        #: entry — a full SSSP computed by one graph backend is never
        #: served where the other backend's results are expected (the
        #: same defense the partial keys carry, see _partial_key)
        self._store_kernel: Dict[Node, str] = {}
        #: limited runs, keyed (source, frozenset(targets)|None, cutoff,
        #: kernel) — the kernel component guarantees a goal-directed
        #: run can never be served where a plain-Dijkstra result is
        #: expected
        self._partial_store: Dict[Tuple, Entry] = {}
        #: plain-Dijkstra partial keys per source, for coverage lookups
        self._partial_index: Dict[Node, List[Tuple]] = {}
        #: exact point-to-point distances, keyed (policy key, edge key)
        self._pair_store: Dict[Tuple, float] = {}
        #: kernel computes per endpoint (drives full-SSSP promotion)
        self._pair_misses: Dict[Node, int] = {}
        self._search = search
        self._version = graph.version
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.entries_invalidated = 0

    @property
    def search(self):
        """The attached :class:`SearchPolicy` (None = plain behaviour)."""
        return self._search

    @property
    def graph(self) -> Graph:
        return self._graph

    def _drop_all(self) -> int:
        dropped = (
            len(self._store)
            + len(self._partial_store)
            + len(self._pair_store)
        )
        self._store.clear()
        self._store_kernel.clear()
        self._partial_store.clear()
        self._partial_index.clear()
        self._pair_store.clear()
        self._pair_misses.clear()
        return dropped

    def _check_version(self) -> None:
        if self._graph.version != self._version:
            dropped = self._drop_all()
            if dropped:
                self.invalidations += 1
                self.entries_invalidated += dropped
            self._version = self._graph.version

    def rebind(self, graph: Graph) -> None:
        """Point the cache at a replacement graph, dropping all entries.

        The engine calls this when the routing-resource graph is rebuilt
        between passes (:meth:`RoutingResourceGraph.reset` swaps in a
        fresh :class:`Graph` object, so version comparison alone cannot
        detect the change).
        """
        dropped = self._drop_all()
        if dropped:
            self.invalidations += 1
            self.entries_invalidated += dropped
        self._graph = graph
        self._version = graph.version

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries_invalidated": self.entries_invalidated,
            "entries": len(self._store),
            "partial_entries": len(self._partial_store),
            "pair_entries": len(self._pair_store),
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.entries_invalidated = 0

    def _plain_kernel(self) -> str:
        """The active plain-Dijkstra kernel: ``"dijkstra"`` (dict
        adjacency) or ``"flat"`` (CSR view), per the attached policy's
        graph backend.  Both produce bit-identical results; the tag
        exists so cached entries are never served across a backend
        flip (e.g. a policy swap after :meth:`rebind`)."""
        policy = self._search
        if policy is None:
            return "dijkstra"
        return (
            "flat"
            if policy.graph_kernel(self._graph) == "flat"
            else "dijkstra"
        )

    def _plain_run(
        self,
        source: Node,
        targets: Optional[Iterable[Node]] = None,
        cutoff: Optional[float] = None,
    ) -> Entry:
        """One canonical (possibly limited) run via the active kernel."""
        if self._plain_kernel() == "flat":
            return self._graph.freeze().sssp(
                source, targets=targets, cutoff=cutoff
            )
        return dijkstra(
            self._graph, source, targets=targets, cutoff=cutoff
        )

    def _full_entry(self, source: Node) -> Optional[Entry]:
        """The stored full run for ``source`` — only if its producing
        kernel matches the active one; a mismatched entry is dropped
        and recomputed rather than served."""
        entry = self._store.get(source)
        if entry is None:
            return None
        if self._store_kernel.get(source) != self._plain_kernel():
            del self._store[source]
            self._store_kernel.pop(source, None)
            return None
        return entry

    def sssp(self, source: Node) -> Entry:
        """Full shortest-path tree from ``source`` (memoized).

        Only complete, untruncated runs are stored under the plain
        ``source`` key — a partial entry for the same source (from
        :meth:`sssp_limited`) is never promoted to answer this query.
        Each stored entry carries the kernel that produced it.
        """
        self._check_version()
        entry = self._full_entry(source)
        if entry is None:
            self.misses += 1
            entry = self._plain_run(source)
            self._store[source] = entry
            self._store_kernel[source] = self._plain_kernel()
        else:
            self.hits += 1
        return entry

    @staticmethod
    def _partial_key(
        source: Node,
        targets: Optional[Iterable[Node]],
        cutoff: Optional[float],
        kernel: str = "dijkstra",
    ) -> Tuple:
        targets_key = None if targets is None else frozenset(targets)
        return (source, targets_key, cutoff, kernel)

    def _index_partial(self, source: Node, key: Tuple) -> None:
        """Register a plain-Dijkstra partial entry for coverage lookups."""
        self._partial_index.setdefault(source, []).append(key)

    def _partial_covering(
        self, source: Node, target: Node
    ) -> Optional[Entry]:
        """A plain-Dijkstra partial run from ``source`` that settled
        ``target``, if one is stored.

        A node *present* in a limited run's ``dist`` map was settled,
        so its distance and predecessor chain are bit-identical to the
        full run's (absence still proves nothing).
        """
        plain = self._plain_kernel()
        for key in self._partial_index.get(source, ()):
            if key[3] != plain:
                continue
            entry = self._partial_store.get(key)
            if entry is not None and target in entry[0]:
                return entry
        return None

    def sssp_limited(
        self,
        source: Node,
        targets: Optional[Iterable[Node]] = None,
        cutoff: Optional[float] = None,
    ) -> Entry:
        """A ``targets``/``cutoff``-limited run, memoized under its limits.

        A cached *full* run for ``source`` answers any limited query (a
        complete ``dist`` map dominates every truncation of itself), but
        a limited result is stored only under its ``(source, targets,
        cutoff)`` key: its ``dist`` map is incomplete, and letting it
        satisfy a later full query would silently report reachable nodes
        as unreachable.
        """
        if targets is None and cutoff is None:
            return self.sssp(source)
        self._check_version()
        full = self._full_entry(source)
        if full is not None:
            self.hits += 1
            return full
        key = self._partial_key(
            source, targets, cutoff, self._plain_kernel()
        )
        entry = self._partial_store.get(key)
        if entry is None:
            self.misses += 1
            entry = self._plain_run(source, targets=targets, cutoff=cutoff)
            self._partial_store[key] = entry
            self._index_partial(source, key)
        else:
            self.hits += 1
        return entry

    def dist(self, source: Node, target: Node) -> float:
        """``minpath_G(source, target)``; INF if unreachable.

        Answered from whichever endpoint is already cached (the graph is
        undirected so ``d(u,v) == d(v,u)``), preferring ``source``.
        Without a search policy (or under the plain backend) a miss
        falls back to a full SSSP from ``source`` — the historical
        behaviour.  With a goal-directed policy, a miss consults the
        pair-distance store and settled partial runs before running the
        policy's kernel; all of these yield the exact distance, so the
        answer is independent of the backend.
        """
        self._check_version()
        entry = self._full_entry(source)
        if entry is not None:
            self.hits += 1
            return entry[0].get(target, INF)
        entry = self._full_entry(target)
        if entry is not None:
            self.hits += 1
            return entry[0].get(source, INF)
        policy = self._search
        if policy is None or policy.backend == "dijkstra":
            return self.sssp(source)[0].get(target, INF)
        pair_key = (policy.key(), edge_key(source, target))
        d = self._pair_store.get(pair_key)
        if d is not None:
            self.hits += 1
            return d
        entry = self._partial_covering(source, target)
        if entry is not None:
            self.hits += 1
            d = entry[0][target]
            self._pair_store[pair_key] = d
            return d
        entry = self._partial_covering(target, source)
        if entry is not None:
            self.hits += 1
            d = entry[0][source]
            self._pair_store[pair_key] = d
            return d
        # an endpoint that keeps triggering kernel runs is cheaper to
        # warm once: promote it to a full (plain) SSSP, after which the
        # whole closure around it answers from the store
        nu = self._pair_misses.get(source, 0) + 1
        self._pair_misses[source] = nu
        nv = self._pair_misses.get(target, 0) + 1
        self._pair_misses[target] = nv
        if nu >= self._PAIR_PROMOTE:
            d = self.sssp(source)[0].get(target, INF)
        elif nv >= self._PAIR_PROMOTE:
            d = self.sssp(target)[0].get(source, INF)
        else:
            self.misses += 1
            d = policy.pair_distance(self._graph, source, target)
        self._pair_store[pair_key] = d
        return d

    def path(self, source: Node, target: Node) -> List[Node]:
        """One shortest path ``source .. target`` as a node list.

        With a search policy attached the result is *canonical*: always
        reconstructed from a source-rooted plain-Dijkstra run (cached
        full tree, covering partial run, or a fresh early-exit run), so
        the node sequence is the same under every search backend and
        independent of cache history.  Without a policy, the historical
        fallback reconstructs from a target-rooted full run instead.
        """
        self._check_version()
        full = self._full_entry(source)
        if full is not None:
            self.hits += 1
            dist, pred = full
            if target not in dist:
                raise DisconnectedError(source, target)
            return reconstruct_path(pred, source, target)
        if self._search is None:
            dist, pred = self.sssp(target)
            if source not in dist:
                raise DisconnectedError(source, target)
            path = reconstruct_path(pred, target, source)
            path.reverse()
            return path
        entry = self._partial_covering(source, target)
        if entry is None:
            self.misses += 1
            entry = self._plain_run(source, targets=[target])
            key = self._partial_key(
                source, [target], None, self._plain_kernel()
            )
            self._partial_store[key] = entry
            self._index_partial(source, key)
        else:
            self.hits += 1
        dist, pred = entry
        if target not in dist:
            raise DisconnectedError(source, target)
        return reconstruct_path(pred, source, target)

    def warm(self, sources: Iterable[Node]) -> None:
        """Pre-compute SSSPs from every node in ``sources``."""
        for s in sources:
            self.sssp(s)

    def cached_sources(self) -> List[Node]:
        self._check_version()
        return list(self._store)

    def __len__(self) -> int:
        self._check_version()
        return len(self._store)
