"""Goal-directed shortest-path kernels: A*, bidirectional Dijkstra, ALT.

Every construction in the paper — the KMB/Mehlhorn metric closures, the
dominance predicates of Section 4, and the router's maze expansion —
bottoms out in :func:`repro.graph.shortest_paths.dijkstra`, so it is the
hottest path in the codebase.  Goal-oriented search with admissible
lower bounds (Hougardy et al., *Dijkstra meets Steiner*) prunes most of
the frontier while preserving exactness, and production FPGA routers
run exactly this shape of A* over the routing-resource graph.  This
module provides the kernels; :class:`SearchPolicy` packages them for
:class:`~repro.graph.shortest_paths.ShortestPathCache`.

Exactness contract
------------------
* :func:`astar` with an *admissible and consistent* heuristic settles
  nodes with their exact distance, so ``dist[target]`` equals the plain
  Dijkstra distance whenever ``target`` is reachable.
* :func:`bidirectional_dijkstra` uses the standard two-frontier
  stopping rule (``top_f + top_b >= mu``) and returns the exact
  distance.
* Neither kernel reproduces plain Dijkstra's equal-cost tie-breaking
  (A* pops by ``g + h``, the bidirectional search meets in the middle),
  so the cache wiring uses them **only for distance queries**.
  Canonical *paths* always come from plain — possibly early-exit —
  Dijkstra runs: an early-exit run executes an identical prefix of the
  full run, and a settled node's ``(dist, pred)`` never changes after
  settling, so the paths it yields are bit-identical to the full run's.

Heuristics
----------
:func:`manhattan_heuristic` is the channel-lattice lower bound for FPGA
routing graphs: junction ``("J", x, y, side, track)`` sits at lattice
point ``(x, y)``, pin ``("P", bx, by, p)`` at the block centre
``(bx + 0.5, by + 0.5)``, and plain ``(x, y)`` grid nodes at
themselves.  With ``scale`` a lower bound on ``weight / L1-displacement``
over every displacement edge, ``h(v) = scale · L1(v, target)`` is
admissible and consistent: an edge moving ``d ≤ 1`` in L1 costs at
least ``scale · d``, so ``h`` can never drop faster than the edge
weight.  :class:`LandmarkIndex` provides the general-graph fallback
(ALT lower bounds via the triangle inequality), precomputed per
:attr:`Graph.version`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .core import Graph
from .flat import GRAPH_BACKENDS, resolve_graph_backend
from .shortest_paths import (
    dijkstra,
    get_dijkstra_budget,
    get_dijkstra_counters,
    reconstruct_path,
)

Node = Hashable
INF = float("inf")

#: the RouterConfig.search vocabulary
SEARCH_BACKENDS = ("dijkstra", "astar", "bidir", "auto")


class Heuristic:
    """A lower-bound function plus a hashable identity.

    ``key`` identifies the heuristic for cache keying — two heuristics
    with equal keys must compute identical bounds.
    """

    __slots__ = ("fn", "key")

    def __init__(self, fn: Callable[[Node], float], key: Tuple) -> None:
        self.fn = fn
        self.key = key

    def __call__(self, node: Node) -> float:
        return self.fn(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heuristic({self.key!r})"


def lattice_coordinate(node: Node) -> Optional[Tuple[float, float]]:
    """The (x, y) lattice position of a routing-graph or grid node.

    Recognizes the :mod:`repro.fpga.routing_graph` node vocabulary —
    ``("J", x, y, side, track)`` junctions and ``("P", bx, by, p)``
    pins (placed at the block centre) — plus bare ``(x, y)`` pairs from
    :func:`repro.graph.generators.grid_graph`.  Returns None for
    anything else.
    """
    if type(node) is not tuple:
        return None
    n = len(node)
    if n == 5 and node[0] == "J":
        x, y = node[1], node[2]
        if isinstance(x, (int, float)) and isinstance(y, (int, float)):
            return (float(x), float(y))
    elif n == 4 and node[0] == "P":
        bx, by = node[1], node[2]
        if isinstance(bx, (int, float)) and isinstance(by, (int, float)):
            return (float(bx) + 0.5, float(by) + 0.5)
    elif n == 2:
        x, y = node
        if (
            isinstance(x, (int, float))
            and isinstance(y, (int, float))
            and not isinstance(x, bool)
            and not isinstance(y, bool)
        ):
            return (float(x), float(y))
    return None


def lattice_scale(graph: Graph) -> Optional[float]:
    """The admissible Manhattan scale for ``graph``, or None.

    Scans every edge: each endpoint must have a
    :func:`lattice_coordinate` and no edge may move more than one unit
    of L1 distance.  The scale is the minimum ``weight / displacement``
    over the displacement edges — the largest factor for which
    ``scale · L1(v, t)`` is still a lower bound on the true distance.
    Returns None when the graph is not a unit lattice (or a
    displacement edge has zero weight, which would make the bound
    vacuous).
    """
    scale = INF
    for u, v, w in graph.edges():
        cu = lattice_coordinate(u)
        if cu is None:
            return None
        cv = lattice_coordinate(v)
        if cv is None:
            return None
        d = abs(cu[0] - cv[0]) + abs(cu[1] - cv[1])
        if d > 1.0 + 1e-9:
            return None
        if d > 1e-12:
            ratio = w / d
            if ratio < scale:
                scale = ratio
    if scale == INF or scale <= 0.0:
        return None
    return scale


def manhattan_heuristic(
    graph: Graph, target: Node, scale: Optional[float] = None
) -> Optional[Heuristic]:
    """Channel-lattice Manhattan lower bound toward ``target``.

    ``scale`` is the per-unit-L1 weight lower bound; omitted, it is
    derived (and verified) from the graph via :func:`lattice_scale`.
    Returns None when no admissible bound can be formed (no target
    coordinate, or the graph is not a lattice).
    """
    tc = lattice_coordinate(target)
    if tc is None:
        return None
    if scale is None:
        scale = lattice_scale(graph)
        if scale is None:
            return None
    tx, ty = tc

    def h(node: Node) -> float:
        c = lattice_coordinate(node)
        if c is None:
            return 0.0
        return scale * (abs(c[0] - tx) + abs(c[1] - ty))

    return Heuristic(h, ("manhattan", scale, target))


class LandmarkIndex:
    """ALT (A*, Landmarks, Triangle inequality) lower bounds.

    ``k`` landmarks are chosen by deterministic farthest-point
    selection (first landmark = smallest node by ``repr``; each next
    landmark maximizes the distance to the chosen set, unreachable
    nodes counting as farthest so every component gets covered).  One
    full Dijkstra per landmark is precomputed; the index is valid for
    exactly one :attr:`Graph.version` (check :meth:`fresh`).

    ``h(v) = max_L |d(L, target) − d(L, v)|`` is admissible and
    consistent by the triangle inequality; landmark maps missing either
    endpoint contribute nothing (0), which keeps the bound admissible
    on disconnected graphs.
    """

    def __init__(self, graph: Graph, k: int = 4) -> None:
        if k < 1:
            raise GraphError(f"landmark count must be >= 1, got {k}")
        self._graph = graph
        self._version = graph.version
        nodes = sorted(graph.nodes, key=repr)
        self._landmarks: List[Node] = []
        self._maps: List[Dict[Node, float]] = []
        if not nodes:
            return
        k = min(k, len(nodes))
        current = nodes[0]
        while len(self._landmarks) < k:
            self._landmarks.append(current)
            self._maps.append(dijkstra(graph, current)[0])
            if len(self._landmarks) == k:
                break
            best = None
            best_d = -1.0
            for n in nodes:
                if n in self._landmarks:
                    continue
                dmin = min(m.get(n, INF) for m in self._maps)
                if dmin > best_d:
                    best_d = dmin
                    best = n
            if best is None:  # pragma: no cover - k capped at |V|
                break
            current = best

    @property
    def landmarks(self) -> Tuple[Node, ...]:
        return tuple(self._landmarks)

    def fresh(self, graph: Graph) -> bool:
        """True while the index still describes ``graph``."""
        return graph is self._graph and graph.version == self._version

    def heuristic(self, target: Node) -> Heuristic:
        rows = [(m, m.get(target, INF)) for m in self._maps]

        def h(node: Node) -> float:
            best = 0.0
            for m, dt in rows:
                if dt == INF:
                    continue
                dv = m.get(node, INF)
                if dv == INF:
                    continue
                diff = dt - dv
                if diff < 0.0:
                    diff = -diff
                if diff > best:
                    best = diff
            return best

        return Heuristic(
            h, ("alt", self._version, len(self._landmarks), target)
        )


def astar(
    graph: Graph,
    source: Node,
    target: Node,
    heuristic: Callable[[Node], float],
    cutoff: Optional[float] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Goal-directed Dijkstra (A*) from ``source`` toward ``target``.

    ``heuristic`` must be an admissible, consistent lower bound on the
    distance to ``target`` (see the module docstring); under that
    contract every settled node carries its exact distance, and the
    search stops as soon as ``target`` is settled.  A node whose
    heuristic is infinite is provably unable to reach the target and is
    pruned outright.

    Returns ``(dist, pred)`` over the settled prefix, exactly like
    :func:`~repro.graph.shortest_paths.dijkstra` — but note the settled
    *set* and the ``pred`` tie-breaking differ from plain Dijkstra's,
    so the result must never be cached as a plain run (the
    :class:`~repro.graph.shortest_paths.ShortestPathCache` keys kernel
    results separately for exactly this reason).
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    if not graph.has_node(target):
        raise GraphError(f"target {target!r} not in graph")
    dist: Dict[Node, float] = {}
    pred: Dict[Node, Node] = {}
    seen = {source: 0.0}
    counter = 0
    pops = 0
    budget = get_dijkstra_budget()
    # (f = g + h, tie counter, g, node): the explicit g avoids deriving
    # it from f by float subtraction
    heap: List[Tuple[float, int, float, Node]] = [
        (heuristic(source), 0, 0.0, source)
    ]
    while heap:
        _, _, g, u = heapq.heappop(heap)
        pops += 1
        if budget is not None:
            budget.check(pops, counter, backend="astar")
        if u in dist:
            continue
        dist[u] = g
        if u == target:
            break
        for v, w in graph.neighbor_items(u):
            if v in dist:
                continue
            ng = g + w
            if cutoff is not None and ng > cutoff:
                continue
            if v not in seen or ng < seen[v]:
                hv = heuristic(v)
                if hv == INF:
                    continue
                seen[v] = ng
                pred[v] = u
                counter += 1
                heapq.heappush(heap, (ng + hv, counter, ng, v))
    counters = get_dijkstra_counters()
    if counters is not None:
        counters.record(pops, counter, len(heap))
    return dist, pred


def bidirectional_dijkstra(
    graph: Graph, source: Node, target: Node
) -> Tuple[float, Optional[List[Node]]]:
    """Two-frontier Dijkstra for a single ``source → target`` query.

    Expands the frontier with the smaller tentative key (forward on
    ties) and stops once the frontier keys sum past the best meeting
    cost — the standard exact stopping rule.  Returns ``(distance,
    path)``; ``(inf, None)`` when the endpoints are disconnected.  The
    distance is re-accumulated in forward edge order along the found
    path so it is bit-identical to what any forward kernel computes for
    that path (the meeting-rule sum adds the backward half in reverse
    order, which float non-associativity can shift by one ulp).  The
    path is *a* shortest path whose tie-breaking differs from plain
    Dijkstra's, so it is never used where canonical paths are required.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    if not graph.has_node(target):
        raise GraphError(f"target {target!r} not in graph")
    if source == target:
        return 0.0, [source]
    budget = get_dijkstra_budget()
    dist_f: Dict[Node, float] = {}
    dist_b: Dict[Node, float] = {}
    seen_f = {source: 0.0}
    seen_b = {target: 0.0}
    pred_f: Dict[Node, Node] = {}
    pred_b: Dict[Node, Node] = {}
    heap_f: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    heap_b: List[Tuple[float, int, Node]] = [(0.0, 0, target)]
    counter = 0
    pops = 0
    best = INF
    meet: Optional[Node] = None
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, seen = heap_f, dist_f, seen_f
            pred, other_dist, other_seen = pred_f, dist_b, seen_b
        else:
            heap, dist, seen = heap_b, dist_b, seen_b
            pred, other_dist, other_seen = pred_b, dist_f, seen_f
        d, _, u = heapq.heappop(heap)
        pops += 1
        if budget is not None:
            budget.check(pops, counter, backend="bidir")
        if u in dist:
            continue
        dist[u] = d
        du_other = other_dist.get(u)
        if du_other is not None and d + du_other < best:
            best = d + du_other
            meet = u
        for v, w in graph.neighbor_items(u):
            if v in dist:
                continue
            nd = d + w
            if v not in seen or nd < seen[v]:
                seen[v] = nd
                pred[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
            dv_other = other_seen.get(v)
            if dv_other is not None and nd + dv_other < best:
                # any tentative other-side label is a realizable path
                # length, so this only ever tightens the bound
                best = nd + dv_other
                meet = v
    counters = get_dijkstra_counters()
    if counters is not None:
        counters.record(pops, counter, len(heap_f) + len(heap_b))
    if meet is None:
        return INF, None
    path = reconstruct_path(pred_f, source, meet)
    node = meet
    while node != target:
        node = pred_b[node]
        path.append(node)
    # re-accumulate the distance in forward order along the found path:
    # ``best`` sums the backward half in reverse edge order, and float
    # addition is not associative, so it can sit one ulp away from the
    # forward-order sum every other kernel produces
    d = 0.0
    for a, b in zip(path, path[1:]):
        d += graph.weight(a, b)
    return d, path


def negotiated_search(
    graph: Graph,
    sources: Sequence[Node],
    target: Node,
    factor: Callable[[Node], float],
    criticality: float = 0.0,
    heuristic: Optional[Callable[[Node], float]] = None,
    offsets: Optional[Dict[Node, float]] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Multi-source shortest path under negotiated node costs.

    The PathFinder connection kernel: every node of the current routing
    tree is a source, and edge ``(u, v)`` with base weight ``w`` costs

        w · (crit + (1 − crit) · (factor(u) + factor(v)) / 2)

    — the timing blend of the base metric against the negotiated
    congestion metric.  ``factor`` is the cost provider's per-node
    present × history multiplier and must return values ``>= 1`` so the
    blended cost never drops below the base weight; with ``heuristic``
    an admissible lower bound on *base* distance to ``target``, it is
    therefore also admissible for the blended metric, and the search is
    exact goal-directed A*.  Without a heuristic this is plain
    multi-source Dijkstra.  The graph itself is never mutated or
    re-weighted — congestion lives entirely in ``factor``.

    ``offsets`` seeds sources with a non-zero starting cost (default
    ``g = 0`` for all).  Timing-driven negotiation passes
    ``crit · tree_distance(source → seed)`` so a critical connection
    pays for the delay already accrued at its attachment point —
    equivalent to a super-source with weighted seed edges, so A*
    exactness is unaffected.  A seeded node may be settled through a
    cheaper path from another seed; its ``pred`` entry is set like any
    relaxed node's.

    Returns ``(dist, pred)`` over the settled prefix; the search stops
    once ``target`` settles.  Unrelaxed seeds carry no predecessor, so
    walking ``pred`` back from ``target`` ends at a seed.  Seed order
    breaks cost ties (first seed wins), so callers must pass
    ``sources`` in a deterministic order.
    """
    if not graph.has_node(target):
        raise GraphError(f"target {target!r} not in graph")
    if not 0.0 <= criticality <= 1.0:
        raise GraphError(
            f"criticality must be in [0, 1], got {criticality}"
        )
    crit = criticality
    mix = (1.0 - crit) * 0.5
    fcache: Dict[Node, float] = {}

    def f(node: Node) -> float:
        v = fcache.get(node)
        if v is None:
            v = factor(node)
            if v < 1.0:
                raise GraphError(
                    f"cost provider returned factor {v} < 1 for "
                    f"{node!r}; the blended metric would undercut the "
                    f"base weight and break heuristic admissibility"
                )
            fcache[node] = v
        return v

    dist: Dict[Node, float] = {}
    pred: Dict[Node, Node] = {}
    seen: Dict[Node, float] = {}
    heap: List[Tuple[float, int, float, Node]] = []
    counter = 0
    for s in sources:
        if not graph.has_node(s):
            raise GraphError(f"source {s!r} not in graph")
        if s in seen:
            continue
        g0 = offsets.get(s, 0.0) if offsets else 0.0
        if g0 < 0.0:
            raise GraphError(f"negative source offset {g0} for {s!r}")
        seen[s] = g0
        hs = heuristic(s) if heuristic is not None else 0.0
        heap.append((g0 + hs, counter, g0, s))
        counter += 1
    if not heap:
        raise GraphError("negotiated search needs at least one source")
    heapq.heapify(heap)
    pops = 0
    budget = get_dijkstra_budget()
    while heap:
        _, _, g, u = heapq.heappop(heap)
        pops += 1
        if budget is not None:
            budget.check(pops, counter, backend="negotiate")
        if u in dist:
            continue
        dist[u] = g
        if u == target:
            break
        fu = f(u)
        for v, w in graph.neighbor_items(u):
            if v in dist:
                continue
            ng = g + w * (crit + mix * (fu + f(v)))
            if v not in seen or ng < seen[v]:
                if heuristic is not None:
                    hv = heuristic(v)
                    if hv == INF:
                        continue
                else:
                    hv = 0.0
                seen[v] = ng
                pred[v] = u
                counter += 1
                heapq.heappush(heap, (ng + hv, counter, ng, v))
    counters = get_dijkstra_counters()
    if counters is not None:
        counters.record(pops, counter, len(heap))
    return dist, pred


def multi_target_dijkstra(
    graph: Graph, source: Node, targets: Sequence[Node]
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Early-exit Dijkstra that stops once every target is settled.

    A thin named wrapper over ``dijkstra(graph, source, targets=...)``
    documenting the property the cache wiring relies on: the early-exit
    run executes an identical prefix of the full run, so the distances
    *and predecessors* of every settled node — in particular every
    reachable target — are bit-identical to the full run's.
    """
    return dijkstra(graph, source, targets=targets)


class SearchPolicy:
    """How a :class:`ShortestPathCache` answers point-to-point queries.

    Parameters
    ----------
    backend:
        One of :data:`SEARCH_BACKENDS`.  ``"dijkstra"`` keeps the plain
        kernel everywhere (the reference profile); ``"astar"`` uses
        goal-directed search for pair distances when a heuristic is
        available (falling back to the bidirectional kernel);
        ``"bidir"`` always uses the bidirectional kernel; ``"auto"``
        picks A* when a heuristic can be derived, else bidirectional.
    heuristic_scale:
        Trusted per-unit-L1 weight lower bound.  The router supplies
        ``min(segment_weight, pin_weight)`` from the architecture,
        which skips the O(E) lattice verification scan and — unlike a
        scale derived from the current edge set — stays admissible as
        pin edges are attached and detached mid-pass.  Callers
        providing it assert that every node on any path has a
        :func:`lattice_coordinate` and every edge satisfies
        ``weight ≥ scale · L1-displacement``.
    landmarks:
        When > 0, build a :class:`LandmarkIndex` of that many landmarks
        for graphs that are not lattices.  The index costs one full
        Dijkstra per landmark and is rebuilt whenever the graph
        version changes — intended for static general graphs, never
        for the mutating routing graph.
    graph_backend:
        One of :data:`~repro.graph.flat.GRAPH_BACKENDS`.  ``"flat"``
        runs every plain and goal-directed kernel over the graph's
        frozen CSR view (``Graph.freeze()``); ``"dict"`` keeps the
        historical dict-adjacency kernels; ``"auto"`` (default) picks
        flat once the graph is large enough to amortize the freeze.
        The flat kernels are bit-identical to the dict kernels, so
        this switch changes throughput, never results.

    All distances computed through a policy are exact, so any backend
    may share a cache's pair-distance store; the policy's :meth:`key`
    still participates in cache keying so that differently-configured
    runs are never conflated.
    """

    __slots__ = (
        "backend",
        "heuristic_scale",
        "landmarks",
        "graph_backend",
        "_scale_graph",
        "_scale_version",
        "_scale",
        "_alt",
    )

    def __init__(
        self,
        backend: str = "auto",
        *,
        heuristic_scale: Optional[float] = None,
        landmarks: int = 0,
        graph_backend: str = "auto",
    ) -> None:
        if backend not in SEARCH_BACKENDS:
            raise GraphError(
                f"unknown search backend {backend!r}; "
                f"expected one of {SEARCH_BACKENDS}"
            )
        if heuristic_scale is not None and heuristic_scale <= 0:
            raise GraphError(
                f"heuristic_scale must be positive, got {heuristic_scale}"
            )
        if landmarks < 0:
            raise GraphError(f"landmarks must be >= 0, got {landmarks}")
        if graph_backend not in GRAPH_BACKENDS:
            raise GraphError(
                f"unknown graph backend {graph_backend!r}; "
                f"expected one of {GRAPH_BACKENDS}"
            )
        self.backend = backend
        self.heuristic_scale = heuristic_scale
        self.landmarks = landmarks
        self.graph_backend = graph_backend
        self._scale_graph: Optional[int] = None
        self._scale_version: Optional[int] = None
        self._scale: Optional[float] = None
        self._alt: Optional[LandmarkIndex] = None

    @classmethod
    def for_architecture(
        cls, backend: str, arch, graph_backend: str = "auto"
    ) -> "SearchPolicy":
        """The router's policy: Manhattan scale from the architecture.

        ``min(segment_weight, pin_weight)`` bounds the cost of any
        unit-L1 move on the routing-resource graph (switch edges do not
        displace), independent of congestion multipliers (which only
        increase weights) and of which pins are currently attached.
        """
        scale = min(arch.segment_weight, arch.pin_weight)
        if scale <= 0:
            return cls(backend, graph_backend=graph_backend)
        return cls(
            backend,
            heuristic_scale=scale,
            graph_backend=graph_backend,
        )

    def key(self) -> Tuple:
        """Hashable identity (backend + heuristic configuration)."""
        return (
            self.backend,
            self.heuristic_scale,
            self.landmarks,
            self.graph_backend,
        )

    def graph_kernel(self, graph: Graph) -> str:
        """``"flat"`` or ``"dict"`` — the plain kernel for ``graph``."""
        return resolve_graph_backend(self.graph_backend, graph)

    def plain_sssp(
        self,
        graph: Graph,
        source: Node,
        targets=None,
        cutoff: Optional[float] = None,
    ):
        """Plain (possibly limited) Dijkstra via the resolved backend.

        This is the cache's entry point for every canonical run: the
        flat and dict kernels return bit-identical ``(dist, pred)``
        maps, so which one executes is purely a throughput choice.
        """
        if self.graph_kernel(graph) == "flat":
            return graph.freeze().sssp(
                source, targets=targets, cutoff=cutoff
            )
        return dijkstra(graph, source, targets=targets, cutoff=cutoff)

    def _scale_for(self, graph: Graph) -> Optional[float]:
        if self.heuristic_scale is not None:
            return self.heuristic_scale
        if (
            self._scale_graph != id(graph)
            or self._scale_version != graph.version
        ):
            self._scale = lattice_scale(graph)
            self._scale_graph = id(graph)
            self._scale_version = graph.version
        return self._scale

    def heuristic_for(
        self, graph: Graph, target: Node
    ) -> Optional[Heuristic]:
        """An admissible heuristic toward ``target``, or None."""
        scale = self._scale_for(graph)
        if scale is not None:
            h = manhattan_heuristic(graph, target, scale=scale)
            if h is not None:
                return h
        if self.landmarks > 0:
            if self._alt is None or not self._alt.fresh(graph):
                self._alt = LandmarkIndex(graph, self.landmarks)
            return self._alt.heuristic(target)
        return None

    def negotiated_search(
        self,
        graph: Graph,
        sources: Sequence[Node],
        target: Node,
        provider,
        criticality: float = 0.0,
        offsets: Optional[Dict[Node, float]] = None,
    ) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        """Multi-source negotiated-cost search via the configured kernels.

        The PathFinder cost seam: ``provider`` supplies per-node
        present × history multipliers — ``provider.node_factor(node)``
        for the dict kernel, ``provider.factor_table(flat)`` (a dense
        per-id list) for the flat kernel — and the kernels blend them
        into the edge weights on the fly, so the graph is never
        re-weighted per query and one frozen CSR snapshot serves every
        net of a negotiation iteration.  Factors must be ``>= 1``: the
        blended cost then never undercuts the base weight, which keeps
        this policy's base-metric Manhattan heuristic admissible for
        the goal-directed backends.

        Backend mapping: ``"dijkstra"`` runs the plain multi-source
        kernel; ``"astar"``/``"auto"`` go goal-directed when a
        heuristic is available; ``"bidir"`` has no multi-source
        two-frontier form and deliberately degrades to the plain
        kernel (documented in ``docs/pathfinder.md``).
        """
        heuristic = None
        if self.backend in ("astar", "auto"):
            heuristic = self.heuristic_for(graph, target)
        if self.graph_kernel(graph) == "flat":
            from .flat import flat_negotiated_search

            view = graph.freeze()
            return flat_negotiated_search(
                view.flat,
                sources,
                target,
                provider.factor_table(view.flat),
                criticality,
                heuristic=heuristic,
                offsets=offsets,
            )
        return negotiated_search(
            graph,
            sources,
            target,
            provider.node_factor,
            criticality,
            heuristic=heuristic,
            offsets=offsets,
        )

    def pair_distance(self, graph: Graph, u: Node, v: Node) -> float:
        """Exact ``minpath(u, v)`` via the configured kernel (inf if
        disconnected)."""
        backend = self.backend
        use_flat = self.graph_kernel(graph) == "flat"
        if backend == "dijkstra":
            if use_flat:
                dist, _ = graph.freeze().sssp(u, targets=[v])
            else:
                dist, _ = dijkstra(graph, u, targets=[v])
            return dist.get(v, INF)
        if backend in ("astar", "auto"):
            h = self.heuristic_for(graph, v)
            if h is not None:
                if use_flat:
                    dist, _ = graph.freeze().astar(u, v, h)
                else:
                    dist, _ = astar(graph, u, v, h)
                return dist.get(v, INF)
        if use_flat:
            d, _ = graph.freeze().bidirectional(u, v)
            return d
        d, _ = bidirectional_dijkstra(graph, u, v)
        return d
