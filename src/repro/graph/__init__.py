"""Weighted-graph substrate: the routing domain of the paper (Section 2).

Everything the Steiner/arborescence heuristics and the FPGA router need:
an undirected weighted :class:`Graph`, Dijkstra shortest paths with a
version-aware :class:`ShortestPathCache`, spanning trees, the metric
closure (:class:`DistanceGraph`), seeded generators for the paper's
experimental workloads, and tree validation/pruning helpers.
"""

from .core import Graph, edge_key
from .flat import (
    FLAT_AUTO_THRESHOLD,
    GRAPH_BACKENDS,
    FlatGraph,
    GraphView,
    flat_astar,
    flat_bidirectional,
    flat_dijkstra,
    resolve_graph_backend,
)
from .distance_graph import DistanceGraph, terminal_distances
from .multiweight import MultiWeightGraph, sweep_tradeoff
from .generators import (
    grid_graph,
    random_connected_graph,
    random_net,
    random_nets,
)
from .shortest_paths import (
    DijkstraBudget,
    DijkstraCounters,
    ShortestPathCache,
    dijkstra,
    get_dijkstra_budget,
    get_dijkstra_counters,
    path_cost,
    reconstruct_path,
    set_dijkstra_budget,
    set_dijkstra_counters,
    shortest_path,
)
from .search import (
    SEARCH_BACKENDS,
    Heuristic,
    LandmarkIndex,
    SearchPolicy,
    astar,
    bidirectional_dijkstra,
    lattice_coordinate,
    lattice_scale,
    manhattan_heuristic,
    multi_target_dijkstra,
)
from .spanning import UnionFind, dense_mst, kruskal_mst, mst_cost, prim_mst
from .validation import (
    assert_valid_steiner_tree,
    is_tree,
    prune_non_terminal_leaves,
    spans,
    tree_paths_from,
)

__all__ = [
    "Graph",
    "edge_key",
    "FLAT_AUTO_THRESHOLD",
    "GRAPH_BACKENDS",
    "FlatGraph",
    "GraphView",
    "flat_astar",
    "flat_bidirectional",
    "flat_dijkstra",
    "resolve_graph_backend",
    "DistanceGraph",
    "terminal_distances",
    "MultiWeightGraph",
    "sweep_tradeoff",
    "grid_graph",
    "random_connected_graph",
    "random_net",
    "random_nets",
    "DijkstraBudget",
    "DijkstraCounters",
    "ShortestPathCache",
    "dijkstra",
    "get_dijkstra_budget",
    "get_dijkstra_counters",
    "set_dijkstra_budget",
    "set_dijkstra_counters",
    "path_cost",
    "reconstruct_path",
    "shortest_path",
    "SEARCH_BACKENDS",
    "Heuristic",
    "LandmarkIndex",
    "SearchPolicy",
    "astar",
    "bidirectional_dijkstra",
    "lattice_coordinate",
    "lattice_scale",
    "manhattan_heuristic",
    "multi_target_dijkstra",
    "UnionFind",
    "dense_mst",
    "kruskal_mst",
    "mst_cost",
    "prim_mst",
    "assert_valid_steiner_tree",
    "is_tree",
    "prune_non_terminal_leaves",
    "spans",
    "tree_paths_from",
]
