"""Seeded graph and net generators for experiments and tests.

Section 5 of the paper evaluates the tree algorithms on "random nets,
uniformly distributed in 20×20 weighted grid graphs" with congestion
modeled by pre-routing k nets with KMB and bumping edge weights, and
quotes CPU times on "random graphs with |V| = 50, |E| = 1000".  The
generators here produce exactly those workloads, deterministically from
an explicit seed.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from ..net import Net
from .core import Graph

Node = Hashable
GridNode = Tuple[int, int]


def grid_graph(width: int, height: int, weight: float = 1.0) -> Graph:
    """A ``width × height`` rectilinear grid graph with uniform weights.

    Nodes are ``(x, y)`` with ``0 <= x < width`` and ``0 <= y < height``;
    edges join 4-neighbors.  This mirrors the paper's Figure 3(a): before
    any routing, shortest-path distance equals rectilinear distance.
    """
    if width < 1 or height < 1:
        raise GraphError("grid dimensions must be positive")
    g = Graph()
    for x in range(width):
        for y in range(height):
            g.add_node((x, y))
            if x > 0:
                g.add_edge((x - 1, y), (x, y), weight)
            if y > 0:
                g.add_edge((x, y - 1), (x, y), weight)
    return g


def random_connected_graph(
    num_nodes: int,
    num_edges: int,
    rng: random.Random,
    min_weight: float = 1.0,
    max_weight: float = 10.0,
) -> Graph:
    """A random connected graph with exactly ``num_edges`` edges.

    A random spanning tree guarantees connectivity; the remaining edges
    are sampled uniformly from the non-edges.  Weights are uniform in
    ``[min_weight, max_weight]``.  Matches the "|V| = 50, |E| = 1000"
    CPU-time instances of Section 5.
    """
    if num_edges < num_nodes - 1:
        raise GraphError(
            f"{num_edges} edges cannot connect {num_nodes} nodes"
        )
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"{num_edges} edges exceed the maximum {max_edges} for "
            f"{num_nodes} nodes"
        )
    g = Graph()
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    g.add_node(nodes[0])
    # random spanning tree: attach each new node to a random existing one
    for i, node in enumerate(nodes[1:], start=1):
        anchor = nodes[rng.randrange(i)]
        g.add_edge(node, anchor, rng.uniform(min_weight, max_weight))
    # fill in remaining edges
    attempts = 0
    while g.num_edges < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.uniform(min_weight, max_weight))
        attempts += 1
        if attempts > 100 * num_edges:  # pragma: no cover - safety valve
            raise GraphError("edge sampling failed to converge")
    return g


def random_net(
    graph: Graph,
    num_pins: int,
    rng: random.Random,
    name: Optional[str] = None,
) -> Net:
    """A net of ``num_pins`` distinct nodes sampled uniformly from G.

    The first sampled node becomes the source, matching the paper's
    "uniformly-distributed nets" of Section 5.
    """
    nodes = list(graph.nodes)
    if num_pins > len(nodes):
        raise GraphError(
            f"cannot sample {num_pins} pins from {len(nodes)} nodes"
        )
    pins = rng.sample(nodes, num_pins)
    return Net(source=pins[0], sinks=tuple(pins[1:]), name=name)


def random_nets(
    graph: Graph,
    count: int,
    pin_range: Tuple[int, int],
    rng: random.Random,
) -> List[Net]:
    """``count`` random nets with pin counts uniform in ``pin_range``."""
    lo, hi = pin_range
    return [
        random_net(graph, rng.randint(lo, hi), rng, name=f"n{i}")
        for i in range(count)
    ]
