"""Flat CSR graph core: int-indexed arrays behind the frozen-view API.

The dict-adjacency :class:`~repro.graph.core.Graph` is the right
substrate for *mutation* — committing a routed net deletes nodes,
congestion re-weighting touches edges — but it is the wrong substrate
for *search*: every Dijkstra relaxation pays several tuple hashes
(``seen``/``dist``/``pred`` lookups keyed by structured node tuples
like ``("J", x, y, side, track)``).  Production FPGA routers run on
flat integer-indexed routing-resource graphs for exactly this reason.

This module provides that representation:

* :class:`FlatGraph` — an immutable CSR (compressed-sparse-row)
  snapshot: ``indptr``/``indices``/``weights`` numpy arrays plus a node
  table mapping int ids back to the original node objects.  Node
  enumeration order and per-row neighbor order mirror the source
  graph's dict insertion order **exactly** — that is what lets the flat
  kernels reproduce the dict kernels' tie-breaking bit for bit.
* :class:`GraphView` — a :class:`FlatGraph` stamped with the
  :attr:`Graph.version` it was frozen at.  ``Graph.freeze()`` memoizes
  one view per version, so any mutation transparently invalidates it.
* :func:`flat_dijkstra` / :func:`flat_astar` /
  :func:`flat_bidirectional` — search kernels over int ids whose
  returned ``(dist, pred)`` maps are **bit-identical** to
  :func:`~repro.graph.shortest_paths.dijkstra`,
  :func:`~repro.graph.search.astar` and
  :func:`~repro.graph.search.bidirectional_dijkstra`: same float
  values, same settled sets, same tie-breaking, and the same dict
  *iteration order* (several consumers — PFA's ``pred.items()`` walk,
  the dominance oracle's ``d0.items()`` scans — are order-sensitive).

Bit-identity contract
---------------------
Each flat kernel replays the exact event sequence of its dict
counterpart: one shared push counter, heap entries ``(key, counter,
id)``, stale pops counted, the budget checked on every pop, the same
early-exit and cutoff tests in the same order.  Distances are the same
IEEE doubles because the arithmetic (``d + w`` per relaxation) happens
in the same order on the same values; the result dicts are rebuilt in
settlement order (``dist``) and first-relaxation order (``pred``) so
order-sensitive consumers see no difference.  The differential harness
and golden files in ``tests/differential/`` gate this contract.

Backend selection
-----------------
:data:`GRAPH_BACKENDS` is the ``RouterConfig.graph_backend`` /
``--graph-backend`` vocabulary.  ``"auto"`` (the default) uses the flat
core once a graph reaches :data:`FLAT_AUTO_THRESHOLD` nodes — below
that the freeze cost outweighs the per-relaxation savings — and keeps
the dict kernels for small graphs.
"""

from __future__ import annotations

import heapq
import weakref
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np

from ..errors import GraphError
from .core import Graph
from .shortest_paths import get_dijkstra_budget, get_dijkstra_counters

Node = Hashable
INF = float("inf")

#: the RouterConfig.graph_backend vocabulary
GRAPH_BACKENDS = ("dict", "flat", "auto")

#: "auto" switches to the flat core at this node count: below it the
#: O(V+E) freeze outweighs the per-relaxation hashing it saves
FLAT_AUTO_THRESHOLD = 256


def _extend_coords(
    coords: Tuple[np.ndarray, np.ndarray, np.ndarray],
    nodes: List[Node],
    n_old: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Grow a lattice-coordinate table to cover appended node slots."""
    from .search import lattice_coordinate

    xs0, ys0, valid0 = coords
    n = len(nodes)
    if n == n_old:
        return coords
    xs = np.zeros(n, dtype=np.float64)
    ys = np.zeros(n, dtype=np.float64)
    valid = np.zeros(n, dtype=bool)
    xs[:n_old] = xs0
    ys[:n_old] = ys0
    valid[:n_old] = valid0
    for i in range(n_old, n):
        c = lattice_coordinate(nodes[i])
        if c is not None:
            xs[i] = c[0]
            ys[i] = c[1]
            valid[i] = True
    return (xs, ys, valid)


def resolve_graph_backend(choice: str, graph) -> str:
    """Resolve a :data:`GRAPH_BACKENDS` choice to ``"dict"``/``"flat"``.

    ``graph`` only needs a ``num_nodes`` attribute; it is consulted for
    the ``"auto"`` size heuristic.
    """
    if choice == "dict":
        return "dict"
    if choice == "flat":
        return "flat"
    if choice != "auto":
        raise GraphError(
            f"unknown graph backend {choice!r}; "
            f"expected one of {GRAPH_BACKENDS}"
        )
    return "flat" if graph.num_nodes >= FLAT_AUTO_THRESHOLD else "dict"


class FlatGraph:
    """An immutable int-indexed snapshot of an undirected weighted graph.

    Two interchangeable layouts of the same data:

    * **rows** — per-node Python lists of ``(neighbor id, weight)``
      pairs, the representation the search kernels iterate.  Built
      eagerly by :meth:`from_graph` (freezing is on the router's
      per-net critical path).
    * **CSR arrays** — ``indptr``/``indices``/``weights`` numpy arrays
      (node ``i``'s half-edges occupy ``indptr[i]:indptr[i+1]``),
      materialized lazily for pickling and the vectorized heuristic
      tables.

    Both the node enumeration and every row's neighbor order replicate
    the source graph's dict insertion order, so searches over the flat
    form break ties exactly like searches over the dict adjacency.

    Instances are cheap to pickle (three numpy arrays plus the node
    table) — the engine ships them to worker processes instead of full
    dict graphs — and :meth:`thaw` reconstructs an equivalent mutable
    :class:`Graph` with identical adjacency ordering on the other side.

    Weights are stored as float64; integer edge weights round-trip to
    the equal float value (``2 -> 2.0``).
    """

    __slots__ = (
        "nodes",
        "num_edges",
        "_indptr",
        "_indices",
        "_weights",
        "_index",
        "_rows",
        "_coords",
        "_mh_tables",
        "_num_ghosts",
    )

    def __init__(
        self,
        nodes: List[Node],
        indptr: Optional[np.ndarray],
        indices: Optional[np.ndarray],
        weights: Optional[np.ndarray],
        num_edges: int,
    ) -> None:
        self.nodes = nodes
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self.num_edges = num_edges
        self._index: Optional[Dict[Node, int]] = None
        self._rows: Optional[List[List[Tuple[int, float]]]] = None
        self._coords: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._mh_tables: Dict[Tuple[Node, float], List[float]] = {}
        # dead slots left behind by incremental refreezes (see
        # `refrozen`): entries of `nodes`/`rows` that no longer belong
        # to the graph.  They are unreachable (no surviving row
        # references them, and `_index` drops them), so the kernels
        # never visit one; only the node-enumeration surface and
        # pickling need to skip them.
        self._num_ghosts = 0

    @classmethod
    def from_graph(cls, graph: Graph) -> "FlatGraph":
        """Freeze ``graph`` into flat form, preserving insertion order.

        ``freeze()`` happens once per net on the live routing graph, so
        this path is the latency-critical one: it builds only the id
        table and the Python row lists the kernels iterate.  The CSR
        numpy arrays are derived lazily (:meth:`_materialize_arrays`)
        the first time something actually needs them — pickling, the
        vectorized Manhattan table — which keeps a freeze-then-search
        cycle cheaper than a single dict-kernel sweep.
        """
        adj = graph._adjacency
        nodes = list(adj)
        index = {u: i for i, u in enumerate(nodes)}
        rows = [
            [(index[v], float(w)) for v, w in nbrs.items()]
            for nbrs in adj.values()
        ]
        flat = cls(nodes, None, None, None, graph.num_edges)
        flat._index = index
        flat._rows = rows
        return flat

    def refrozen(
        self,
        adj: Dict[Node, Dict[Node, float]],
        dirty: Iterable[Node],
        added: List[Node],
        num_edges: int,
    ) -> Optional["FlatGraph"]:
        """A new snapshot patched from this one, or None to force a
        full rebuild.

        ``Graph.freeze()`` calls this with the set of nodes whose
        adjacency changed (``dirty``) and the nodes added (``added``,
        in insertion order) since this snapshot was taken.  Only those
        rows are rebuilt; everything else — node slots, ids, unchanged
        rows — is shared structurally with this snapshot, which stays
        valid and immutable.  A routing pass mutates a handful of rows
        per net (pin taps, committed junctions, reweighted segments),
        so the per-net refreeze drops from O(V+E) to O(delta).

        Removed nodes keep their id as a dead *ghost* slot (an empty
        row, dropped from the index); a removed-then-re-added node gets
        a fresh id at the tail, which is exactly where dict insertion
        order puts it.  Ghosts are unreachable because every neighbor
        of a removed node is marked dirty, so each referencing row is
        rebuilt here.  Returns None — caller falls back to
        :meth:`from_graph` — when the delta or the accumulated ghosts
        outgrow the point where patching beats rebuilding.
        """
        rows_base = self._rows
        if rows_base is None:
            return None
        n = len(adj)
        if (len(dirty) + len(added)) * 8 > n:
            return None
        if (self._num_ghosts + len(added)) * 2 > n:
            return None
        index = dict(self.index)
        nodes = list(self.nodes)
        rows = list(rows_base)
        ghosts = self._num_ghosts
        for d in dirty:
            if d not in adj:
                i = index.pop(d, None)
                if i is not None:
                    rows[i] = []
                    ghosts += 1
        for nd in added:
            if nd not in adj:
                continue  # added then removed within the window
            old = index.get(nd)
            if old is not None:
                # re-added after a removal: retire the old slot so the
                # node's enumeration position moves to the tail, where
                # dict re-insertion order puts it
                rows[old] = []
                ghosts += 1
            i = len(nodes)
            nodes.append(nd)
            rows.append([])
            index[nd] = i
        for d in dirty:
            i = index.get(d)
            if i is not None:
                rows[i] = [
                    (index[v], float(w)) for v, w in adj[d].items()
                ]
        for nd in added:
            i = index.get(nd)
            if i is not None:
                rows[i] = [
                    (index[v], float(w)) for v, w in adj[nd].items()
                ]
        flat = FlatGraph(nodes, None, None, None, num_edges)
        flat._index = index
        flat._rows = rows
        flat._num_ghosts = ghosts
        if self._coords is not None:
            # node slots are append-only, so the lattice table carries
            # forward: recompute only the appended tail (ghost slots
            # keep their stale coords — nothing reaches them)
            flat._coords = _extend_coords(
                self._coords, nodes, len(self.nodes)
            )
        return flat

    def _materialize_arrays(self) -> None:
        """Build the CSR arrays from the row lists."""
        rows = self._rows
        if rows is None:  # pragma: no cover - unreachable via ctors
            raise GraphError("FlatGraph has neither rows nor arrays")
        indptr = [0]
        indices: List[int] = []
        weights: List[float] = []
        for row in rows:
            for j, w in row:
                indices.append(j)
                weights.append(w)
            indptr.append(len(indices))
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)
        self._weights = np.asarray(weights, dtype=np.float64)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (lazily materialized)."""
        if self._indptr is None:
            self._materialize_arrays()
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR neighbor-id array (lazily materialized)."""
        if self._indices is None:
            self._materialize_arrays()
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        """CSR float64 weight array (lazily materialized)."""
        if self._weights is None:
            self._materialize_arrays()
        return self._weights

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes) - self._num_ghosts

    @property
    def index(self) -> Dict[Node, int]:
        """Node object -> int id (lazily rebuilt after unpickling).

        The lazy rebuild is only reachable on unpickled snapshots,
        which are ghost-free by construction (:meth:`__getstate__`
        compacts); a refrozen snapshot always carries its index.
        """
        if self._index is None:
            self._index = {u: i for i, u in enumerate(self.nodes)}
        return self._index

    def alive_nodes(self) -> List[Node]:
        """The graph's nodes in enumeration order, ghost slots skipped."""
        if not self._num_ghosts:
            return self.nodes
        index = self.index
        return [
            nd for i, nd in enumerate(self.nodes) if index.get(nd) == i
        ]

    def node_id(self, node: Node) -> int:
        try:
            return self.index[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def has_node(self, node: Node) -> bool:
        return node in self.index

    def rows(self) -> List[List[Tuple[int, float]]]:
        """Per-node ``(neighbor id, weight)`` lists — the kernel hot path.

        Plain Python lists: iterating numpy scalars inside the Dijkstra
        loop would cost more than the hashing it replaces.  A frozen
        snapshot carries its rows from birth; an unpickled one (worker
        shipping) rebuilds them here from the CSR arrays, recovering
        the identical float64 values via ``ndarray.tolist()``.
        """
        if self._rows is None:
            idx = self._indices.tolist()
            wts = self._weights.tolist()
            ptr = self._indptr.tolist()
            self._rows = [
                list(zip(idx[a:b], wts[a:b]))
                for a, b in zip(ptr, ptr[1:])
            ]
        return self._rows

    def neighbor_ids(self, i: int) -> Iterator[Tuple[int, float]]:
        """``(neighbor id, weight)`` pairs of node id ``i``."""
        return iter(self.rows()[i])

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; raises if absent."""
        ui = self.node_id(u)
        vi = self.node_id(v)
        for j, w in self.rows()[ui]:
            if j == vi:
                return w
        raise GraphError(f"edge ({u!r}, {v!r}) not in graph")

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Each undirected edge once, as ``(u, v, w)`` node objects."""
        nodes = self.nodes
        for i, row in enumerate(self.rows()):
            for j, w in row:
                if j > i:
                    yield (nodes[i], nodes[j], w)
                elif j == i:  # pragma: no cover - self-loops rejected
                    yield (nodes[i], nodes[j], w)

    # ------------------------------------------------------------------
    # lattice geometry (vectorized Manhattan heuristic support)
    # ------------------------------------------------------------------
    def lattice_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(xs, ys, valid)`` per node id; invalid coords are 0.0.

        ``valid[i]`` is False for nodes without a
        :func:`~repro.graph.search.lattice_coordinate`; the Manhattan
        table gives those nodes a bound of 0.0, exactly like the dict
        heuristic does.
        """
        if self._coords is None:
            from .search import lattice_coordinate

            n = len(self.nodes)
            xs = np.zeros(n, dtype=np.float64)
            ys = np.zeros(n, dtype=np.float64)
            valid = np.zeros(n, dtype=bool)
            for i, node in enumerate(self.nodes):
                c = lattice_coordinate(node)
                if c is not None:
                    xs[i] = c[0]
                    ys[i] = c[1]
                    valid[i] = True
            self._coords = (xs, ys, valid)
        return self._coords

    def manhattan_table(
        self, target: Node, scale: float
    ) -> Optional[List[float]]:
        """Per-id Manhattan bounds toward ``target``, or None.

        Each entry equals ``scale * (|x - tx| + |y - ty|)`` computed
        with the identical IEEE operation order as the scalar heuristic
        in :func:`~repro.graph.search.manhattan_heuristic`, so the flat
        A* kernel sees bit-identical ``f`` keys.  Nodes without a
        lattice coordinate get 0.0 (the scalar fallback).

        Tables are memoized per ``(target, scale)`` — the snapshot is
        immutable, and the metric-closure sweeps of the Steiner
        algorithms revisit the same sink many times per net.
        """
        cached = self._mh_tables.get((target, scale))
        if cached is not None:
            return cached
        from .search import lattice_coordinate

        tc = lattice_coordinate(target)
        if tc is None:
            return None
        tx, ty = tc
        xs, ys, valid = self.lattice_arrays()
        h = scale * (np.abs(xs - tx) + np.abs(ys - ty))
        if not valid.all():
            h = np.where(valid, h, 0.0)
        table = h.tolist()
        self._mh_tables[(target, scale)] = table
        return table

    # ------------------------------------------------------------------
    # conversion / pickling
    # ------------------------------------------------------------------
    def thaw(self) -> Graph:
        """Reconstruct a mutable :class:`Graph` from this snapshot.

        The rebuilt adjacency has the identical node enumeration and
        per-node neighbor order as the graph this snapshot was frozen
        from, so ``freeze() -> thaw() -> freeze()`` is a fixpoint and
        searches over the thawed graph break ties identically.

        The thawed graph is born with this snapshot pre-installed as
        its frozen view: it *is* the CSR image of the adjacency just
        built, so the first ``freeze()`` after a few mutations (the
        worker's pin attachment, the per-pass reset) patches this view
        incrementally instead of rebuilding it from scratch.
        """
        nodes = self.nodes
        rows = self.rows()
        adj: Dict[Node, Dict[Node, float]] = {}
        if self._num_ghosts:
            index = self.index
            for i, row in enumerate(rows):
                nd = nodes[i]
                if index.get(nd) != i:
                    continue
                adj[nd] = {nodes[j]: w for j, w in row}
        else:
            for i, row in enumerate(rows):
                adj[nodes[i]] = {nodes[j]: w for j, w in row}
        g = Graph()
        g._adjacency = adj
        g._num_edges = self.num_edges
        g._frozen = GraphView(self, g._version, g)
        g._dirty = set()
        g._dirty_added = []
        return g

    def __getstate__(self):
        # ship the compact CSR arrays, never the Python row lists —
        # a worker batch pickles one FlatGraph per batch, and arrays
        # serialize in a fraction of the space and time.  A refrozen
        # snapshot compacts its ghost slots away first, so unpickled
        # snapshots are always dense.
        flat = self
        if self._num_ghosts:
            flat = FlatGraph.from_graph(self.thaw())
        return (
            flat.nodes,
            flat.indptr,
            flat.indices,
            flat.weights,
            flat.num_edges,
        )

    def __setstate__(self, state) -> None:
        (
            self.nodes,
            self._indptr,
            self._indices,
            self._weights,
            self.num_edges,
        ) = state
        self._index = None
        self._rows = None
        self._coords = None
        self._mh_tables = {}
        self._num_ghosts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatGraph(|V|={self.num_nodes}, |E|={self.num_edges})"
        )


class GraphView:
    """A :class:`FlatGraph` stamped with the version it was frozen at.

    ``Graph.freeze()`` returns one of these and memoizes it until the
    next mutation; consumers holding a view can cheaply check whether
    it still describes a graph via :meth:`fresh`.  The search methods
    delegate to the flat kernels, which are bit-identical to the dict
    kernels (see the module docstring).
    """

    __slots__ = ("flat", "version", "_source")

    def __init__(
        self, flat: FlatGraph, version: int, source: Optional[Graph] = None
    ) -> None:
        self.flat = flat
        self.version = version
        self._source = weakref.ref(source) if source is not None else None

    @classmethod
    def from_graph(cls, graph: Graph) -> "GraphView":
        return cls(FlatGraph.from_graph(graph), graph.version, graph)

    def fresh(self, graph: Graph) -> bool:
        """True while this view still describes ``graph`` — it was
        frozen *from this graph object* and the graph has not mutated
        since.  A different graph is never fresh, even at an equal
        version count."""
        if self._source is not None and self._source() is not graph:
            return False
        return graph.version == self.version

    @property
    def num_nodes(self) -> int:
        return self.flat.num_nodes

    @property
    def num_edges(self) -> int:
        return self.flat.num_edges

    @property
    def nodes(self) -> Iterable[Node]:
        return self.flat.alive_nodes()

    def has_node(self, node: Node) -> bool:
        return self.flat.has_node(node)

    def thaw(self) -> Graph:
        return self.flat.thaw()

    def sssp(
        self,
        source: Node,
        targets: Optional[Iterable[Node]] = None,
        cutoff: Optional[float] = None,
    ) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        return flat_dijkstra(
            self.flat, source, targets=targets, cutoff=cutoff
        )

    def astar(
        self,
        source: Node,
        target: Node,
        heuristic,
        cutoff: Optional[float] = None,
    ) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        return flat_astar(
            self.flat, source, target, heuristic, cutoff=cutoff
        )

    def bidirectional(
        self, source: Node, target: Node
    ) -> Tuple[float, Optional[List[Node]]]:
        return flat_bidirectional(self.flat, source, target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphView({self.flat!r}, version={self.version})"


def flat_dijkstra(
    flat: FlatGraph,
    source: Node,
    targets: Optional[Iterable[Node]] = None,
    cutoff: Optional[float] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Plain Dijkstra over the CSR arrays.

    Bit-identical to :func:`~repro.graph.shortest_paths.dijkstra` on
    the graph ``flat`` was frozen from: identical ``(dist, pred)``
    values, identical tie-breaking, and identical dict iteration order
    (``dist`` in settlement order, ``pred`` in first-relaxation order).
    Budget checks and counter recording follow the same per-pop /
    per-call cadence as the dict kernel.

    One ``best`` array carries the whole seen/settled state: ``best[v]``
    is v's cheapest pushed label, frozen at the true distance once v
    settles.  The encoding is exact, not approximate — pushes improve
    ``best[v]`` strictly, so the entry carrying the current ``best[v]``
    is always the live one and a popped ``d > best[u]`` is precisely
    the dict kernel's stale pop; a settled node can never be re-pushed
    because ``nd = dist[u] + w >= dist[v]`` for non-negative weights.
    Push set, push order, settle order and stale-pop count therefore
    replay the dict kernel event for event.
    """
    index = flat.index
    src = index.get(source)
    if src is None:
        raise GraphError(f"source {source!r} not in graph")
    nodes = flat.nodes
    rows = flat.rows()
    n = len(nodes)

    # a target absent from the graph can never settle: like the dict
    # kernel's `remaining` set it holds the loop open to exhaustion
    remaining: Optional[set] = None
    missing = 0
    if targets is not None:
        remaining = set()
        absent = set()
        for t in targets:
            ti = index.get(t)
            if ti is None:
                absent.add(t)
            else:
                remaining.add(ti)
        remaining.discard(src)
        missing = len(absent)

    inf = INF
    best = [inf] * n
    pred_arr = [0] * n
    pred_order: List[int] = []
    dist: Dict[Node, float] = {}
    best[src] = 0.0
    counter = 0
    pops = 0
    budget = get_dijkstra_budget()
    heap: List[Tuple[float, int, int]] = [(0.0, 0, src)]
    heappop = heapq.heappop
    heappush = heapq.heappush
    if budget is None and remaining is None and cutoff is None:
        # hot path: the full unbudgeted SSSP the cache promotes
        while heap:
            d, _, u = heappop(heap)
            pops += 1
            if d > best[u]:
                continue
            dist[nodes[u]] = d
            for v, w in rows[u]:
                nd = d + w
                if nd < best[v]:
                    if best[v] == inf:
                        pred_order.append(v)
                    best[v] = nd
                    pred_arr[v] = u
                    counter += 1
                    heappush(heap, (nd, counter, v))
    else:
        while heap:
            d, _, u = heappop(heap)
            pops += 1
            if budget is not None:
                budget.check(pops, counter, backend="dijkstra")
            if d > best[u]:
                continue
            dist[nodes[u]] = d
            if remaining is not None:
                remaining.discard(u)
                if not remaining and not missing:
                    break
            for v, w in rows[u]:
                nd = d + w
                if nd < best[v]:
                    if cutoff is not None and nd > cutoff:
                        continue
                    if best[v] == inf:
                        pred_order.append(v)
                    best[v] = nd
                    pred_arr[v] = u
                    counter += 1
                    heappush(heap, (nd, counter, v))
    counters = get_dijkstra_counters()
    if counters is not None:
        counters.record(pops, counter, len(heap))
    pred: Dict[Node, Node] = {}
    for v in pred_order:
        pred[nodes[v]] = nodes[pred_arr[v]]
    return dist, pred


def flat_astar(
    flat: FlatGraph,
    source: Node,
    target: Node,
    heuristic: Callable[[Node], float],
    cutoff: Optional[float] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Goal-directed A* over the CSR arrays.

    Bit-identical to :func:`~repro.graph.search.astar` under the same
    heuristic.  Manhattan heuristics (``heuristic.key[0] ==
    "manhattan"``) are evaluated through a vectorized per-id table —
    elementwise the identical IEEE arithmetic as the scalar closure —
    while arbitrary heuristics are called on node objects at exactly
    the program points the dict kernel calls them.
    """
    index = flat.index
    src = index.get(source)
    if src is None:
        raise GraphError(f"source {source!r} not in graph")
    tgt = index.get(target)
    if tgt is None:
        raise GraphError(f"target {target!r} not in graph")
    nodes = flat.nodes
    rows = flat.rows()
    n = len(nodes)

    key = getattr(heuristic, "key", None)
    table: Optional[List[float]] = None
    if key is not None and key[0] == "manhattan":
        table = flat.manhattan_table(target, key[1])
    fn = heuristic

    inf = INF
    # `best[v]` = cheapest pushed g-label (the dict kernel's `seen`);
    # the explicit settled flags stay because A* under a non-consistent
    # heuristic may find a cheaper g for an already-settled node, and
    # the dict kernel skips that relaxation rather than re-pushing
    settled = bytearray(n)
    best = [inf] * n
    pred_arr = [0] * n
    pred_order: List[int] = []
    dist: Dict[Node, float] = {}
    best[src] = 0.0
    counter = 0
    pops = 0
    budget = get_dijkstra_budget()
    h_src = table[src] if table is not None else fn(nodes[src])
    # (f = g + h, tie counter, g, id), exactly as the dict kernel
    heap: List[Tuple[float, int, float, int]] = [(h_src, 0, 0.0, src)]
    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        _, _, g, u = heappop(heap)
        pops += 1
        if budget is not None:
            budget.check(pops, counter, backend="astar")
        if settled[u]:
            continue
        settled[u] = 1
        dist[nodes[u]] = g
        if u == tgt:
            break
        for v, w in rows[u]:
            if settled[v]:
                continue
            ng = g + w
            if cutoff is not None and ng > cutoff:
                continue
            if ng < best[v]:
                hv = table[v] if table is not None else fn(nodes[v])
                if hv == INF:
                    continue
                if best[v] == inf:
                    pred_order.append(v)
                best[v] = ng
                pred_arr[v] = u
                counter += 1
                heappush(heap, (ng + hv, counter, ng, v))
    counters = get_dijkstra_counters()
    if counters is not None:
        counters.record(pops, counter, len(heap))
    pred: Dict[Node, Node] = {}
    for v in pred_order:
        pred[nodes[v]] = nodes[pred_arr[v]]
    return dist, pred


def flat_bidirectional(
    flat: FlatGraph, source: Node, target: Node
) -> Tuple[float, Optional[List[Node]]]:
    """Two-frontier Dijkstra over the CSR arrays.

    Bit-identical to
    :func:`~repro.graph.search.bidirectional_dijkstra`: the shared push
    counter, the forward-on-ties frontier selection and the meeting
    rule replay the dict kernel's event sequence exactly, so the same
    meeting node is found and the re-accumulated forward-order distance
    is the same IEEE double.
    """
    index = flat.index
    src = index.get(source)
    if src is None:
        raise GraphError(f"source {source!r} not in graph")
    tgt = index.get(target)
    if tgt is None:
        raise GraphError(f"target {target!r} not in graph")
    if src == tgt:
        return 0.0, [source]
    nodes = flat.nodes
    rows = flat.rows()
    n = len(nodes)
    budget = get_dijkstra_budget()
    # side 0 = forward, side 1 = backward; flat arrays per side
    settled = (bytearray(n), bytearray(n))
    in_seen = (bytearray(n), bytearray(n))
    seen = ([0.0] * n, [0.0] * n)
    dist_vals = ([0.0] * n, [0.0] * n)
    pred_arr = ([0] * n, [0] * n)
    in_seen[0][src] = 1
    in_seen[1][tgt] = 1
    heap_f: List[Tuple[float, int, int]] = [(0.0, 0, src)]
    heap_b: List[Tuple[float, int, int]] = [(0.0, 0, tgt)]
    heaps = (heap_f, heap_b)
    counter = 0
    pops = 0
    best = INF
    meet = -1
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        side = 0 if heap_f[0][0] <= heap_b[0][0] else 1
        other = 1 - side
        heap = heaps[side]
        stl = settled[side]
        stl_other = settled[other]
        sn = seen[side]
        isn = in_seen[side]
        dv = dist_vals[side]
        pr = pred_arr[side]
        dv_other = dist_vals[other]
        sn_other = seen[other]
        isn_other = in_seen[other]
        d, _, u = heapq.heappop(heap)
        pops += 1
        if budget is not None:
            budget.check(pops, counter, backend="bidir")
        if stl[u]:
            continue
        stl[u] = 1
        dv[u] = d
        if stl_other[u] and d + dv_other[u] < best:
            best = d + dv_other[u]
            meet = u
        for v, w in rows[u]:
            if stl[v]:
                continue
            nd = d + w
            if not isn[v] or nd < sn[v]:
                isn[v] = 1
                sn[v] = nd
                pr[v] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
            if isn_other[v]:
                nb = nd + sn_other[v]
                if nb < best:
                    # any tentative other-side label is a realizable
                    # path length: this only ever tightens the bound
                    best = nb
                    meet = v
    counters = get_dijkstra_counters()
    if counters is not None:
        counters.record(pops, counter, len(heap_f) + len(heap_b))
    if meet < 0:
        return INF, None
    # rebuild the node path: forward half via the forward pred chain,
    # then the backward half appended toward the target
    chain = [meet]
    node = meet
    while node != src:
        node = pred_arr[0][node]
        chain.append(node)
    chain.reverse()
    node = meet
    while node != tgt:
        node = pred_arr[1][node]
        chain.append(node)
    # re-accumulate the distance in forward edge order along the found
    # path, exactly like the dict kernel (float addition order matters)
    d = 0.0
    for a, b in zip(chain, chain[1:]):
        for j, w in rows[a]:
            if j == b:
                d += w
                break
    return d, [nodes[i] for i in chain]


def flat_negotiated_search(
    flat: FlatGraph,
    sources,
    target: Node,
    factors: List[float],
    criticality: float = 0.0,
    heuristic=None,
    offsets=None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Multi-source negotiated-cost search over the CSR arrays.

    The flat counterpart of
    :func:`repro.graph.search.negotiated_search`: edge ``(u, v)`` with
    base weight ``w`` costs ``w * (crit + (1 - crit) * (factors[u] +
    factors[v]) / 2)``, where ``factors`` is the cost provider's dense
    per-id multiplier table (every entry ``>= 1``, see
    ``SearchPolicy.negotiated_search``).  The CSR arrays themselves are
    never touched — congestion lives entirely in ``factors``, so one
    frozen snapshot serves every net of an iteration.

    Seeds settle at ``g = offsets[node]`` (default 0) in the order
    given (the deterministic tie-break the negotiation loop relies on);
    the search stops once ``target`` settles.  A seeded node reachable
    more cheaply from another seed is relaxed like any node and gains a
    ``pred`` entry.  Manhattan heuristics run through the memoized
    per-id table like :func:`flat_astar`.
    """
    index = flat.index
    tgt = index.get(target)
    if tgt is None:
        raise GraphError(f"target {target!r} not in graph")
    if not 0.0 <= criticality <= 1.0:
        raise GraphError(
            f"criticality must be in [0, 1], got {criticality}"
        )
    crit = criticality
    mix = (1.0 - crit) * 0.5
    nodes = flat.nodes
    rows = flat.rows()
    n = len(nodes)
    if len(factors) < n:
        raise GraphError(
            f"factor table covers {len(factors)} ids but the snapshot "
            f"has {n}"
        )

    table: Optional[List[float]] = None
    fn = heuristic
    if heuristic is not None:
        key = getattr(heuristic, "key", None)
        if key is not None and key[0] == "manhattan":
            table = flat.manhattan_table(target, key[1])

    inf = INF
    best = [inf] * n
    pred_arr = [-1] * n
    pred_order: List[int] = []
    dist: Dict[Node, float] = {}
    heap: List[Tuple[float, int, float, int]] = []
    counter = 0
    for s in sources:
        si = index.get(s)
        if si is None:
            raise GraphError(f"source {s!r} not in graph")
        if best[si] < inf:
            continue
        g0 = offsets.get(s, 0.0) if offsets else 0.0
        if g0 < 0.0:
            raise GraphError(f"negative source offset {g0} for {s!r}")
        best[si] = g0
        if fn is None:
            hs = 0.0
        elif table is not None:
            hs = table[si]
        else:
            hs = fn(nodes[si])
        heap.append((g0 + hs, counter, g0, si))
        counter += 1
    if not heap:
        raise GraphError("negotiated search needs at least one source")
    heapq.heapify(heap)
    pops = 0
    budget = get_dijkstra_budget()
    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        _, _, g, u = heappop(heap)
        pops += 1
        if budget is not None:
            budget.check(pops, counter, backend="negotiate")
        if nodes[u] in dist:
            continue
        dist[nodes[u]] = g
        if u == tgt:
            break
        fu = factors[u]
        for v, w in rows[u]:
            if nodes[v] in dist:
                continue
            ng = g + w * (crit + mix * (fu + factors[v]))
            if ng < best[v]:
                if fn is None:
                    hv = 0.0
                elif table is not None:
                    hv = table[v]
                else:
                    hv = fn(nodes[v])
                if hv == INF:
                    continue
                if pred_arr[v] < 0:
                    pred_order.append(v)
                best[v] = ng
                pred_arr[v] = u
                counter += 1
                heappush(heap, (ng + hv, counter, ng, v))
    counters = get_dijkstra_counters()
    if counters is not None:
        counters.record(pops, counter, len(heap))
    pred: Dict[Node, Node] = {}
    for v in pred_order:
        pred[nodes[v]] = nodes[pred_arr[v]]
    return dist, pred
