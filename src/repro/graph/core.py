"""Undirected weighted graph used as the routing substrate.

The paper models the FPGA as an arbitrary weighted graph ``G = (V, E)``
(Section 2, Figure 2): every wire segment and programmable switch is an
edge whose weight reflects wirelength plus congestion.  This module
provides that substrate as a small, dependency-free adjacency-dict graph
with the exact operations the routing algorithms need:

* cheap neighbor iteration (Dijkstra inner loop),
* edge removal (resources committed to a routed net are deleted),
* weight updates (congestion re-weighting between nets),
* a monotonically increasing :attr:`Graph.version` so shortest-path caches
  can tell when their memoized results became stale.

Nodes may be any hashable value; the FPGA layer uses structured tuples
(e.g. ``("h", x, y, track)``) while the algorithm test-suites mostly use
small integers and grid coordinates.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """A simple undirected graph with positive edge weights.

    Parallel edges are not supported (the FPGA model never needs them:
    distinct physical wires become distinct nodes/edges by construction),
    and self-loops are rejected.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge("a", "b", 2.0)
    >>> g.add_edge("b", "c", 1.0)
    >>> g.weight("a", "b")
    2.0
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    """

    __slots__ = ("_adj", "_num_edges", "_version", "_version_hooks")

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        self._num_edges = 0
        self._version = 0
        self._version_hooks: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        """Advance the mutation counter and notify registered hooks."""
        self._version += 1
        if self._version_hooks:
            version = self._version
            for hook in self._version_hooks:
                hook(version)

    def add_version_hook(self, hook: Callable[[int], None]) -> None:
        """Register ``hook(version)`` to fire after every mutation.

        Hooks are the engine's observability tap: a
        :class:`~repro.engine.instrumentation.PassRecorder` counts graph
        mutations per routing pass without the router having to report
        them.  Hooks must be cheap and must not mutate the graph.
        """
        self._version_hooks.append(hook)

    def remove_version_hook(self, hook: Callable[[int], None]) -> None:
        """Unregister a previously added hook (no-op if absent)."""
        try:
            self._version_hooks.remove(hook)
        except ValueError:
            pass

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._adj:
            self._adj[node] = {}
            self._bump()

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add an undirected edge ``{u, v}`` with the given ``weight``.

        Adding an edge that already exists overwrites its weight.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} not allowed")
        if weight < 0:
            raise GraphError(f"negative weight {weight} on edge ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._bump()

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raise :class:`GraphError` if absent."""
        try:
            del self._adj[u][v]
            del self._adj[v][u]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None
        self._num_edges -= 1
        self._bump()

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        try:
            neighbors = self._adj.pop(node)
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None
        for other in neighbors:
            del self._adj[other][node]
        self._num_edges -= len(neighbors)
        self._bump()

    def set_weight(self, u: Node, v: Node, weight: float) -> None:
        """Update the weight of an existing edge."""
        if weight < 0:
            raise GraphError(f"negative weight {weight} on edge ({u!r}, {v!r})")
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._bump()

    def scale_weight(self, u: Node, v: Node, factor: float) -> None:
        """Multiply the weight of edge ``{u, v}`` by ``factor``."""
        self.set_weight(u, v, self.weight(u, v) * factor)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumped on every structural or weight change."""
        return self._version

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; raises if the edge is absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    def neighbors(self, node: Node) -> Iterable[Node]:
        try:
            return self._adj[node].keys()
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def neighbor_items(self, node: Node):
        """``(neighbor, weight)`` pairs — the Dijkstra hot path."""
        try:
            return self._adj[node].items()
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def degree(self, node: Node) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    @property
    def nodes(self) -> Iterable[Node]:
        return self._adj.keys()

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each undirected edge exactly once as ``(u, v, w)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # pickling (process-pool executors ship graph snapshots to workers;
    # version hooks are observer callbacks and do not travel)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self._adj, self._num_edges, self._version)

    def __setstate__(self, state) -> None:
        self._adj, self._num_edges, self._version = state
        self._version_hooks = []

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy (independent adjacency; node objects are shared)."""
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes`` (nodes absent from G are ignored)."""
        keep = {n for n in nodes if n in self._adj}
        g = Graph()
        for n in keep:
            g.add_node(n)
        for u in keep:
            for v, w in self._adj[u].items():
                if v in keep and not g.has_edge(u, v):
                    g.add_edge(u, v, w)
        return g

    def edge_subgraph(
        self, edge_list: Iterable[Edge]
    ) -> "Graph":
        """Subgraph containing exactly ``edge_list`` (weights from G)."""
        g = Graph()
        for u, v in edge_list:
            g.add_edge(u, v, self.weight(u, v))
        return g

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def connected_component(self, start: Node) -> set:
        """Set of nodes reachable from ``start``."""
        if start not in self._adj:
            raise GraphError(f"node {start!r} not in graph")
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def is_connected(self, within: Optional[Iterable[Node]] = None) -> bool:
        """True if the graph (or the given node subset) is mutually reachable.

        With ``within``, checks that all listed nodes lie in one connected
        component of the *full* graph (they need not induce a connected
        subgraph themselves) — exactly the feasibility question the router
        asks before attempting a net.
        """
        if within is not None:
            targets = list(within)
            if not targets:
                return True
            component = self.connected_component(targets[0])
            return all(t in component for t in targets)
        if not self._adj:
            return True
        first = next(iter(self._adj))
        return len(self.connected_component(first)) == self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_nodes}, |E|={self.num_edges})"


def edge_key(u: Node, v: Node) -> Edge:
    """Canonical (order-independent) key for an undirected edge.

    Uses a total order on ``repr`` when the nodes are not directly
    comparable, so mixed node types still produce a deterministic key.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)
