"""Undirected weighted graph used as the routing substrate.

The paper models the FPGA as an arbitrary weighted graph ``G = (V, E)``
(Section 2, Figure 2): every wire segment and programmable switch is an
edge whose weight reflects wirelength plus congestion.  This module
provides that substrate as a small, dependency-free adjacency-dict graph
with the exact operations the routing algorithms need:

* cheap neighbor iteration (Dijkstra inner loop),
* edge removal (resources committed to a routed net are deleted),
* weight updates (congestion re-weighting between nets),
* a monotonically increasing :attr:`Graph.version` so shortest-path caches
  can tell when their memoized results became stale.

Nodes may be any hashable value; the FPGA layer uses structured tuples
(e.g. ``("h", x, y, track)``) while the algorithm test-suites mostly use
small integers and grid coordinates.
"""

from __future__ import annotations

import warnings
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """A simple undirected graph with positive edge weights.

    Parallel edges are not supported (the FPGA model never needs them:
    distinct physical wires become distinct nodes/edges by construction),
    and self-loops are rejected.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge("a", "b", 2.0)
    >>> g.add_edge("b", "c", 1.0)
    >>> g.weight("a", "b")
    2.0
    >>> sorted(g.neighbors("b"))
    ['a', 'c']
    """

    __slots__ = (
        "_adjacency",
        "_num_edges",
        "_version",
        "_version_hooks",
        "_frozen",
        "_dirty",
        "_dirty_added",
        "__weakref__",
    )

    def __init__(self) -> None:
        self._adjacency: Dict[Node, Dict[Node, float]] = {}
        self._num_edges = 0
        self._version = 0
        self._version_hooks: List[Callable[[int], None]] = []
        self._frozen: Optional[object] = None
        # mutation delta since `_frozen` was built, for the incremental
        # refreeze: nodes whose adjacency row changed, and nodes added
        # (in insertion order).  None until a first freeze starts the
        # lineage — unfrozen graphs pay one None-check per mutation.
        self._dirty: Optional[set] = None
        self._dirty_added: List[Node] = []

    @property
    def _adj(self) -> Dict[Node, Dict[Node, float]]:
        """Deprecated alias for the internal adjacency store.

        .. deprecated::
            Reaching into ``Graph._adj`` bypasses version tracking and
            the frozen-view cache.  Use the public API instead:
            :meth:`neighbor_items` / :meth:`neighbors` for iteration,
            :meth:`freeze` for a flat snapshot.  This alias will be
            removed one release after the :class:`GraphView` redesign.
        """
        warnings.warn(
            "Graph._adj is deprecated; use neighbor_items()/neighbors() "
            "or Graph.freeze() instead (removal one release after the "
            "GraphView redesign)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._adjacency

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        """Advance the mutation counter and notify registered hooks."""
        self._version += 1
        if self._version_hooks:
            version = self._version
            for hook in self._version_hooks:
                hook(version)

    def add_version_hook(self, hook: Callable[[int], None]) -> None:
        """Register ``hook(version)`` to fire after every mutation.

        Hooks are the engine's observability tap: a
        :class:`~repro.engine.instrumentation.PassRecorder` counts graph
        mutations per routing pass without the router having to report
        them.  Hooks must be cheap and must not mutate the graph.
        """
        self._version_hooks.append(hook)

    def remove_version_hook(self, hook: Callable[[int], None]) -> None:
        """Unregister a previously added hook (no-op if absent)."""
        try:
            self._version_hooks.remove(hook)
        except ValueError:
            pass

    def _touch(self, u: Node, v: Node) -> None:
        """Record ``u``/``v`` in the refreeze delta (rows changed)."""
        dirty = self._dirty
        if dirty is not None:
            dirty.add(u)
            dirty.add(v)
            if len(dirty) > 8192:
                # delta too large to be worth patching; stop tracking
                # until the next freeze restarts the lineage
                self._dirty = None
                self._dirty_added = []

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._adjacency:
            self._adjacency[node] = {}
            if self._dirty is not None:
                self._dirty_added.append(node)
            self._bump()

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add an undirected edge ``{u, v}`` with the given ``weight``.

        Adding an edge that already exists overwrites its weight.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} not allowed")
        if weight < 0:
            raise GraphError(f"negative weight {weight} on edge ({u!r}, {v!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adjacency[u]:
            self._num_edges += 1
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._touch(u, v)
        self._bump()

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raise :class:`GraphError` if absent."""
        try:
            del self._adjacency[u][v]
            del self._adjacency[v][u]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None
        self._num_edges -= 1
        self._touch(u, v)
        self._bump()

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        try:
            neighbors = self._adjacency.pop(node)
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None
        for other in neighbors:
            del self._adjacency[other][node]
        self._num_edges -= len(neighbors)
        dirty = self._dirty
        if dirty is not None:
            dirty.add(node)
            dirty.update(neighbors)
            if len(dirty) > 8192:
                self._dirty = None
                self._dirty_added = []
        self._bump()

    def set_weight(self, u: Node, v: Node, weight: float) -> None:
        """Update the weight of an existing edge."""
        if weight < 0:
            raise GraphError(f"negative weight {weight} on edge ({u!r}, {v!r})")
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._adjacency[u][v] = weight
        self._adjacency[v][u] = weight
        self._touch(u, v)
        self._bump()

    def scale_weight(self, u: Node, v: Node, factor: float) -> None:
        """Multiply the weight of edge ``{u, v}`` by ``factor``."""
        self.set_weight(u, v, self.weight(u, v) * factor)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumped on every structural or weight change."""
        return self._version

    def has_node(self, node: Node) -> bool:
        return node in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; raises if the edge is absent."""
        try:
            return self._adjacency[u][v]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    def neighbors(self, node: Node) -> Iterable[Node]:
        try:
            return self._adjacency[node].keys()
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def neighbor_items(self, node: Node):
        """``(neighbor, weight)`` pairs — the Dijkstra hot path."""
        try:
            return self._adjacency[node].items()
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def degree(self, node: Node) -> int:
        try:
            return len(self._adjacency[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    @property
    def nodes(self) -> Iterable[Node]:
        return self._adjacency.keys()

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate each undirected edge exactly once as ``(u, v, w)``."""
        seen = set()
        for u, nbrs in self._adjacency.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # pickling (process-pool executors ship graph snapshots to workers;
    # version hooks are observer callbacks and do not travel)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (self._adjacency, self._num_edges, self._version)

    def __setstate__(self, state) -> None:
        self._adjacency, self._num_edges, self._version = state
        self._version_hooks = []
        self._frozen = None
        self._dirty = None
        self._dirty_added = []

    # ------------------------------------------------------------------
    # frozen views
    # ------------------------------------------------------------------
    def freeze(self) -> "GraphView":  # noqa: F821 - forward ref
        """An immutable CSR snapshot of this graph (memoized).

        Returns a :class:`~repro.graph.flat.GraphView` whose flat
        int-indexed arrays mirror the current adjacency exactly —
        same node enumeration order, same per-node neighbor order —
        so the flat search kernels replicate the dict kernels'
        tie-breaking bit for bit.  The view is cached per
        :attr:`version`: repeated calls between mutations are free,
        and any mutation (commit, uncommit, reweight, pin attach)
        transparently invalidates it.

        Refreezing after a mutation is *incremental*: the graph tracks
        which rows changed since the previous view, and the new view
        shares every untouched row with the old one (see
        :meth:`FlatGraph.refrozen`).  A routing net touches a handful
        of rows — pin taps, committed junctions, reweighted segments —
        so the per-net refreeze is O(delta), not O(V+E).
        """
        view = self._frozen
        if view is not None and view.version == self._version:
            return view
        from .flat import FlatGraph, GraphView

        flat = None
        if view is not None and self._dirty is not None:
            flat = view.flat.refrozen(
                self._adjacency,
                self._dirty,
                self._dirty_added,
                self._num_edges,
            )
        if flat is None:
            flat = FlatGraph.from_graph(self)
        view = GraphView(flat, self._version, self)
        self._frozen = view
        self._dirty = set()
        self._dirty_added = []
        return view

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy (independent adjacency; node objects are shared)."""
        g = Graph()
        g._adjacency = {u: dict(nbrs) for u, nbrs in self._adjacency.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes`` (nodes absent from G are ignored)."""
        keep = {n for n in nodes if n in self._adjacency}
        g = Graph()
        for n in keep:
            g.add_node(n)
        for u in keep:
            for v, w in self._adjacency[u].items():
                if v in keep and not g.has_edge(u, v):
                    g.add_edge(u, v, w)
        return g

    def edge_subgraph(
        self, edge_list: Iterable[Edge]
    ) -> "Graph":
        """Subgraph containing exactly ``edge_list`` (weights from G)."""
        g = Graph()
        for u, v in edge_list:
            g.add_edge(u, v, self.weight(u, v))
        return g

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def connected_component(self, start: Node) -> set:
        """Set of nodes reachable from ``start``."""
        if start not in self._adjacency:
            raise GraphError(f"node {start!r} not in graph")
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def is_connected(self, within: Optional[Iterable[Node]] = None) -> bool:
        """True if the graph (or the given node subset) is mutually reachable.

        With ``within``, checks that all listed nodes lie in one connected
        component of the *full* graph (they need not induce a connected
        subgraph themselves) — exactly the feasibility question the router
        asks before attempting a net.
        """
        if within is not None:
            targets = list(within)
            if not targets:
                return True
            component = self.connected_component(targets[0])
            return all(t in component for t in targets)
        if not self._adjacency:
            return True
        first = next(iter(self._adjacency))
        return len(self.connected_component(first)) == self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_nodes}, |E|={self.num_edges})"


def edge_key(u: Node, v: Node) -> Edge:
    """Canonical (order-independent) key for an undirected edge.

    Uses a total order on ``repr`` when the nodes are not directly
    comparable, so mixed node types still produce a deterministic key.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)
