"""Minimum spanning trees: Prim over graphs, and MST over distance matrices.

KMB (Appendix 8.1) needs two MSTs per invocation — one over the complete
*distance graph* on the net and one over the expanded path-union subgraph —
and ZEL (Appendix 8.2) repeatedly re-evaluates the distance-graph MST
after triple contractions.  Both shapes are provided here:

* :func:`prim_mst` — classic Prim with a binary heap for sparse graphs;
* :func:`kruskal_mst` — union–find alternative (used for cross-checking
  and for edge-list inputs);
* :func:`dense_mst` — Prim in O(k²) over a dict-of-dict distance matrix,
  the right tool for metric closures over nets (k = |N| is tiny).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .core import Graph

Node = Hashable
INF = float("inf")


def prim_mst(
    graph: Graph, within: Optional[Iterable[Node]] = None
) -> Tuple[List[Tuple[Node, Node, float]], float]:
    """Minimum spanning tree of ``graph`` via Prim's algorithm.

    Parameters
    ----------
    graph:
        Weighted undirected graph.
    within:
        Optional node subset; the MST is computed on the induced
        subgraph.  Raises :class:`GraphError` if the (sub)graph is
        disconnected.

    Returns
    -------
    (edges, cost):
        MST edge list as ``(u, v, w)`` triples and their total weight.
    """
    target = graph if within is None else graph.subgraph(within)
    if target.num_nodes == 0:
        return [], 0.0
    start = next(iter(target.nodes))
    in_tree = {start}
    edges: List[Tuple[Node, Node, float]] = []
    counter = 0
    heap: List[Tuple[float, int, Node, Node]] = []
    for v, w in target.neighbor_items(start):
        counter += 1
        heapq.heappush(heap, (w, counter, start, v))
    while heap and len(in_tree) < target.num_nodes:
        w, _, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        edges.append((u, v, w))
        for x, wx in target.neighbor_items(v):
            if x not in in_tree:
                counter += 1
                heapq.heappush(heap, (wx, counter, v, x))
    if len(in_tree) != target.num_nodes:
        raise GraphError(
            f"graph disconnected: MST reached {len(in_tree)} of "
            f"{target.num_nodes} nodes"
        )
    return edges, sum(w for _, _, w in edges)


class UnionFind:
    """Disjoint-set forest with path compression and union by rank."""

    def __init__(self) -> None:
        self._parent: Dict[Node, Node] = {}
        self._rank: Dict[Node, int] = {}

    def find(self, x: Node) -> Node:
        parent = self._parent
        if x not in parent:
            parent[x] = x
            self._rank[x] = 0
            return x
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: Node, b: Node) -> bool:
        """Merge the sets containing a and b; False if already merged."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def connected(self, a: Node, b: Node) -> bool:
        return self.find(a) == self.find(b)


def kruskal_mst(
    edge_list: Sequence[Tuple[Node, Node, float]],
    nodes: Optional[Iterable[Node]] = None,
) -> Tuple[List[Tuple[Node, Node, float]], float]:
    """MST via Kruskal over an explicit edge list.

    ``nodes`` (when given) declares the full vertex set so disconnection
    can be detected; otherwise the vertex set is inferred from the edges.
    """
    uf = UnionFind()
    vertex_count = 0
    if nodes is not None:
        all_nodes = set(nodes)
        vertex_count = len(all_nodes)
        for n in all_nodes:
            uf.find(n)
    else:
        all_nodes = set()
        for u, v, _ in edge_list:
            all_nodes.add(u)
            all_nodes.add(v)
        vertex_count = len(all_nodes)

    chosen: List[Tuple[Node, Node, float]] = []
    for u, v, w in sorted(edge_list, key=lambda e: e[2]):
        if uf.union(u, v):
            chosen.append((u, v, w))
            if len(chosen) == vertex_count - 1:
                break
    if vertex_count and len(chosen) != vertex_count - 1:
        raise GraphError("edge list does not connect all declared nodes")
    return chosen, sum(w for _, _, w in chosen)


def dense_mst(
    dist: Dict[Node, Dict[Node, float]],
    nodes: Optional[Sequence[Node]] = None,
) -> Tuple[List[Tuple[Node, Node, float]], float]:
    """Prim's algorithm in O(k²) over a dense distance matrix.

    Parameters
    ----------
    dist:
        ``dist[u][v]`` is the (symmetric) distance between u and v.
        Missing entries are treated as unreachable.
    nodes:
        The vertex set; defaults to ``dist``'s keys.  Order fixes the
        deterministic tie-breaking.

    This is the MST used over metric closures (KMB step 2, ZEL's G').
    Since net sizes are small (|N| ≤ a few dozen), the quadratic scan
    beats heap-based Prim.
    """
    verts = list(nodes) if nodes is not None else list(dist)
    if not verts:
        return [], 0.0
    index = {v: i for i, v in enumerate(verts)}
    n = len(verts)
    in_tree = [False] * n
    best = [INF] * n
    best_edge: List[Optional[Node]] = [None] * n
    best[0] = 0.0
    edges: List[Tuple[Node, Node, float]] = []
    for _ in range(n):
        # pick the cheapest fringe vertex
        u_idx = -1
        u_cost = INF
        for i in range(n):
            if not in_tree[i] and best[i] < u_cost:
                u_cost = best[i]
                u_idx = i
        if u_idx < 0:
            raise GraphError("distance matrix disconnected")
        in_tree[u_idx] = True
        u = verts[u_idx]
        if best_edge[u_idx] is not None:
            edges.append((best_edge[u_idx], u, u_cost))
        row = dist.get(u, {})
        for v, w in row.items():
            i = index.get(v)
            if i is not None and not in_tree[i] and w < best[i]:
                best[i] = w
                best_edge[i] = u
    return edges, sum(w for _, _, w in edges)


def mst_cost(dist: Dict[Node, Dict[Node, float]],
             nodes: Optional[Sequence[Node]] = None) -> float:
    """Total weight of :func:`dense_mst` (ZEL's inner-loop quantity)."""
    return dense_mst(dist, nodes)[1]
