"""Structural checks and pruning for routing trees.

KMB's last step "delete[s] pendant edges ... until all leaves are members
of N"; every heuristic's output must be a tree that spans its net.  These
helpers centralize those invariants so each algorithm (and the test
suite) can assert them uniformly.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import GraphError
from .core import Graph

Node = Hashable


def is_tree(graph: Graph) -> bool:
    """True iff ``graph`` is connected and acyclic (or empty)."""
    n = graph.num_nodes
    if n == 0:
        return True
    return graph.num_edges == n - 1 and graph.is_connected()


def spans(graph: Graph, terminals: Iterable[Node]) -> bool:
    """True iff every terminal is a node of ``graph``."""
    return all(graph.has_node(t) for t in terminals)


def assert_valid_steiner_tree(
    tree: Graph, terminals: Iterable[Node], host: Optional[Graph] = None
) -> None:
    """Raise :class:`GraphError` unless ``tree`` is a Steiner tree for
    ``terminals`` (optionally checking containment in ``host``).
    """
    terms = list(terminals)
    if not spans(tree, terms):
        missing = [t for t in terms if not tree.has_node(t)]
        raise GraphError(f"tree misses terminals {missing!r}")
    if not is_tree(tree):
        raise GraphError(
            f"not a tree: |V|={tree.num_nodes}, |E|={tree.num_edges}, "
            f"connected={tree.is_connected()}"
        )
    if host is not None:
        for u, v, w in tree.edges():
            if not host.has_edge(u, v):
                raise GraphError(f"tree edge ({u!r}, {v!r}) not in host graph")
            host_w = host.weight(u, v)
            if abs(host_w - w) > 1e-9 * max(1.0, abs(host_w)):
                raise GraphError(
                    f"tree edge ({u!r}, {v!r}) weight {w} != host {host_w}"
                )


def prune_non_terminal_leaves(tree: Graph, terminals: Iterable[Node]) -> Graph:
    """Repeatedly delete degree-1 nodes that are not terminals (in place).

    Returns the same graph object for chaining.  This is KMB's pendant
    deletion step and is also applied by DJKA after pruning the Dijkstra
    tree down to source–sink paths.
    """
    keep: Set[Node] = set(terminals)
    leaves = [
        n for n in list(tree.nodes)
        if n not in keep and tree.degree(n) <= 1
    ]
    while leaves:
        node = leaves.pop()
        if not tree.has_node(node):
            continue
        neighbors = list(tree.neighbors(node))
        tree.remove_node(node)
        for nb in neighbors:
            if nb not in keep and tree.has_node(nb) and tree.degree(nb) <= 1:
                leaves.append(nb)
    return tree


def tree_paths_from(
    tree: Graph, root: Node
) -> Tuple[dict, dict]:
    """Distances and predecessors from ``root`` within a tree via DFS.

    Cheaper than Dijkstra (no heap) and exact because trees have unique
    paths.  Used to measure per-sink pathlengths of heuristic outputs.
    """
    if not tree.has_node(root):
        raise GraphError(f"root {root!r} not in tree")
    dist = {root: 0.0}
    pred: dict = {}
    stack: List[Node] = [root]
    while stack:
        u = stack.pop()
        for v, w in tree.neighbor_items(u):
            if v not in dist:
                dist[v] = dist[u] + w
                pred[v] = u
                stack.append(v)
    return dist, pred
