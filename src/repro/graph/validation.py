"""Structural checks and pruning for routing trees.

KMB's last step "delete[s] pendant edges ... until all leaves are members
of N"; every heuristic's output must be a tree that spans its net.  These
helpers centralize those invariants so each algorithm (and the test
suite) can assert them uniformly.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import GraphError
from .core import Graph

Node = Hashable


def is_tree(graph: Graph) -> bool:
    """True iff ``graph`` is connected and acyclic (or empty)."""
    n = graph.num_nodes
    if n == 0:
        return True
    return graph.num_edges == n - 1 and graph.is_connected()


def spans(graph: Graph, terminals: Iterable[Node]) -> bool:
    """True iff every terminal is a node of ``graph``."""
    return all(graph.has_node(t) for t in terminals)


#: stable violation codes emitted by :func:`steiner_tree_violations`
TREE_MISSES_TERMINAL = "TREE_MISSES_TERMINAL"
TREE_NOT_TREE = "TREE_NOT_TREE"
TREE_EDGE_NOT_IN_HOST = "TREE_EDGE_NOT_IN_HOST"
TREE_EDGE_WEIGHT_MISMATCH = "TREE_EDGE_WEIGHT_MISMATCH"

#: default relative tolerance for host-weight agreement
WEIGHT_TOL = 1e-9


def steiner_tree_violations(
    tree: Graph,
    terminals: Iterable[Node],
    host: Optional[Graph] = None,
    *,
    tol: float = WEIGHT_TOL,
) -> List[Tuple[str, str]]:
    """Enumerate every Steiner-tree violation as ``(code, message)``.

    The single implementation behind :func:`assert_valid_steiner_tree`
    and the :mod:`repro.validate` result checker: a valid tree spans
    its terminals, is connected and acyclic, and (when ``host`` is
    given) uses only host edges at host weights.  An edge absent from
    the host (its weight is *missing*) and an edge present at a
    *mismatched* weight are distinct failures — the former means the
    tree claims a resource the device does not have, the latter that
    bookkeeping drifted — so they carry distinct codes.
    """
    violations: List[Tuple[str, str]] = []
    terms = list(terminals)
    missing = [t for t in terms if not tree.has_node(t)]
    if missing:
        violations.append(
            (TREE_MISSES_TERMINAL, f"tree misses terminals {missing!r}")
        )
    if not is_tree(tree):
        violations.append(
            (
                TREE_NOT_TREE,
                f"not a tree: |V|={tree.num_nodes}, |E|={tree.num_edges}, "
                f"connected={tree.is_connected()}",
            )
        )
    if host is not None:
        for u, v, w in tree.edges():
            if not host.has_edge(u, v):
                violations.append(
                    (
                        TREE_EDGE_NOT_IN_HOST,
                        f"tree edge ({u!r}, {v!r}) not in host graph "
                        f"(host weight missing)",
                    )
                )
                continue
            host_w = host.weight(u, v)
            if abs(host_w - w) > tol * max(1.0, abs(host_w)):
                violations.append(
                    (
                        TREE_EDGE_WEIGHT_MISMATCH,
                        f"tree edge ({u!r}, {v!r}) weight {w} != host "
                        f"{host_w}",
                    )
                )
    return violations


def assert_valid_steiner_tree(
    tree: Graph,
    terminals: Iterable[Node],
    host: Optional[Graph] = None,
    *,
    tol: float = WEIGHT_TOL,
) -> None:
    """Raise :class:`GraphError` unless ``tree`` is a Steiner tree for
    ``terminals`` (optionally checking containment in ``host``).

    The raised error's message is the first violation found by
    :func:`steiner_tree_violations`; its ``code`` attribute carries the
    violation's stable code.
    """
    violations = steiner_tree_violations(tree, terminals, host, tol=tol)
    if violations:
        code, message = violations[0]
        exc = GraphError(message)
        exc.code = code
        raise exc


def prune_non_terminal_leaves(tree: Graph, terminals: Iterable[Node]) -> Graph:
    """Repeatedly delete degree-1 nodes that are not terminals (in place).

    Returns the same graph object for chaining.  This is KMB's pendant
    deletion step and is also applied by DJKA after pruning the Dijkstra
    tree down to source–sink paths.
    """
    keep: Set[Node] = set(terminals)
    leaves = [
        n for n in list(tree.nodes)
        if n not in keep and tree.degree(n) <= 1
    ]
    while leaves:
        node = leaves.pop()
        if not tree.has_node(node):
            continue
        neighbors = list(tree.neighbors(node))
        tree.remove_node(node)
        for nb in neighbors:
            if nb not in keep and tree.has_node(nb) and tree.degree(nb) <= 1:
                leaves.append(nb)
    return tree


def tree_paths_from(
    tree: Graph, root: Node
) -> Tuple[dict, dict]:
    """Distances and predecessors from ``root`` within a tree via DFS.

    Cheaper than Dijkstra (no heap) and exact because trees have unique
    paths.  Used to measure per-sink pathlengths of heuristic outputs.
    """
    if not tree.has_node(root):
        raise GraphError(f"root {root!r} not in tree")
    dist = {root: 0.0}
    pred: dict = {}
    stack: List[Node] = [root]
    while stack:
        u = stack.pop()
        for v, w in tree.neighbor_items(u):
            if v not in dist:
                dist[v] = dist[u] + w
                pred[v] = u
                stack.append(v)
    return dist, pred
