"""Multi-weighted routing graphs (the framework of [4, 7]).

Section 2 notes the authors' companion work: "a routing framework where
mutually competing objectives (such as congestion, wirelength, and jog
minimization) may be simultaneously optimized" by attaching a *vector*
of weights to each edge and scalarizing with tunable coefficients.
This module provides that framework over the same :class:`Graph`
substrate, so every algorithm in the library runs unchanged on any
chosen objective blend:

>>> mwg = MultiWeightGraph(objectives=("wirelength", "congestion"))
>>> mwg.add_edge("a", "b", wirelength=2.0, congestion=0.5)
>>> g = mwg.scalarize({"wirelength": 1.0, "congestion": 3.0})
>>> g.weight("a", "b")
3.5
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..errors import GraphError
from .core import Graph, edge_key

Node = Hashable


class MultiWeightGraph:
    """An undirected graph whose edges carry one weight per objective.

    Parameters
    ----------
    objectives:
        Ordered names of the weight components.  Every edge must supply
        all of them (missing components default to 0).
    """

    def __init__(self, objectives: Iterable[str]):
        self.objectives: Tuple[str, ...] = tuple(objectives)
        if not self.objectives:
            raise GraphError("need at least one objective")
        if len(set(self.objectives)) != len(self.objectives):
            raise GraphError("duplicate objective names")
        self._edges: Dict[Tuple, Dict[str, float]] = {}
        self._nodes: set = set()

    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._nodes.add(node)

    def add_edge(self, u: Node, v: Node, **weights: float) -> None:
        """Add an edge with named per-objective weights.

        Unknown objective names are rejected; omitted ones default 0.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} not allowed")
        unknown = set(weights) - set(self.objectives)
        if unknown:
            raise GraphError(f"unknown objectives {sorted(unknown)}")
        vector = {name: float(weights.get(name, 0.0))
                  for name in self.objectives}
        for name, val in vector.items():
            if val < 0:
                raise GraphError(
                    f"negative {name} weight on edge ({u!r}, {v!r})"
                )
        self._nodes.add(u)
        self._nodes.add(v)
        self._edges[edge_key(u, v)] = vector

    def remove_edge(self, u: Node, v: Node) -> None:
        try:
            del self._edges[edge_key(u, v)]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def weight_vector(self, u: Node, v: Node) -> Dict[str, float]:
        try:
            return dict(self._edges[edge_key(u, v)])
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    def set_component(
        self, u: Node, v: Node, objective: str, value: float
    ) -> None:
        """Update one objective component of an existing edge.

        The router-style use: bump the ``congestion`` component after
        each net while the ``wirelength`` component stays fixed.
        """
        if objective not in self.objectives:
            raise GraphError(f"unknown objective {objective!r}")
        if value < 0:
            raise GraphError("weights must be >= 0")
        key = edge_key(u, v)
        if key not in self._edges:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._edges[key][objective] = value

    # ------------------------------------------------------------------
    def scalarize(
        self, coefficients: Mapping[str, float]
    ) -> Graph:
        """Collapse to a plain :class:`Graph` under a weighted sum.

        ``coefficients`` maps objective → multiplier (missing → 0).
        The result is a snapshot: later multi-weight edits don't
        propagate (rebuild after re-weighting, exactly as the router
        rebuilds congestion weights between nets).
        """
        unknown = set(coefficients) - set(self.objectives)
        if unknown:
            raise GraphError(f"unknown objectives {sorted(unknown)}")
        g = Graph()
        for node in self._nodes:
            g.add_node(node)
        for (u, v), vector in self._edges.items():
            total = sum(
                coefficients.get(name, 0.0) * val
                for name, val in vector.items()
            )
            g.add_edge(u, v, total)
        return g

    def pareto_compare(
        self,
        tree_a: Iterable[Tuple[Node, Node]],
        tree_b: Iterable[Tuple[Node, Node]],
    ) -> Optional[int]:
        """Pareto-compare two edge sets across all objectives.

        Returns -1 if ``tree_a`` dominates (no objective worse, one
        strictly better), +1 if ``tree_b`` dominates, 0 if equal, and
        ``None`` if incomparable.
        """
        totals_a = self.tree_cost(tree_a)
        totals_b = self.tree_cost(tree_b)
        a_better = any(
            totals_a[k] < totals_b[k] - 1e-12 for k in self.objectives
        )
        b_better = any(
            totals_b[k] < totals_a[k] - 1e-12 for k in self.objectives
        )
        if a_better and b_better:
            return None
        if a_better:
            return -1
        if b_better:
            return 1
        return 0

    def tree_cost(
        self, edges: Iterable[Tuple[Node, Node]]
    ) -> Dict[str, float]:
        """Per-objective totals of an edge collection."""
        totals = {name: 0.0 for name in self.objectives}
        for u, v in edges:
            vector = self.weight_vector(u, v)
            for name in self.objectives:
                totals[name] += vector[name]
        return totals


def sweep_tradeoff(
    mwg: MultiWeightGraph,
    net,
    algorithm,
    objective_x: str,
    objective_y: str,
    lambdas: Iterable[float],
) -> List[Tuple[float, float, float]]:
    """Trace a tradeoff curve between two objectives.

    For each λ, scalarize with ``(1−λ)·x + λ·y``, run ``algorithm`` on
    the resulting plain graph, and report
    ``(λ, total_x, total_y)`` of the produced tree — the multi-weighted
    routing experiment of [4, 7].
    """
    out: List[Tuple[float, float, float]] = []
    for lam in lambdas:
        if not 0.0 <= lam <= 1.0:
            raise GraphError("lambda must be in [0, 1]")
        g = mwg.scalarize({objective_x: 1.0 - lam, objective_y: lam})
        tree = algorithm(g, net)
        totals = mwg.tree_cost(
            (u, v) for u, v, _ in tree.tree.edges()
        )
        out.append((lam, totals[objective_x], totals[objective_y]))
    return out
