"""Metric closure ("distance graph") over a set of terminals.

KMB's first step (Appendix 8.1) constructs *G'*, "the complete graph over
N with the weight of each edge equal to the cost of the corresponding
shortest path in G"; ZEL and DOM operate on the same object.  We
represent it as a symmetric dict-of-dicts distance matrix plus the cache
needed to expand closure edges back into real paths in G.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..errors import DisconnectedError
from .core import Graph
from .shortest_paths import ShortestPathCache

Node = Hashable
INF = float("inf")


class DistanceGraph:
    """The complete shortest-path distance graph over ``terminals``.

    Parameters
    ----------
    cache:
        Shortest-path cache for the underlying graph G.  SSSPs are rooted
        at the terminals, so building the closure costs
        ``O(|N| · (|E| + |V| log |V|))`` — the bound quoted throughout
        Sections 3–4 of the paper.
    terminals:
        The nodes of the closure (a net, possibly plus Steiner candidates).

    The object is intentionally *not* live: it snapshots distances at
    construction time.  Callers rebuild it (cheaply, thanks to the cache)
    after mutating the terminal set.
    """

    def __init__(self, cache: ShortestPathCache, terminals: Sequence[Node]):
        self._cache = cache
        self._terminals: Tuple[Node, ...] = tuple(terminals)
        self._matrix: Dict[Node, Dict[Node, float]] = {
            t: {} for t in self._terminals
        }
        # Distances are looked up pairwise through the cache, which
        # answers from whichever endpoint already has a memoized SSSP.
        # This is what lets IGMST/IDOM evaluate a fresh Steiner candidate
        # without a Dijkstra rooted at the candidate: the net terminals
        # are warm, the candidate is reached from their side.
        terms = self._terminals
        for i, u in enumerate(terms):
            for v in terms[i + 1:]:
                d = cache.dist(u, v)
                if d == INF:
                    raise DisconnectedError(u, v)
                self._matrix[u][v] = d
                self._matrix[v][u] = d

    @property
    def terminals(self) -> Tuple[Node, ...]:
        return self._terminals

    @property
    def matrix(self) -> Dict[Node, Dict[Node, float]]:
        """Symmetric distance matrix ``matrix[u][v] = minpath_G(u, v)``."""
        return self._matrix

    def dist(self, u: Node, v: Node) -> float:
        if u == v:
            return 0.0
        return self._matrix[u][v]

    def expand_edge(self, u: Node, v: Node) -> List[Node]:
        """The actual shortest path in G realizing closure edge (u, v)."""
        return self._cache.path(u, v)

    def expand_edges(
        self, edges: Iterable[Tuple[Node, Node]]
    ) -> Graph:
        """Union of the shortest paths realizing ``edges`` — KMB's G''."""
        g = Graph()
        base = self._cache.graph
        for u, v in edges:
            path = self.expand_edge(u, v)
            if len(path) == 1:
                g.add_node(path[0])
            for a, b in zip(path, path[1:]):
                g.add_edge(a, b, base.weight(a, b))
        return g


def terminal_distances(
    cache: ShortestPathCache, terminals: Sequence[Node]
) -> Dict[Node, Dict[Node, float]]:
    """Bare distance matrix over ``terminals`` (no path expansion support)."""
    return DistanceGraph(cache, terminals).matrix
