"""repro — reproduction of Alexander & Robins (DAC 1995),
"New Performance-Driven FPGA Routing Algorithms".

The library provides, as importable building blocks:

* a weighted-graph substrate (:mod:`repro.graph`),
* graph Steiner tree heuristics for non-critical nets
  (:mod:`repro.steiner`): KMB, Zelikovsky, and the paper's iterated
  IGMST template (IKMB / IZEL),
* graph Steiner arborescence heuristics for critical nets
  (:mod:`repro.arborescence`): DJKA, DOM, PFA and IDOM,
* a symmetrical-array FPGA architecture model and routing-resource
  graph (:mod:`repro.fpga`) for Xilinx 3000/4000-series style parts,
* a complete congestion-aware detailed router with move-to-front net
  re-ordering and minimum-channel-width search (:mod:`repro.router`),
* experiment drivers regenerating every table and figure of the paper
  (:mod:`repro.analysis`), and
* text/SVG visualization of routed FPGAs (:mod:`repro.viz`).

Quickstart
----------
>>> import random
>>> from repro import grid_graph, random_net, ikmb, idom
>>> g = grid_graph(20, 20)
>>> net = random_net(g, 5, random.Random(1))
>>> steiner = ikmb(g, net)     # minimum-wirelength routing
>>> critical = idom(g, net)    # shortest-paths routing
>>> critical.max_pathlength <= steiner.max_pathlength or True
True
"""

from .arborescence import (
    DominanceOracle,
    dom,
    djka,
    idom,
    optimal_arborescence_tree,
    pfa,
)
from .errors import (
    ArchitectureError,
    DisconnectedError,
    GraphError,
    NetError,
    ReproError,
    RoutingError,
    UnroutableError,
)
from .graph import (
    Graph,
    ShortestPathCache,
    dijkstra,
    grid_graph,
    random_connected_graph,
    random_net,
    shortest_path,
)
from .net import Net
from .steiner import (
    RoutingTree,
    igmst,
    ikmb,
    izel,
    kmb,
    optimal_steiner_tree,
    zel,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "DisconnectedError",
    "NetError",
    "ArchitectureError",
    "RoutingError",
    "UnroutableError",
    # substrate
    "Graph",
    "ShortestPathCache",
    "dijkstra",
    "shortest_path",
    "grid_graph",
    "random_connected_graph",
    "random_net",
    "Net",
    # steiner
    "RoutingTree",
    "kmb",
    "zel",
    "igmst",
    "ikmb",
    "izel",
    "optimal_steiner_tree",
    # arborescence
    "DominanceOracle",
    "djka",
    "dom",
    "pfa",
    "idom",
    "optimal_arborescence_tree",
]
