"""repro — reproduction of Alexander & Robins (DAC 1995),
"New Performance-Driven FPGA Routing Algorithms".

The library provides, as importable building blocks:

* a weighted-graph substrate (:mod:`repro.graph`),
* graph Steiner tree heuristics for non-critical nets
  (:mod:`repro.steiner`): KMB, Zelikovsky, and the paper's iterated
  IGMST template (IKMB / IZEL),
* graph Steiner arborescence heuristics for critical nets
  (:mod:`repro.arborescence`): DJKA, DOM, PFA and IDOM,
* a symmetrical-array FPGA architecture model and routing-resource
  graph (:mod:`repro.fpga`) for Xilinx 3000/4000-series style parts,
* a complete congestion-aware detailed router with move-to-front net
  re-ordering and minimum-channel-width search (:mod:`repro.router`),
* experiment drivers regenerating every table and figure of the paper
  (:mod:`repro.analysis`), and
* text/SVG visualization of routed FPGAs (:mod:`repro.viz`).

Quickstart
----------
>>> import random
>>> from repro import grid_graph, random_net, ikmb, idom
>>> g = grid_graph(20, 20)
>>> net = random_net(g, 5, random.Random(1))
>>> steiner = ikmb(g, net)     # minimum-wirelength routing
>>> critical = idom(g, net)    # shortest-paths routing
>>> critical.max_pathlength <= steiner.max_pathlength or True
True
"""

from .arborescence import (
    DominanceOracle,
    dom,
    djka,
    idom,
    optimal_arborescence_tree,
    pfa,
)
from .errors import (
    AdmissionError,
    ArchitectureError,
    CheckpointError,
    DisconnectedError,
    EngineError,
    EngineTimeoutError,
    FormatError,
    GraphError,
    JobError,
    JournalError,
    NetError,
    ReproError,
    RoutingError,
    ServiceError,
    UnroutableError,
    ValidationError,
    VerificationError,
    WorkerCrashError,
)
from .graph import (
    FlatGraph,
    Graph,
    GraphView,
    SearchPolicy,
    ShortestPathCache,
    dijkstra,
    grid_graph,
    random_connected_graph,
    random_net,
    shortest_path,
)
from .net import Net
from .steiner import (
    RoutingTree,
    igmst,
    ikmb,
    izel,
    kmb,
    optimal_steiner_tree,
    zel,
)

__version__ = "1.0.0"


def route(
    circuit_or_netlist,
    *,
    arch=None,
    config=None,
    engine="serial",
    trace=None,
    max_workers=None,
    fraction=1.0,
    seed=1,
    w_max=40,
    checkpoint=None,
    resume=None,
):
    """Route a circuit — the library's one-call front door.

    Parameters
    ----------
    circuit_or_netlist:
        A :class:`~repro.fpga.netlist.PlacedCircuit`, or the name of a
        built-in benchmark circuit (e.g. ``"busc"``, ``"term1"``) to
        synthesize from its published statistics.
    arch:
        Target :class:`~repro.fpga.architecture.Architecture`.  When
        omitted, the minimum routable channel width is searched for the
        circuit's family (the paper's headline experiment) and the
        result carries the width found.
    config:
        :class:`~repro.router.RouterConfig`; defaults apply otherwise.
    engine:
        ``"serial"`` (default, reference semantics), ``"thread"`` or
        ``"process"`` — see :mod:`repro.engine`.
    trace:
        Path or open text file; when given, the engine's JSON trace of
        the (successful) routing is written there.
    max_workers:
        Worker-pool size for the parallel engines.
    fraction, seed:
        Only used when ``circuit_or_netlist`` is a benchmark name:
        circuit scale (1.0 = published size) and synthesis seed.
    w_max:
        Upper bound for the minimum-width search when ``arch`` is None.
    checkpoint:
        File to snapshot the negotiation state into after every
        committed pass (removed again on success); see
        :mod:`repro.engine.checkpoint`.
    resume:
        Checkpoint file from an interrupted run to continue from —
        the resumed run is bit-identical to an uninterrupted one.
        With ``arch`` given the file must exist; in width-search mode
        a missing file simply starts the sweep fresh.

    Returns
    -------
    :class:`~repro.router.result.RoutingResult`
        The complete routing; raises :class:`UnroutableError` if the
        given ``arch`` cannot route the circuit, :class:`RoutingError`
        if no width up to ``w_max`` can.

    >>> import repro
    >>> result = repro.route("term1", fraction=0.2, engine="thread",
    ...                      config=repro.RouterConfig(algorithm="kmb"))
    ... # doctest: +SKIP
    """
    # local imports: the facade pulls in the FPGA/router/engine stack,
    # which would otherwise load (and cycle) at bare `import repro`
    from .engine import RoutingSession
    from .fpga import circuit_spec, scaled_spec, synthesize_circuit
    from .fpga import xc3000, xc4000
    from .fpga.netlist import PlacedCircuit
    from .router import minimum_channel_width

    family = None
    if isinstance(circuit_or_netlist, str):
        spec = scaled_spec(circuit_spec(circuit_or_netlist), fraction)
        family = xc3000 if spec.family == "xc3000" else xc4000
        circuit = synthesize_circuit(spec, seed=seed)
    elif isinstance(circuit_or_netlist, PlacedCircuit):
        circuit = circuit_or_netlist
    else:
        raise NetError(
            "route() takes a PlacedCircuit or a benchmark name, "
            f"not {type(circuit_or_netlist).__name__}"
        )

    if arch is not None:
        session = RoutingSession(
            arch, config, engine=engine, max_workers=max_workers
        )
        result = session.route(circuit, checkpoint=checkpoint, resume=resume)
        if trace is not None:
            session.write_trace(trace)
        return result

    # no architecture given: find the minimum routable channel width
    _, result = minimum_channel_width(
        circuit,
        family or xc3000,
        config,
        w_max=w_max,
        engine=engine,
        max_workers=max_workers,
        trace=trace,
        checkpoint=checkpoint,
        resume=resume,
    )
    return result


#: names resolved lazily so `import repro` stays light — the FPGA /
#: router / engine stack loads on first attribute access
_LAZY_ATTRS = {
    "RouterConfig": ("repro.router", "RouterConfig"),
    "RoutingResult": ("repro.router.result", "RoutingResult"),
    "RoutingSession": ("repro.engine", "RoutingSession"),
    "minimum_channel_width": ("repro.router", "minimum_channel_width"),
    # validation / self-verification (see docs/validation.md)
    "Diagnostic": ("repro.validate", "Diagnostic"),
    "ValidationReport": ("repro.validate", "ValidationReport"),
    "validate_circuit": ("repro.validate", "validate_circuit"),
    "validate_architecture": ("repro.validate", "validate_architecture"),
    "verify_result": ("repro.validate", "verify_result"),
    # the durable routing job service (see docs/service.md)
    "RoutingService": ("repro.service", "RoutingService"),
    "JobStore": ("repro.service", "JobStore"),
    "AdmissionPolicy": ("repro.service", "AdmissionPolicy"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_ATTRS))


__all__ = [
    "__version__",
    "route",
    "RouterConfig",
    "RoutingResult",
    "RoutingSession",
    "minimum_channel_width",
    # validation
    "Diagnostic",
    "ValidationReport",
    "validate_circuit",
    "validate_architecture",
    "verify_result",
    # job service
    "RoutingService",
    "JobStore",
    "AdmissionPolicy",
    # errors
    "ReproError",
    "GraphError",
    "DisconnectedError",
    "NetError",
    "ArchitectureError",
    "RoutingError",
    "UnroutableError",
    "EngineError",
    "WorkerCrashError",
    "EngineTimeoutError",
    "CheckpointError",
    "ServiceError",
    "JournalError",
    "JobError",
    "AdmissionError",
    "FormatError",
    "ValidationError",
    "VerificationError",
    # substrate
    "Graph",
    "GraphView",
    "FlatGraph",
    "SearchPolicy",
    "ShortestPathCache",
    "dijkstra",
    "shortest_path",
    "grid_graph",
    "random_connected_graph",
    "random_net",
    "Net",
    # steiner
    "RoutingTree",
    "kmb",
    "zel",
    "igmst",
    "ikmb",
    "izel",
    "optimal_steiner_tree",
    # arborescence
    "DominanceOracle",
    "djka",
    "dom",
    "pfa",
    "idom",
    "optimal_arborescence_tree",
]
