"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch every library failure with a single ``except`` clause while still
being able to distinguish graph-level problems from routing-level ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A structural problem with a graph (missing node/edge, bad weight)."""


class DisconnectedError(GraphError):
    """Raised when a required path between two nodes does not exist.

    The FPGA router treats this as "the net is infeasible on the current
    (partially consumed) routing graph" and triggers the move-to-front
    re-ordering described in Section 5 of the paper.
    """

    def __init__(self, source, target, message: str | None = None):
        self.source = source
        self.target = target
        super().__init__(
            message
            or f"no path exists between {source!r} and {target!r}"
        )


class NetError(ReproError):
    """An invalid net specification (empty net, duplicated pins, ...)."""


class FormatError(ReproError):
    """A persisted artifact (circuit/result JSON) is malformed.

    Raised by :mod:`repro.io` instead of leaking raw ``KeyError`` /
    ``TypeError`` / ``json.JSONDecodeError`` to callers.  ``path``
    names the offending file when known, ``key`` the missing or
    ill-typed field.
    """

    def __init__(self, message: str, *, path=None, key=None):
        self.path = path
        self.key = key
        super().__init__(message)


class ValidationError(ReproError):
    """Input lint found blocking problems (see :mod:`repro.validate`).

    ``report`` carries the full :class:`~repro.validate.ValidationReport`
    so callers can inspect every :class:`~repro.validate.Diagnostic`
    (stable code, severity, location) instead of parsing the message.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class VerificationError(ValidationError):
    """The independent result checker rejected a routing result.

    Raised when ``RouterConfig.verify`` is enabled and
    :func:`repro.validate.verify_result` finds violations the repair
    machinery could not (or was not asked to) fix.
    """


class ArchitectureError(ReproError):
    """An invalid FPGA architecture specification."""


class RoutingError(ReproError):
    """The detailed router could not produce a complete routing."""


class EngineError(ReproError):
    """A failure in the routing engine's execution machinery.

    Distinct from :class:`RoutingError`: the *circuit* may be perfectly
    routable, but the session could not complete the run (crashed
    workers, exhausted deadlines, unreadable checkpoints).
    """


class WorkerCrashError(EngineError):
    """A routing task kept failing after every recovery path.

    Raised only once the engine has exhausted its full recovery ladder
    for one task: bounded retries with backoff, a pool rebuild or
    engine degradation where applicable, and a final inline execution
    in the session's own thread.
    """

    def __init__(self, net: str = "?", attempts: int = 0, cause=None):
        self.net = net
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"net {net!r} crashed its routing task {attempts} time(s) "
            f"and failed inline as well (last error: {cause!r})"
        )

    def __reduce__(self):
        return (type(self), (self.net, self.attempts, repr(self.cause)))


class EngineTimeoutError(EngineError):
    """A configured deadline or operation budget was exceeded.

    ``kind`` is ``"pass"`` (``RouterConfig.pass_timeout_s``), ``"net"``
    (``route_timeout_s``) or ``"relaxations"`` (``max_relaxations``).
    ``partial`` carries whatever progress statistics the session had
    accumulated when the budget fired (passes completed, nets routed,
    elapsed seconds), so callers can report partial work.
    """

    def __init__(
        self,
        message: str = "engine deadline exceeded",
        *,
        kind: str = "pass",
        budget=None,
        elapsed=None,
        partial=None,
    ):
        self.kind = kind
        self.budget = budget
        self.elapsed = elapsed
        self.partial = dict(partial or {})
        super().__init__(message)

    def __reduce__(self):
        return (
            type(self),
            (self.args[0] if self.args else "engine deadline exceeded",),
            {
                "kind": self.kind,
                "budget": self.budget,
                "elapsed": self.elapsed,
                "partial": self.partial,
            },
        )


class CheckpointError(EngineError):
    """A session checkpoint could not be written, read or validated."""


class ServiceError(ReproError):
    """A failure in the routing job service (:mod:`repro.service`).

    Distinct from :class:`EngineError`: the routing engine may be
    healthy, but the job layer around it — journal, job store,
    supervisor — could not do its work.
    """


class JournalError(ServiceError):
    """The service's write-ahead journal is unreadable or corrupt.

    A torn *final* record (the signature of a crash mid-append) is not
    an error — recovery truncates it; this is raised only for damage
    that cannot be attributed to a crash tail: a garbled record in the
    middle of the file, a wrong schema, or a non-monotonic sequence.
    """


class JobError(ServiceError):
    """A job operation was invalid (unknown id, wrong state).

    ``job_id`` names the offending job when known.
    """

    def __init__(self, message: str, *, job_id=None):
        self.job_id = job_id
        super().__init__(message)


class UnknownJobError(JobError):
    """The named job does not exist in the store (HTTP 404)."""


class JobFailedError(JobError):
    """A job reached the ``failed`` terminal state; its result is the
    failure itself.

    Raised by :meth:`repro.service.api.RoutingService.result` (and
    surfaced over the HTTP API) instead of a bare missing-file error.
    ``record`` is the job's full journal-derived record as a dict —
    including ``error`` (the recorded cause), ``attempts`` and
    ``requeues`` — so callers can inspect *why* without re-reading the
    store.  ``failure`` is the recorded cause string, if any.
    """

    def __init__(self, message: str, *, job_id=None, record=None):
        super().__init__(message, job_id=job_id)
        self.record = dict(record or {})
        self.failure = self.record.get("error")


class AdmissionError(ServiceError):
    """The service refused to enqueue a job (backpressure).

    ``code`` is a stable machine-readable reason: ``QUEUE_FULL`` (the
    global queue-depth limit) or ``TENANT_LIMIT`` (the per-tenant
    concurrent-job cap).  Invalid *inputs* are a different refusal and
    keep their :class:`ValidationError` type.
    """

    def __init__(self, message: str, *, code: str = "QUEUE_FULL"):
        self.code = code
        super().__init__(message)


class UnroutableError(RoutingError):
    """The circuit is unroutable at the requested channel width.

    Mirrors the paper's feasibility threshold: if a complete routing is not
    found within the configured number of passes, the router "decides that
    the circuit is unroutable at that given channel width".
    """

    def __init__(self, channel_width: int, passes: int, failed_nets=()):
        self.channel_width = channel_width
        self.passes = passes
        self.failed_nets = tuple(failed_nets)
        super().__init__(
            f"circuit unroutable at channel width {channel_width} "
            f"after {passes} passes ({len(self.failed_nets)} nets failed)"
        )
