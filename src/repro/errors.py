"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch every library failure with a single ``except`` clause while still
being able to distinguish graph-level problems from routing-level ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A structural problem with a graph (missing node/edge, bad weight)."""


class DisconnectedError(GraphError):
    """Raised when a required path between two nodes does not exist.

    The FPGA router treats this as "the net is infeasible on the current
    (partially consumed) routing graph" and triggers the move-to-front
    re-ordering described in Section 5 of the paper.
    """

    def __init__(self, source, target, message: str | None = None):
        self.source = source
        self.target = target
        super().__init__(
            message
            or f"no path exists between {source!r} and {target!r}"
        )


class NetError(ReproError):
    """An invalid net specification (empty net, duplicated pins, ...)."""


class ArchitectureError(ReproError):
    """An invalid FPGA architecture specification."""


class RoutingError(ReproError):
    """The detailed router could not produce a complete routing."""


class UnroutableError(RoutingError):
    """The circuit is unroutable at the requested channel width.

    Mirrors the paper's feasibility threshold: if a complete routing is not
    found within the configured number of passes, the router "decides that
    the circuit is unroutable at that given channel width".
    """

    def __init__(self, channel_width: int, passes: int, failed_nets=()):
        self.channel_width = channel_width
        self.passes = passes
        self.failed_nets = tuple(failed_nets)
        super().__init__(
            f"circuit unroutable at channel width {channel_width} "
            f"after {passes} passes ({len(self.failed_nets)} nets failed)"
        )
