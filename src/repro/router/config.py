"""Router configuration knobs.

Defaults follow Section 5: up to 20 routing passes ("we arbitrarily set
this feasibility threshold to 20 passes"), IKMB as the default tree
algorithm (the one used for the paper's channel-width headline results),
and congestion-aware edge re-weighting after every routed net.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import RoutingError
from ..graph.flat import GRAPH_BACKENDS
from ..graph.search import SEARCH_BACKENDS

#: algorithms the router can dispatch per net
ALGORITHMS = (
    "kmb", "zel", "ikmb", "izel",      # Steiner (wirelength)
    "djka", "dom", "pfa", "idom",      # arborescence (pathlength first)
    "two_pin",                         # decomposition baseline (≈ CGE/SEGA)
)

#: self-verification modes (see docs/validation.md): "off" — no
#: checking (bit-identical to historical behaviour); "final" — run the
#: independent checker once on the finished result; "pass" — verify
#: every committed pass and quarantine-and-repair violating nets
VERIFY_MODES = ("off", "final", "pass")

#: top-level routing strategies: "paper" — the paper's rip-up-and-retry
#: loop over disjoint committed nets (historical behaviour); "negotiate"
#: — PathFinder negotiated congestion (transient overuse, per-node
#: present × history costs, optional timing-driven slack-ratio blend —
#: see docs/pathfinder.md)
MODES = ("paper", "negotiate")


@dataclass(frozen=True, kw_only=True)
class RouterConfig:
    """Tunable behaviour of :class:`repro.router.router.FPGARouter`.

    All fields are keyword-only: ``RouterConfig(algorithm="kmb",
    max_passes=5)``.  Positional construction was never part of the
    documented API and silently broke whenever a field was added.

    Parameters
    ----------
    algorithm:
        Per-net tree construction; one of :data:`ALGORITHMS`.
    max_passes:
        Feasibility threshold — the circuit is declared unroutable at
        the current channel width after this many move-to-front passes.
    congestion:
        Enable congestion re-weighting of channel segments after each
        net (§5: "the edge weights are updated to reflect the new
        congestion values").
    congestion_alpha:
        Strength of the congestion penalty: a span with utilization u
        has its remaining segment edges weighted
        ``base · (1 + alpha · u)``.
    steiner_candidate_depth:
        BFS depth around a net's seed tree from which the iterated
        algorithms (IKMB/IZEL/IDOM) draw Steiner candidates.  The
        paper-faithful "all of V − N" scan is exact but quadratic in
        the routing-graph size; the ablation bench quantifies the gap.
    max_steiner_nodes:
        Safety cap on accepted Steiner candidates per net.
    order:
        Initial net ordering: ``"pins_desc"`` (high-fanout first, the
        default), ``"hpwl_desc"``, or ``"input"``.
    critical_algorithm:
        Optional second algorithm for *critical* nets (§2: "nets may be
        classified as either critical or non-critical based on timing
        information from the higher-level design stages").  When set,
        critical nets route with this algorithm (typically ``"pfa"`` or
        ``"idom"``) and the rest with ``algorithm``.
    critical_nets:
        Explicit net names to treat as critical.
    critical_fraction:
        Alternatively, classify this fraction of nets (by descending
        half-perimeter — the long-path proxy the paper sketches) as
        critical.  Ignored when ``critical_nets`` is given.
    pass_timeout_s:
        Wall-clock budget for one move-to-front pass.  ``None`` (the
        default) is unbounded; exceeding the budget aborts the session
        with an :class:`~repro.errors.EngineTimeoutError` carrying the
        partial progress statistics.
    route_timeout_s:
        Wall-clock budget for routing a single net (the deadline is
        polled inside Dijkstra, so even a pathological search cannot
        stall a pass).  ``None`` is unbounded.
    max_relaxations:
        Edge-relaxation budget for any single Dijkstra run — a hard
        operation bound that is deterministic across machines, unlike
        the wall-clock deadlines.  ``None`` is unbounded.
    search:
        Shortest-path kernel selection, one of
        :data:`~repro.graph.search.SEARCH_BACKENDS`.  ``"dijkstra"``
        keeps plain Dijkstra everywhere (the reference profile);
        ``"astar"`` answers point-to-point queries with goal-directed
        search under the channel-lattice Manhattan lower bound;
        ``"bidir"`` uses bidirectional Dijkstra; ``"auto"`` (the
        default) picks A* when a heuristic is available and
        bidirectional otherwise.  All backends produce bit-identical
        routing trees — goal-directed kernels are used only for exact
        distance queries, and canonical paths always come from plain
        Dijkstra runs (see ``docs/search.md``).
    graph_backend:
        Graph-core selection, one of
        :data:`~repro.graph.flat.GRAPH_BACKENDS`.  ``"dict"`` runs
        every search over the mutable dict-adjacency
        :class:`~repro.graph.core.Graph`; ``"flat"`` freezes the graph
        into a CSR :class:`~repro.graph.flat.GraphView` per net and
        runs the int-indexed flat kernels; ``"auto"`` (the default)
        picks flat once the routing graph is large enough to amortize
        the freeze.  The flat kernels are bit-identical to the dict
        kernels — this switch changes wall-clock, never results (see
        ``docs/graph.md``).
    mode:
        Top-level routing strategy, one of :data:`MODES`.  ``"paper"``
        (default) is the paper's rip-up-and-retry loop over disjoint
        committed nets; ``"negotiate"`` is PathFinder negotiated
        congestion — every net stays routed, junctions may be
        transiently shared, and per-node present × history costs
        negotiate the overuse away (``docs/pathfinder.md``).  In
        negotiate mode ``algorithm`` selects only the tag-compatible
        connection router; congestion re-weighting and the
        move-to-front pass loop do not apply.
    timing:
        Timing-driven negotiation (negotiate mode only): build a
        per-connection slack-ratio table from Elmore delays of the
        previous iteration's trees and blend base-cost vs negotiated
        cost by criticality, so critical-path connections take direct
        routes and slack connections absorb the detours.
    negotiate_iterations:
        Iteration budget for negotiation.  Exhausting it without
        reaching zero overuse raises
        :class:`~repro.errors.UnroutableError` naming the still-
        contended nets.
    negotiate_present_factor:
        Present-cost slope ``p``: an occupied junction costs
        ``1 + p · g^(iteration-1) · occupancy`` times base, so
        contention pressure sharpens every iteration.
    negotiate_growth:
        Present-cost schedule base ``g`` (≥ 1): the per-iteration
        geometric sharpening of the present cost.  ``1.0`` freezes the
        schedule (constant present cost, history does all the work);
        the default ``1.3`` makes sharing prohibitively expensive well
        inside the iteration budget, which is what forces convergence
        on tightly congested devices.
    negotiate_history_gain:
        History increment per unit of overuse per iteration — the
        long-term memory that breaks present-cost oscillation.
    negotiate_stall:
        Oscillation guard: abort (unroutable) when total overuse fails
        to improve for this many consecutive iterations.
    verify:
        Self-verification mode, one of :data:`VERIFY_MODES`.
        ``"off"`` (default) changes nothing; ``"final"`` certifies the
        finished result with the independent checker
        (:func:`repro.validate.verify_result`) and raises
        :class:`~repro.errors.VerificationError` on violations;
        ``"pass"`` additionally checks every committed pass and
        rip-up-reroutes violating nets (bounded retries) before
        quarantining them — see ``docs/validation.md``.
    """

    algorithm: str = "ikmb"
    max_passes: int = 20
    congestion: bool = True
    congestion_alpha: float = 2.0
    steiner_candidate_depth: int = 2
    max_steiner_nodes: int = 8
    order: str = "pins_desc"
    critical_algorithm: Optional[str] = None
    critical_nets: Optional[frozenset] = None
    critical_fraction: float = 0.0
    pass_timeout_s: Optional[float] = None
    route_timeout_s: Optional[float] = None
    max_relaxations: Optional[int] = None
    search: str = "auto"
    graph_backend: str = "auto"
    verify: str = "off"
    mode: str = "paper"
    timing: bool = False
    negotiate_iterations: int = 40
    negotiate_present_factor: float = 0.5
    negotiate_growth: float = 1.3
    negotiate_history_gain: float = 0.4
    negotiate_stall: int = 8

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise RoutingError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if self.timing and self.mode != "negotiate":
            raise RoutingError(
                "timing=True requires mode='negotiate' (slack ratios "
                "only steer the negotiated cost blend)"
            )
        if self.negotiate_iterations < 1:
            raise RoutingError("negotiate_iterations must be >= 1")
        if self.negotiate_present_factor <= 0:
            raise RoutingError("negotiate_present_factor must be positive")
        if self.negotiate_growth < 1.0:
            raise RoutingError("negotiate_growth must be >= 1.0")
        if self.negotiate_history_gain <= 0:
            raise RoutingError("negotiate_history_gain must be positive")
        if self.negotiate_stall < 1:
            raise RoutingError("negotiate_stall must be >= 1")
        if self.verify not in VERIFY_MODES:
            raise RoutingError(
                f"unknown verify mode {self.verify!r}; "
                f"expected one of {VERIFY_MODES}"
            )
        if self.search not in SEARCH_BACKENDS:
            raise RoutingError(
                f"unknown search backend {self.search!r}; "
                f"expected one of {SEARCH_BACKENDS}"
            )
        if self.graph_backend not in GRAPH_BACKENDS:
            raise RoutingError(
                f"unknown graph backend {self.graph_backend!r}; "
                f"expected one of {GRAPH_BACKENDS}"
            )
        if self.algorithm not in ALGORITHMS:
            raise RoutingError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        if self.max_passes < 1:
            raise RoutingError("max_passes must be >= 1")
        if self.congestion_alpha < 0:
            raise RoutingError("congestion_alpha must be >= 0")
        if self.order not in ("pins_desc", "hpwl_desc", "input"):
            raise RoutingError(f"unknown net order {self.order!r}")
        if self.critical_algorithm is not None:
            if self.critical_algorithm not in ALGORITHMS:
                raise RoutingError(
                    f"unknown critical algorithm "
                    f"{self.critical_algorithm!r}"
                )
            if self.critical_algorithm == "two_pin":
                raise RoutingError(
                    "two_pin cannot serve as the critical-net algorithm"
                )
        if not 0.0 <= self.critical_fraction <= 1.0:
            raise RoutingError("critical_fraction must be in [0, 1]")
        if self.pass_timeout_s is not None and self.pass_timeout_s <= 0:
            raise RoutingError("pass_timeout_s must be positive")
        if self.route_timeout_s is not None and self.route_timeout_s <= 0:
            raise RoutingError("route_timeout_s must be positive")
        if self.max_relaxations is not None and self.max_relaxations < 1:
            raise RoutingError("max_relaxations must be >= 1")
        if self.critical_nets is not None and not isinstance(
            self.critical_nets, frozenset
        ):
            object.__setattr__(
                self, "critical_nets", frozenset(self.critical_nets)
            )

    def with_algorithm(self, algorithm: str) -> "RouterConfig":
        """Copy of this config running a different per-net algorithm."""
        return replace(self, algorithm=algorithm)
