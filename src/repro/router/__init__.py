"""The detailed FPGA router of Section 5.

One-net-at-a-time routing with pluggable tree construction, congestion
re-weighting, resource commitment, move-to-front re-ordering across
≤ 20 passes, and minimum-channel-width search.
"""

from .channel_width import estimate_lower_bound, minimum_channel_width
from .config import ALGORITHMS, RouterConfig
from .congestion import CongestionModel
from .result import NetRoute, RoutingResult, measure_route
from .router import FPGARouter, route_circuit, steiner_candidates_near_tree

__all__ = [
    "estimate_lower_bound",
    "minimum_channel_width",
    "ALGORITHMS",
    "RouterConfig",
    "CongestionModel",
    "NetRoute",
    "RoutingResult",
    "measure_route",
    "FPGARouter",
    "route_circuit",
    "steiner_candidates_near_tree",
]
