"""The detailed FPGA router of Section 5.

One-net-at-a-time routing with pluggable tree construction, congestion
re-weighting, resource commitment, move-to-front re-ordering across
≤ 20 passes, and minimum-channel-width search.
"""

from .channel_width import estimate_lower_bound, minimum_channel_width
from .config import ALGORITHMS, MODES, RouterConfig
from .congestion import CongestionModel
from .negotiation import NEGOTIATE_ALGORITHM, NegotiationState
from .result import NetRoute, RoutingResult, measure_route
from .router import FPGARouter, route_circuit, steiner_candidates_near_tree
from .timing import SlackTable, critical_path_delay

__all__ = [
    "estimate_lower_bound",
    "minimum_channel_width",
    "ALGORITHMS",
    "MODES",
    "NEGOTIATE_ALGORITHM",
    "NegotiationState",
    "SlackTable",
    "critical_path_delay",
    "RouterConfig",
    "CongestionModel",
    "NetRoute",
    "RoutingResult",
    "measure_route",
    "FPGARouter",
    "route_circuit",
    "steiner_candidates_near_tree",
]
