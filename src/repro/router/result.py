"""Routing results: per-net routes and whole-circuit summaries.

Metrics are reported in *base* (uncongested) weights so wirelength and
pathlength comparisons between algorithms are not distorted by the
congestion multipliers in effect when each net happened to be routed
(this matches Table 5's equal-channel-width comparison methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import RoutingError
from ..graph.core import Graph
from ..graph.validation import tree_paths_from

Node = Hashable


@dataclass
class NetRoute:
    """The committed route of one net.

    ``wirelength`` and ``pathlengths`` are measured in base weights.
    ``edges`` are the routing-resource edges the net consumed.
    """

    name: str
    algorithm: str
    source: Node
    sinks: Tuple[Node, ...]
    edges: List[Tuple[Node, Node, float]]
    wirelength: float
    pathlengths: Dict[Node, float]
    optimal_pathlengths: Dict[Node, float] = field(default_factory=dict)

    @property
    def max_pathlength(self) -> float:
        return max(self.pathlengths.values())

    @property
    def optimal_max_pathlength(self) -> Optional[float]:
        if not self.optimal_pathlengths:
            return None
        return max(self.optimal_pathlengths.values())

    @property
    def num_pins(self) -> int:
        return 1 + len(self.sinks)

    def tree(self) -> Graph:
        """Reconstruct the route as a tree subgraph (base weights)."""
        g = Graph()
        g.add_node(self.source)
        for u, v, w in self.edges:
            g.add_edge(u, v, w)
        return g


def measure_route(
    name: str,
    algorithm: str,
    source: Node,
    sinks: Sequence[Node],
    tree: Graph,
    base_weight,
    optimal_pathlengths: Optional[Dict[Node, float]] = None,
) -> NetRoute:
    """Build a :class:`NetRoute` from a routed tree, in base weights.

    ``base_weight(u, v)`` maps a routing-graph edge to its uncongested
    weight.
    """
    base_tree = Graph()
    base_tree.add_node(source)
    edges = []
    for u, v, _ in tree.edges():
        w = base_weight(u, v)
        base_tree.add_edge(u, v, w)
        edges.append((u, v, w))
    dist, _ = tree_paths_from(base_tree, source)
    pathlengths = {}
    for s in sinks:
        if s not in dist:
            raise RoutingError(f"net {name!r}: sink {s!r} not in its tree")
        pathlengths[s] = dist[s]
    return NetRoute(
        name=name,
        algorithm=algorithm,
        source=source,
        sinks=tuple(sinks),
        edges=edges,
        wirelength=sum(w for _, _, w in edges),
        pathlengths=pathlengths,
        optimal_pathlengths=dict(optimal_pathlengths or {}),
    )


@dataclass
class RoutingResult:
    """Outcome of routing one circuit at one channel width."""

    circuit: str
    channel_width: int
    algorithm: str
    passes_used: int
    routes: List[NetRoute]
    failed_nets: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.failed_nets

    @property
    def total_wirelength(self) -> float:
        return sum(r.wirelength for r in self.routes)

    @property
    def total_max_pathlength(self) -> float:
        """Sum over nets of max source–sink pathlength (Table 5 metric)."""
        return sum(r.max_pathlength for r in self.routes)

    @property
    def num_routed(self) -> int:
        return len(self.routes)

    def route_by_name(self, name: str) -> NetRoute:
        for r in self.routes:
            if r.name == name:
                return r
        raise KeyError(f"net {name!r} not in result")

    def mean_pathlength_stretch(self) -> float:
        """Mean over sinks of (tree pathlength / optimal pathlength).

        Requires optimal pathlengths to have been recorded; sinks with
        zero optimal distance are skipped.
        """
        num = 0.0
        cnt = 0
        for r in self.routes:
            for sink, opt in r.optimal_pathlengths.items():
                if opt > 0:
                    num += r.pathlengths[sink] / opt
                    cnt += 1
        return num / cnt if cnt else 1.0

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "W": self.channel_width,
            "algorithm": self.algorithm,
            "passes": self.passes_used,
            "routed": self.num_routed,
            "failed": len(self.failed_nets),
            "wirelength": round(self.total_wirelength, 2),
            "max_path_total": round(self.total_max_pathlength, 2),
        }
