"""Congestion model: channel utilization → segment edge re-weighting.

Section 5: "Edge weights in this graph reflect wirelength, as well as
the congestion induced by previously-routed nets. ... After the routing
of each net, the edge weights are updated to reflect the new congestion
values."  The unit of congestion here is the *channel span* — the W
parallel track segments between two adjacent switch blocks.  When a net
consumes tracks of a span, the surviving tracks of that span become more
expensive, steering later nets toward emptier channels; that load
balancing is precisely what lets a circuit complete at a smaller channel
width.
"""

from __future__ import annotations

from typing import Iterable, Set

from ..fpga.routing_graph import GroupKey, RoutingResourceGraph


class CongestionModel:
    """Multiplicative congestion penalties on channel-span segments.

    A span at utilization ``u`` (fraction of its tracks consumed) has
    every remaining segment edge re-weighted to
    ``base_weight · (1 + alpha · u)``.  ``alpha = 0`` disables the model
    (the ablation bench measures the channel-width cost of doing so).
    """

    def __init__(self, rrg: RoutingResourceGraph, alpha: float = 2.0):
        self.rrg = rrg
        self.alpha = alpha

    def penalty(self, utilization: float) -> float:
        """Weight multiplier for a span at the given utilization."""
        return 1.0 + self.alpha * utilization

    def reweight_groups(self, groups: Iterable[GroupKey]) -> int:
        """Refresh the weights of all surviving segments in ``groups``.

        Returns the number of edges re-weighted.  Called by the router
        with the spans touched by the net it just committed.
        """
        graph = self.rrg.graph
        updated = 0
        for group in groups:
            utilization = self.rrg.group_utilization(group)
            factor = self.penalty(utilization)
            for u, v in self.rrg.group_tracks(group):
                if graph.has_edge(u, v):
                    graph.set_weight(u, v, self.rrg.base_weight(u, v) * factor)
                    updated += 1
        return updated

    def reweight_all(self) -> int:
        """Refresh every span (used when loading a partially-routed state)."""
        return self.reweight_groups(self.rrg.groups())
