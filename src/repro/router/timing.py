"""Per-pin-pair slack ratios for timing-driven negotiation.

PathFinder's timing-driven mode (and the slack-ratio table in the
cgra_pnr-style global routers that popularized it for island FPGAs)
blends two objectives per *connection* — one (source, sink) pin pair —
according to how critical that connection is:

    cost(u, v) = crit · base(u, v) + (1 − crit) · negotiated(u, v)

where ``crit`` is the connection's **slack ratio**: its Elmore delay in
the previous iteration's routing, divided by the worst Elmore delay of
any connection in the circuit (``Dmax``).  A connection on the critical
path has ratio exactly 1.0 and routes by pure base cost (the delay
proxy), ignoring congestion steering; a connection with lots of slack
has a ratio near 0 and yields freely to congestion avoidance.

The table is rebuilt after every negotiation iteration from the actual
routed trees via :mod:`repro.analysis.delay` — the "technology
sensitive" evaluation layer the paper motivates — so criticalities
track the routing as it changes.  Ratios are always in ``[0, 1]``, are
``0.0`` for any connection not in the table (first iteration, or a net
that failed to route), and are exactly ``1.0`` for the critical-path
sink(s).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..analysis.delay import RCParameters, elmore_delays
from ..errors import GraphError
from ..graph.core import Graph
from ..net import Net

Node = Hashable

#: a connection is one (net name, sink node) pair
ConnectionKey = Tuple[str, Node]


class SlackTable:
    """Criticality ratios per connection, plus critical-path metadata.

    Build with :meth:`from_trees`; query with :meth:`criticality`.
    ``dmax`` is the circuit's critical-path Elmore delay (0.0 when the
    table is empty or every delay is zero, in which case every ratio
    is 0.0 and routing degrades gracefully to wirelength-only).
    """

    __slots__ = ("_ratios", "dmax", "critical")

    def __init__(
        self,
        ratios: Optional[Dict[ConnectionKey, float]] = None,
        dmax: float = 0.0,
        critical: Optional[ConnectionKey] = None,
    ) -> None:
        self._ratios = ratios or {}
        self.dmax = dmax
        self.critical = critical

    @classmethod
    def from_trees(
        cls,
        trees: Mapping[str, Graph],
        nets: Mapping[str, Net],
        rc: Optional[RCParameters] = None,
    ) -> "SlackTable":
        """Slack ratios from one iteration's routed trees.

        ``trees`` maps net name → routed tree (base weights); ``nets``
        maps net name → the :class:`~repro.net.Net` it realizes.  Nets
        present in ``nets`` but absent from ``trees`` (not yet routed)
        simply contribute no connections.  Iteration order is fixed by
        sorted net names so the resulting floats — and the critical
        connection chosen on ties — are machine-independent.
        """
        rc = rc or RCParameters()
        delays: Dict[ConnectionKey, float] = {}
        for name in sorted(trees):
            net = nets.get(name)
            if net is None:
                raise GraphError(f"tree for unknown net {name!r}")
            sink_delay = elmore_delays(trees[name], net, rc)
            for sink in net.sinks:
                if sink not in sink_delay:
                    raise GraphError(
                        f"net {name!r}: sink {sink!r} missing from its "
                        f"routed tree"
                    )
                delays[(name, sink)] = sink_delay[sink]
        if not delays:
            return cls()
        dmax = max(delays.values())
        if dmax <= 0.0:
            # an all-zero-delay circuit (e.g. zero RC parameters) has
            # no meaningful criticality ordering
            return cls(dict.fromkeys(delays, 0.0), 0.0, None)
        ratios = {key: d / dmax for key, d in delays.items()}
        critical = min(
            (key for key, r in ratios.items() if r == 1.0),
            key=repr,
        )
        return cls(ratios, dmax, critical)

    def criticality(self, net_name: str, sink: Node) -> float:
        """The connection's slack ratio in ``[0, 1]`` (0.0 if unknown)."""
        return self._ratios.get((net_name, sink), 0.0)

    def net_max(self, net_name: str, sinks) -> float:
        """The net's worst connection criticality (reroute ordering)."""
        return max(
            (self._ratios.get((net_name, s), 0.0) for s in sinks),
            default=0.0,
        )

    def __len__(self) -> int:
        return len(self._ratios)

    def items(self):
        return self._ratios.items()


def critical_path_delay(
    trees: Mapping[str, Graph],
    nets: Mapping[str, Net],
    rc: Optional[RCParameters] = None,
) -> float:
    """Worst Elmore sink delay over every routed net (the Dmax metric)."""
    rc = rc or RCParameters()
    worst = 0.0
    for name in sorted(trees):
        net = nets.get(name)
        if net is None:
            continue
        delays = elmore_delays(trees[name], net, rc)
        for sink in net.sinks:
            d = delays.get(sink, 0.0)
            if d > worst:
                worst = d
    return worst
