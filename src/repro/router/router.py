"""The detailed FPGA router of Section 5.

"Our router operates directly on this graph and routes the nets one at
a time.  After the routing of each net, the edge weights are updated to
reflect the new congestion values; edges used to route the net are
removed from the graph, so that subsequent nets remain electrically
disjoint ...  We employ a net ordering scheme with a move-to-front
heuristic: when infeasibility is encountered in routing a particular
net, that net will be routed earlier in subsequent routing phases."

The per-net tree construction is pluggable (`RouterConfig.algorithm`):
the Steiner family for wirelength/channel-width minimization (the
paper's headline IKMB results) or the arborescence family for
critical-path routing (Tables 4–5), plus the ``two_pin`` decomposition
baseline standing in for CGE/SEGA/GBP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arborescence.dom import dom, dom_tree_graph
from ..arborescence.djka import djka
from ..arborescence.idom import idom
from ..arborescence.pfa import pfa
from ..errors import (
    DisconnectedError,
    GraphError,
    NetError,
    RoutingError,
    UnroutableError,
)
from ..fpga.architecture import Architecture
from ..fpga.netlist import PlacedCircuit, PlacedNet
from ..fpga.routing_graph import RoutingResourceGraph
from ..graph.core import Graph
from ..graph.search import SearchPolicy
from ..graph.shortest_paths import (
    ShortestPathCache,
    dijkstra,
    reconstruct_path,
)
from ..net import Net
from ..steiner.iterated import KMB_HEURISTIC, ZEL_HEURISTIC, igmst
from ..steiner.kmb import kmb, kmb_tree_graph
from ..steiner.tree import RoutingTree
from ..steiner.zelikovsky import zel, zel_tree_graph
from .config import RouterConfig
from .congestion import CongestionModel
from .result import NetRoute, RoutingResult, measure_route


def steiner_candidates_near_tree(
    graph: Graph, tree: Graph, depth: int
) -> List:
    """Junction nodes within ``depth`` BFS hops of a seed tree.

    This is the router's practical Steiner-candidate pool for the
    iterated constructions: useful Steiner points live near the tree
    they would improve.  Pin nodes are excluded — a logic-block pin is
    an exclusive net terminal, never a through-route resource.
    """
    frontier = [n for n in tree.nodes if graph.has_node(n)]
    seen: Set = set(frontier)
    for _ in range(depth):
        nxt = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    tree_nodes = set(tree.nodes)
    # sort for cross-process determinism: `seen` is a set, whose
    # iteration order depends on the interpreter's hash randomization,
    # and candidate order breaks IGMST/IDOM ties
    return sorted(
        (
            n for n in seen
            if n not in tree_nodes and isinstance(n, tuple) and n[0] == "J"
        ),
        key=repr,
    )


def route_net_tree(
    graph: Graph,
    net: Net,
    cache: ShortestPathCache,
    algo: str,
    cfg: RouterConfig,
) -> RoutingTree:
    """Build one net's routing tree with the given tree algorithm.

    Module-level so the engine's executor workers (which may run in
    other processes) dispatch through exactly the same code path as the
    serial router — any divergence here would break the engine's
    serial/parallel equivalence.  ``two_pin`` is not a tree construction
    and is handled by the router itself.
    """
    if algo == "kmb":
        return kmb(graph, net, cache)
    if algo == "zel":
        return zel(graph, net, cache)
    if algo == "djka":
        return djka(graph, net, cache)
    if algo == "dom":
        return dom(graph, net, cache)
    if algo == "pfa":
        return pfa(graph, net, cache)
    if algo in ("ikmb", "izel"):
        heuristic = KMB_HEURISTIC if algo == "ikmb" else ZEL_HEURISTIC
        seed_fn = kmb_tree_graph if algo == "ikmb" else zel_tree_graph
        seed = seed_fn(graph, net.terminals, cache)
        candidates = steiner_candidates_near_tree(
            graph, seed, cfg.steiner_candidate_depth
        )
        return igmst(
            graph,
            net,
            heuristic=heuristic,
            cache=cache,
            candidates=candidates,
            max_steiner_nodes=cfg.max_steiner_nodes,
        )
    if algo == "idom":
        seed = dom_tree_graph(graph, net.source, net.sinks, cache)
        candidates = steiner_candidates_near_tree(
            graph, seed, cfg.steiner_candidate_depth
        )
        return idom(
            graph,
            net,
            cache=cache,
            candidates=candidates,
            max_steiner_nodes=cfg.max_steiner_nodes,
        )
    raise RoutingError(f"algorithm {algo!r} not dispatchable here")


class FPGARouter:
    """Routes a placed circuit onto one architecture instance."""

    def __init__(self, arch: Architecture, config: Optional[RouterConfig] = None):
        self.arch = arch
        self.config = config or RouterConfig()

    def search_policy(self) -> SearchPolicy:
        """The shortest-path kernel policy for this router's caches.

        The Manhattan scale comes from the architecture
        (``min(segment_weight, pin_weight)``), so it stays admissible
        as pins attach/detach and congestion raises edge weights.  The
        policy also carries the config's graph backend, so every cache
        query dispatches to the flat or dict kernels accordingly.
        """
        return SearchPolicy.for_architecture(
            self.config.search,
            self.arch,
            graph_backend=self.config.graph_backend,
        )

    # ------------------------------------------------------------------
    # net ordering
    # ------------------------------------------------------------------
    def _initial_order(self, nets: Sequence[PlacedNet]) -> List[PlacedNet]:
        cfg = self.config
        if cfg.order == "input":
            return list(nets)
        if cfg.order == "pins_desc":
            return sorted(nets, key=lambda n: (-n.num_pins, n.name))
        if cfg.order == "hpwl_desc":
            return sorted(
                nets, key=lambda n: (-n.half_perimeter(), n.name)
            )
        raise RoutingError(f"unknown order {cfg.order!r}")

    # ------------------------------------------------------------------
    # single-net routing
    # ------------------------------------------------------------------
    def _critical_names(self, circuit: PlacedCircuit) -> Set[str]:
        """Names of the nets routed with the critical-net algorithm.

        Explicit ``critical_nets`` wins; otherwise the top
        ``critical_fraction`` of nets by half-perimeter (the paper's
        long-path proxy: "nets through which long input-to-output paths
        pass may be designated as critical").
        """
        cfg = self.config
        if cfg.critical_algorithm is None:
            return set()
        if cfg.critical_nets is not None:
            return set(cfg.critical_nets)
        count = round(cfg.critical_fraction * circuit.num_nets)
        ranked = sorted(
            circuit.nets,
            key=lambda n: (-n.half_perimeter(), n.name),
        )
        return {n.name for n in ranked[:count]}

    def _route_tree_net(
        self,
        rrg: RoutingResourceGraph,
        net: Net,
        cache: ShortestPathCache,
        algo: Optional[str] = None,
    ) -> RoutingTree:
        """Build one net's routing tree with the given algorithm."""
        return route_net_tree(
            rrg.graph, net, cache, algo or self.config.algorithm, self.config
        )

    def _route_two_pin_net(
        self,
        rrg: RoutingResourceGraph,
        net: Net,
        congestion: Optional[CongestionModel],
    ) -> Graph:
        """Route a net as independent source→sink two-pin connections.

        Models the decomposition strategy of CGE/SEGA-era routers: each
        connection is routed and committed separately, so connections
        of the same net cannot share wiring (only the source pin).  The
        union of the connection paths is returned as the net's "tree"
        for metric purposes; resources are committed incrementally.
        """
        graph = rrg.graph
        union = Graph()
        union.add_node(net.source)
        # Only the connection currently being routed may see its sink
        # pin: otherwise a connection could route *through* a sibling
        # sink's pin node, and committing the path would delete it.
        rrg.detach_pins(net.sinks)
        for sink in net.sinks:
            rrg.attach_pins([sink])
            if graph.degree(sink) == 0:
                raise DisconnectedError(net.source, sink)
            dist, pred = dijkstra(graph, net.source, targets=[sink])
            if sink not in dist:
                raise DisconnectedError(net.source, sink)
            path = reconstruct_path(pred, net.source, sink)
            path_tree = Graph()
            for u, v in zip(path, path[1:]):
                w = graph.weight(u, v)
                path_tree.add_edge(u, v, w)
                union.add_edge(u, v, rrg.base_weight(u, v))
            # commit immediately, but keep the source pin alive for the
            # remaining connections of this same net
            touched = rrg.commit(
                _without_node(path_tree, net.source)
            )
            if congestion is not None:
                congestion.reweight_groups(touched)
        if graph.has_node(net.source):
            graph.remove_node(net.source)
        return union

    # ------------------------------------------------------------------
    # full circuit routing
    # ------------------------------------------------------------------
    def route(self, circuit: PlacedCircuit) -> RoutingResult:
        """Route every net of ``circuit``; raise :class:`UnroutableError`
        if the move-to-front pass budget is exhausted.

        Each pass restarts from a pristine routing graph with the nets
        in the current order; nets that failed in a pass are moved to
        the front of the next one.

        ``mode="negotiate"`` replaces this loop wholesale with
        PathFinder negotiated congestion; the engine owns that loop
        (iteration state, trace, checkpointing), so such configs
        delegate to a serial :class:`~repro.engine.RoutingSession` —
        which is also what every ``mode="paper"`` engine path funnels
        through, keeping exactly one implementation of each loop.
        """
        if self.config.mode == "negotiate":
            from ..engine import RoutingSession

            with RoutingSession(self.arch, self.config) as session:
                return session.route(circuit)
        circuit.validate(self.arch.pins_per_block)
        cfg = self.config
        rrg = RoutingResourceGraph(self.arch)
        order = self._initial_order(circuit.nets)
        critical = self._critical_names(circuit)

        last_failures: Optional[int] = None
        stall = 0
        for pass_no in range(1, cfg.max_passes + 1):
            if pass_no > 1:
                rrg.reset()
            # pins live in the graph only while their net is routed
            rrg.detach_all_pins()
            congestion = (
                CongestionModel(rrg, cfg.congestion_alpha)
                if cfg.congestion
                else None
            )
            routes: List[NetRoute] = []
            failed: List[PlacedNet] = []
            succeeded: List[PlacedNet] = []
            for placed in order:
                route = self._route_one(rrg, placed, congestion, critical)
                if route is None:
                    failed.append(placed)
                else:
                    routes.append(route)
                    succeeded.append(placed)
            if not failed:
                return RoutingResult(
                    circuit=circuit.name,
                    channel_width=self.arch.channel_width,
                    algorithm=cfg.algorithm,
                    passes_used=pass_no,
                    routes=routes,
                )
            # move-to-front re-ordering for the next pass
            order = failed + succeeded
            # engineering addition: stop early if passes stop improving
            if last_failures is not None and len(failed) >= last_failures:
                stall += 1
                if stall >= 3:
                    raise UnroutableError(
                        self.arch.channel_width,
                        pass_no,
                        [n.name for n in failed],
                    )
            else:
                stall = 0
            last_failures = len(failed)
        raise UnroutableError(
            self.arch.channel_width,
            cfg.max_passes,
            [n.name for n in failed],
        )

    def effective_algorithm(
        self, placed: PlacedNet, critical: Optional[Set[str]]
    ) -> str:
        """The tree algorithm this net routes with (critical-aware)."""
        algo = self.config.algorithm
        if critical and placed.name in critical:
            algo = self.config.critical_algorithm or algo
        return algo

    def _route_one(
        self,
        rrg: RoutingResourceGraph,
        placed: PlacedNet,
        congestion: Optional[CongestionModel],
        critical: Optional[Set[str]] = None,
        cache: Optional[ShortestPathCache] = None,
    ) -> Optional[NetRoute]:
        """Route a single net on the current graph; None on infeasibility.

        ``cache`` lets the engine share one :class:`ShortestPathCache`
        across nets and passes; omitted, a fresh per-net cache is used
        (the seed behaviour).  Because the cache is purely memoizing and
        version-invalidated, the two modes produce identical routes.
        """
        net = placed.to_graph_net()
        algo = self.effective_algorithm(placed, critical)
        graph = rrg.graph
        rrg.attach_pins(net.terminals)
        for pin in net.terminals:
            if graph.degree(pin) == 0:
                rrg.detach_pins(net.terminals)
                return None
        if cache is None:
            cache = ShortestPathCache(graph, search=self.search_policy())
        # record the graph-optimal pathlengths *before* routing, for the
        # pathlength-stretch metrics of Table 5.  Goal-directed backends
        # settle just the sinks via an early-exit run; its settled
        # prefix is bit-identical to the full SSSP, so the distances
        # (and the canonical paths below) cannot differ.
        if self.config.search == "dijkstra":
            source_dist, _ = cache.sssp(net.source)
        else:
            source_dist, _ = cache.sssp_limited(
                net.source, targets=tuple(net.sinks)
            )
        optimal = {}
        for sink in net.sinks:
            if sink not in source_dist:
                rrg.detach_pins(net.terminals)
                return None
            optimal[sink] = _base_distance(rrg, cache, net.source, sink)
        try:
            if algo == "two_pin":
                tree = self._route_two_pin_net(rrg, net, congestion)
                route = measure_route(
                    placed.name,
                    "two_pin",
                    net.source,
                    net.sinks,
                    tree,
                    rrg.base_weight,
                    optimal_pathlengths=optimal,
                )
                return route
            result = self._route_tree_net(rrg, net, cache, algo)
        except (DisconnectedError, GraphError):
            rrg.detach_pins(net.terminals)
            return None
        route = measure_route(
            placed.name,
            result.algorithm,
            net.source,
            net.sinks,
            result.tree,
            rrg.base_weight,
            optimal_pathlengths=optimal,
        )
        touched = rrg.commit(result.tree)
        if congestion is not None:
            congestion.reweight_groups(touched)
        return route


def _without_node(tree: Graph, node) -> Graph:
    """Copy of ``tree`` with ``node`` removed (if present)."""
    g = tree.copy()
    if g.has_node(node):
        g.remove_node(node)
    return g


def _base_distance(
    rrg: RoutingResourceGraph,
    cache: ShortestPathCache,
    source,
    sink,
) -> float:
    """Base-weight length of one congestion-shortest source→sink path.

    An approximation of the optimal base pathlength that reuses the
    already-computed congested shortest path (exact whenever congestion
    multipliers are uniform along the path, and always an upper bound
    within the current multiplier spread).
    """
    path = cache.path(source, sink)
    return sum(
        rrg.base_weight(u, v) for u, v in zip(path, path[1:])
    )


def route_circuit(
    circuit: PlacedCircuit,
    arch: Architecture,
    config: Optional[RouterConfig] = None,
) -> RoutingResult:
    """Deprecated one-shot wrapper; use :func:`repro.route` instead.

    Kept as a thin shim over the engine so existing callers keep
    working: a serial :class:`~repro.engine.RoutingSession` is
    bit-identical to the historical ``FPGARouter(arch, config).route()``
    path.
    """
    import warnings

    warnings.warn(
        "route_circuit() is deprecated; use repro.route(circuit, "
        "arch=arch, config=config) or repro.engine.RoutingSession",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine import RoutingSession

    return RoutingSession(arch, config=config).route(circuit)
