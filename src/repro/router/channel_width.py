"""Minimum-channel-width search (the paper's headline metric).

"In our router, maximum channel width serves as an upper-bound input
parameter when routing a circuit. ... Thus, for each circuit we find
the smallest maximum channel width necessary to completely route the
circuit."  (§5)

The search scans upward from a congestion-based lower-bound estimate;
routability is effectively monotone in W, so the first success is the
minimum (an optional downward verification pass can confirm it).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from ..errors import RoutingError, UnroutableError
from ..fpga.architecture import Architecture
from ..fpga.netlist import PlacedCircuit
from .config import RouterConfig
from .result import RoutingResult


def estimate_lower_bound(circuit: PlacedCircuit) -> int:
    """A cheap channel-width lower bound from net bounding boxes.

    Each net must cross every channel column/row interior to its
    bounding box at least once; dividing the per-channel crossing
    demand by the number of spans in that channel bounds the tracks
    needed.  This is the classic HPWL-density argument — optimistic,
    but it saves several futile routing attempts.
    """
    # demand[("V", x)] = nets whose bbox spans vertical channel x, etc.
    v_demand: Dict[int, int] = {}
    h_demand: Dict[int, int] = {}
    for net in circuit.nets:
        x0, y0, x1, y1 = net.bounding_box()
        for x in range(x0 + 1, x1 + 1):
            v_demand[x] = v_demand.get(x, 0) + 1
        for y in range(y0 + 1, y1 + 1):
            h_demand[y] = h_demand.get(y, 0) + 1
    best = 1
    for x, d in v_demand.items():
        best = max(best, math.ceil(d / max(1, circuit.rows)))
    for y, d in h_demand.items():
        best = max(best, math.ceil(d / max(1, circuit.cols)))
    return best


def minimum_channel_width(
    circuit: PlacedCircuit,
    family_builder: Callable[[int, int, int], Architecture],
    config: Optional[RouterConfig] = None,
    w_start: Optional[int] = None,
    w_max: int = 40,
    pins_per_block: Optional[int] = None,
    *,
    engine: str = "serial",
    max_workers: Optional[int] = None,
    trace=None,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    on_trace_event=None,
) -> Tuple[int, RoutingResult]:
    """Find the smallest W at which ``circuit`` routes completely.

    Parameters
    ----------
    circuit:
        The placed design.
    family_builder:
        ``(rows, cols, W) → Architecture`` — e.g. ``xc3000`` or
        ``xc4000`` (Fc scaling with W is the builder's business).
    config:
        Router configuration (algorithm, pass budget, ...).
    w_start:
        First width to try; defaults to the HPWL lower bound.
    w_max:
        Give up (raise :class:`RoutingError`) beyond this width.
    pins_per_block:
        Override the architecture's pin-slot count (must cover the
        circuit's placement).
    engine:
        Routing-engine name (``serial``/``thread``/``process``); the
        default serial engine is bit-identical to the historical
        :class:`FPGARouter` path.
    max_workers:
        Worker-pool size for the parallel engines.
    trace:
        Path or open text file: write the JSON engine trace of the
        *successful* width attempt there.
    checkpoint:
        File to checkpoint the in-flight width attempt into after every
        committed pass.  The same path is reused as the sweep advances
        to wider channels (each attempt overwrites it), and the file is
        removed once a width succeeds.
    resume:
        Checkpoint file from an interrupted sweep.  A missing file is
        fine (the sweep simply starts fresh); an existing one restarts
        the sweep at the checkpointed width — resuming mid-attempt if
        that width was still in progress, or at the next width if the
        checkpoint already recorded it as unroutable.
    on_trace_event:
        Live trace-event sink handed to each width attempt's session
        (see :class:`~repro.engine.RoutingSession`); the job service
        streams these into per-job logs.

    Returns
    -------
    (width, result):
        The minimum width and the complete routing obtained there.
    """
    from ..engine import RoutingSession  # lazy: avoids an import cycle
    from ..engine.checkpoint import check_compatible, load_checkpoint
    from ..errors import CheckpointError

    start = w_start if w_start is not None else estimate_lower_bound(circuit)
    start = max(1, start)
    resume_width: Optional[int] = None
    if resume is not None:
        state = load_checkpoint(resume, missing_ok=True)
        if state is not None:
            # The architecture legitimately varies across the sweep, so
            # only the circuit and config must match.
            check_compatible(
                state, circuit=circuit, config=config or RouterConfig(),
                path=resume,
            )
            width_seen = state.get("channel_width")
            if not isinstance(width_seen, int):
                raise CheckpointError(
                    f"{resume}: checkpoint records no channel width"
                )
            if state.get("outcome") == "in_progress":
                # resume inside this width's negotiation
                resume_width = width_seen
                start = width_seen
            else:
                # that width is settled (unroutable); skip past it
                start = width_seen + 1
    last_error: Optional[UnroutableError] = None
    for width in range(start, w_max + 1):
        arch = family_builder(circuit.rows, circuit.cols, width)
        if pins_per_block is not None and pins_per_block != arch.pins_per_block:
            from dataclasses import replace

            arch = replace(arch, pins_per_block=pins_per_block)
        session = RoutingSession(
            arch, config, engine=engine, max_workers=max_workers,
            on_trace_event=on_trace_event,
        )
        try:
            result = session.route(
                circuit,
                checkpoint=checkpoint,
                resume=resume if width == resume_width else None,
            )
        except UnroutableError as exc:
            last_error = exc
            continue
        if trace is not None:
            session.write_trace(trace)
        return width, result
    if last_error is not None:
        # re-raise the widest attempt's failure so callers see *which*
        # nets were still failing, not just that the sweep gave up
        raise UnroutableError(
            last_error.channel_width,
            last_error.passes,
            last_error.failed_nets,
        ) from last_error
    raise RoutingError(f"{circuit.name}: unroutable up to W={w_max}")
