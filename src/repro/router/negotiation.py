"""PathFinder negotiated congestion (``RouterConfig.mode="negotiate"``).

The paper's router keeps nets electrically disjoint at all times: a
committed net's resources leave the graph, and congestion is resolved
by whole-pass rip-up with move-to-front reordering.  PathFinder — the
modern scalable alternative this module implements — inverts that:
**every net stays routed at all times**, resources may be transiently
overused, and each iteration rips up and reroutes one net at a time
against a cost model that makes contested resources progressively more
expensive until the overuse negotiates itself away.

Cost model
----------
A junction node ``n`` carries the classic present × (base + history)
cost, normalized to a unit base cost and expressed as a multiplicative
*factor* over the architecture's base edge weights:

    factor(n) = (1 + p · g^(i-1) · occ(n)) · (1 + hist(n))

where ``occ(n)`` counts the *other* nets currently occupying ``n``
(the net being rerouted is ripped up first), ``i`` is the iteration
number, ``g`` is ``RouterConfig.negotiate_growth`` (the present-cost
schedule sharpens geometrically every iteration — the standard
convergence pressure; sharing becomes prohibitively expensive long
before the iteration budget runs out), ``p`` is
``RouterConfig.negotiate_present_factor`` and ``hist(n)`` accumulates
``negotiate_history_gain · overuse`` for every iteration ``n`` ended
overused.  Pin nodes are exclusive terminals and always have factor 1.

An edge's negotiated weight is ``base(u, v) · (factor(u) + factor(v))
/ 2`` — symmetric, equal to the base weight on uncongested ground, and
never below it (factors are ≥ 1), which keeps the architecture's
Manhattan lower bound admissible for the goal-directed kernels.  The
timing blend against per-connection slack ratios happens inside the
kernels (see :func:`repro.graph.search.negotiated_search` and
:mod:`repro.router.timing`).

Determinism
-----------
Negotiation has no bit-identity oracle (unlike the paper's
arborescence modes, there is no independent definition of "the" result
to replay against) — but a *serial* negotiation is a deterministic
function of (circuit, architecture, config): net order is fixed, sink
order within a net is fixed by the slack table, tree-node seed order
breaks search ties, and history/occupancy tables are updated in sorted
node order.  The engine checkpoints the full inter-iteration state
(:meth:`NegotiationState.to_payload`), so resume is bit-identical.
The independent checker (``repro.validate``) is the correctness gate
for every converged result.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import CheckpointError, GraphError
from ..fpga.netlist import PlacedNet
from ..fpga.routing_graph import RoutingResourceGraph
from ..graph.core import Graph
from ..graph.search import SearchPolicy
from ..net import Net
from .result import NetRoute, measure_route
from .timing import SlackTable

Node = Hashable

#: the algorithm tag stamped on negotiated routes/results.  It is
#: deliberately *not* in ``repro.validate.checker.ARBORESCENCE_ALGORITHMS``:
#: negotiated trees promise zero overuse, not shortest paths, so the
#: replay layer applies the occupancy/bookkeeping checks but skips the
#: arborescence distance assertions.
NEGOTIATE_ALGORITHM = "negotiate"

#: ceiling on the criticality fed into the search-cost blend.  A
#: connection at slack ratio exactly 1.0 would weight the negotiated
#: term by zero and ignore congestion entirely — two critical-path
#: connections contending for one junction could then never negotiate.
#: Capping the *blend* (the table itself still reports exact ratios,
#: critical sinks at 1.0) leaves even the most critical connection a
#: sliver of congestion pressure, which the unbounded history growth
#: eventually turns into a detour.
MAX_CRITICALITY = 0.95

#: exponent applied to the slack ratio before blending (``crit =
#: ratio^0.5``).  Elmore delay concentrates most connections in the
#: 0.3–0.8 ratio band; the concave transform pushes that mid-band
#: toward the delay objective so near-critical connections take direct
#: routes too, while genuinely slack connections still absorb the
#: detours.  Monotone, so it never reorders the reroute schedule.
CRITICALITY_EXPONENT = 0.5


def is_junction(node: Node) -> bool:
    """True for routing-graph junction nodes (the contended resources)."""
    return type(node) is tuple and len(node) == 5 and node[0] == "J"


def node_to_payload(node: Node) -> List:
    """JSON-encode a routing-graph node (tuple of str/int → list)."""
    return list(node)


def node_from_payload(obj) -> Tuple:
    """Decode :func:`node_to_payload` (list → tuple)."""
    if not isinstance(obj, list):
        raise CheckpointError(f"malformed node payload {obj!r}")
    return tuple(obj)


class FrozenFactorProvider:
    """A picklable point-in-time snapshot of negotiated node factors.

    The parallel engines ship one of these (sparse: only non-unit
    factors) to each worker, so a whole reroute chunk searches against
    identical frozen costs regardless of scheduling order.
    """

    __slots__ = ("factors",)

    def __init__(self, factors: Dict[Node, float]) -> None:
        self.factors = factors

    def node_factor(self, node: Node) -> float:
        return self.factors.get(node, 1.0)

    def factor_table(self, flat) -> List[float]:
        table = [1.0] * len(flat.nodes)
        index = flat.index
        for node, f in self.factors.items():
            i = index.get(node)
            if i is not None:
                table[i] = f
        return table


class NegotiationState:
    """Occupancy, history and per-net trees across iterations.

    Implements the :class:`~repro.graph.search.SearchPolicy` cost
    provider protocol (:meth:`node_factor` / :meth:`factor_table`), so
    it can be handed straight to ``policy.negotiated_search``.
    """

    __slots__ = (
        "present_factor",
        "history_gain",
        "growth",
        "iteration",
        "history",
        "occupancy",
        "trees",
        "_dirty",
        "_table",
        "_table_flat",
        "_table_dirty",
    )

    def __init__(self, config) -> None:
        self.present_factor = config.negotiate_present_factor
        self.history_gain = config.negotiate_history_gain
        self.growth = config.negotiate_growth
        self.iteration = 1
        #: junction → accumulated history cost (monotone non-decreasing)
        self.history: Dict[Node, float] = {}
        #: junction → number of nets currently occupying it
        self.occupancy: Dict[Node, int] = {}
        #: net name → (ordered tree nodes, tree edges)
        self.trees: Dict[str, Tuple[List[Node], List[Tuple[Node, Node]]]] = {}
        self._dirty = 0
        self._table: Optional[List[float]] = None
        self._table_flat = None
        self._table_dirty = -1

    # ------------------------------------------------------------------
    # cost provider protocol
    # ------------------------------------------------------------------
    def node_factor(self, node: Node) -> float:
        """The present × history multiplier for ``node`` (≥ 1)."""
        if not is_junction(node):
            return 1.0
        occ = self.occupancy.get(node, 0)
        hist = self.history.get(node)
        if not occ and hist is None:
            return 1.0
        schedule = self.present_factor * self.growth ** (self.iteration - 1)
        present = 1.0 + schedule * occ
        return present * (1.0 + (hist or 0.0))

    def factor_table(self, flat) -> List[float]:
        """Dense per-id factors for the flat kernel.

        Memoized per (snapshot, table-state) pair: within one net's
        multi-sink routing the graph does not mutate, so every
        connection search reuses the same table.
        """
        if (
            self._table is not None
            and self._table_flat is flat
            and self._table_dirty == self._dirty
        ):
            return self._table
        table = [1.0] * len(flat.nodes)
        index = flat.index
        for node in self.occupancy:
            i = index.get(node)
            if i is not None:
                table[i] = self.node_factor(node)
        for node in self.history:
            if node in self.occupancy:
                continue
            i = index.get(node)
            if i is not None:
                table[i] = self.node_factor(node)
        self._table = table
        self._table_flat = flat
        self._table_dirty = self._dirty
        return table

    def sparse_factors(self) -> Dict[Node, float]:
        """All non-unit factors (what the parallel engines ship)."""
        out: Dict[Node, float] = {}
        for node in self.occupancy:
            out[node] = self.node_factor(node)
        for node in self.history:
            if node not in out:
                out[node] = self.node_factor(node)
        return out

    # ------------------------------------------------------------------
    # tree bookkeeping
    # ------------------------------------------------------------------
    def add_tree(
        self,
        name: str,
        nodes: Sequence[Node],
        edges: Sequence[Tuple[Node, Node]],
    ) -> None:
        if name in self.trees:
            raise GraphError(f"net {name!r} is already routed; rip it up first")
        self.trees[name] = (list(nodes), list(edges))
        occ = self.occupancy
        for n in nodes:
            if is_junction(n):
                occ[n] = occ.get(n, 0) + 1
        self._dirty += 1

    def remove_tree(self, name: str) -> None:
        entry = self.trees.pop(name, None)
        if entry is None:
            return
        occ = self.occupancy
        for n in entry[0]:
            if is_junction(n):
                c = occ.get(n, 0) - 1
                if c <= 0:
                    occ.pop(n, None)
                else:
                    occ[n] = c
        self._dirty += 1

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self._dirty += 1

    # ------------------------------------------------------------------
    # convergence accounting
    # ------------------------------------------------------------------
    def total_overuse(self) -> int:
        """Total excess claims over all junctions (0 ⇔ converged)."""
        return sum(c - 1 for c in self.occupancy.values() if c > 1)

    def overused_nodes(self) -> int:
        return sum(1 for c in self.occupancy.values() if c > 1)

    def overusing_nets(self) -> List[str]:
        """Names of nets touching at least one overused junction."""
        over = {n for n, c in self.occupancy.items() if c > 1}
        return sorted(
            name
            for name, (nodes, _) in self.trees.items()
            if any(n in over for n in nodes)
        )

    def update_history(self) -> None:
        """Accumulate history cost on every currently-overused junction.

        Monotone: entries only ever grow (the property-test contract).
        Sorted node order keeps the float sums machine-independent.
        """
        gain = self.history_gain
        hist = self.history
        for node in sorted(
            (n for n, c in self.occupancy.items() if c > 1), key=repr
        ):
            hist[node] = hist.get(node, 0.0) + gain * (
                self.occupancy[node] - 1
            )
        self._dirty += 1

    def history_norm(self) -> float:
        """Σ history (summed in sorted node order — deterministic)."""
        return sum(self.history[n] for n in sorted(self.history, key=repr))

    def tree_graphs(self, base_weight) -> Dict[str, Graph]:
        """Every routed tree as a base-weighted :class:`Graph`."""
        out: Dict[str, Graph] = {}
        for name, (nodes, edges) in self.trees.items():
            g = Graph()
            if nodes:
                g.add_node(nodes[0])
            for u, v in edges:
                g.add_edge(u, v, base_weight(u, v))
            out[name] = g
        return out

    # ------------------------------------------------------------------
    # checkpoint payload
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """The full inter-iteration state as a JSON-safe document.

        Occupancy is derivable from the trees and the slack table from
        the trees plus the config, so neither is stored; history floats
        round-trip exactly through JSON (``repr`` serialization).
        """
        return {
            "iteration": self.iteration,
            "history": [
                [node_to_payload(n), self.history[n]]
                for n in sorted(self.history, key=repr)
            ],
            "trees": {
                name: {
                    "nodes": [node_to_payload(n) for n in nodes],
                    "edges": [
                        [node_to_payload(u), node_to_payload(v)]
                        for u, v in edges
                    ],
                }
                for name, (nodes, edges) in sorted(self.trees.items())
            },
        }

    @classmethod
    def from_payload(cls, config, payload) -> "NegotiationState":
        if not isinstance(payload, dict):
            raise CheckpointError("negotiation payload is not a document")
        state = cls(config)
        try:
            state.iteration = int(payload["iteration"])
            for node_obj, value in payload["history"]:
                state.history[node_from_payload(node_obj)] = float(value)
            for name, tree in payload["trees"].items():
                nodes = [node_from_payload(n) for n in tree["nodes"]]
                edges = [
                    (node_from_payload(u), node_from_payload(v))
                    for u, v in tree["edges"]
                ]
                state.add_tree(name, nodes, edges)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed negotiation payload "
                f"({type(exc).__name__}: {exc})"
            ) from None
        return state


def ordered_sinks(
    placed_name: str, net: Net, slack: Optional[SlackTable]
) -> List[Node]:
    """The net's sinks in decreasing criticality (input order on ties).

    Critical connections route first so they claim direct paths while
    the tree is small; Python's stable sort preserves the net's own
    sink order among equally-critical connections, keeping the
    schedule deterministic.
    """
    sinks = list(net.sinks)
    if slack is not None:
        sinks.sort(
            key=lambda s: -slack.criticality(placed_name, s)
        )
    return sinks


def route_connections(
    graph: Graph,
    name: str,
    net: Net,
    provider,
    policy: SearchPolicy,
    slack: Optional[SlackTable] = None,
) -> Optional[Tuple[List[Node], List[Tuple[Node, Node]]]]:
    """Route one net sink-by-sink on ``graph`` under negotiated costs.

    ``graph`` must contain the net's pins (already attached).  Each
    connection runs a multi-source search seeded from every node of the
    tree so far, so later connections reuse earlier wiring — the net's
    own resources are never double-counted.  Wirelength-only
    connections seed the whole tree for free (``g = 0`` everywhere); a
    timing-driven connection seeds each tree node with
    ``crit · tree_distance(source → node)``, charging it for the delay
    already accrued at its attachment point so critical sinks attach
    near the source instead of at the nearest wire.  Returns
    ``(ordered tree nodes, tree edges)``, or None when a pin is
    isolated or a sink is unreachable (statically infeasible: the
    negotiated graph is always the full pristine device).
    """
    for pin in net.terminals:
        if not graph.has_node(pin) or graph.degree(pin) == 0:
            return None
    nodes: List[Node] = [net.source]
    node_set = {net.source}
    edges: List[Tuple[Node, Node]] = []
    #: base distance from the source through the tree wiring so far
    tree_dist: Dict[Node, float] = {net.source: 0.0}
    for sink in ordered_sinks(name, net, slack):
        crit = (
            min(
                MAX_CRITICALITY,
                slack.criticality(name, sink) ** CRITICALITY_EXPONENT,
            )
            if slack is not None
            else 0.0
        )
        offsets = None
        if crit > 0.0:
            offsets = {n: crit * tree_dist[n] for n in nodes}
        dist, pred = policy.negotiated_search(
            graph, nodes, sink, provider, crit, offsets=offsets
        )
        if sink not in dist:
            return None
        # walk back to the first node already in the tree: with seed
        # offsets a seed may itself have been relaxed through another
        # seed, so stopping at tree membership (not pred exhaustion)
        # keeps the attachment path disjoint from existing wiring
        path = [sink]
        u = sink
        while u not in node_set:
            u = pred[u]
            path.append(u)
        path.reverse()
        for a, b in zip(path, path[1:]):
            edges.append((a, b))
            if b not in node_set:
                node_set.add(b)
                nodes.append(b)
                tree_dist[b] = tree_dist[a] + graph.weight(a, b)
    return nodes, edges


def build_route(
    rrg: RoutingResourceGraph,
    placed: PlacedNet,
    edges: Sequence[Tuple[Node, Node]],
    policy: SearchPolicy,
) -> NetRoute:
    """Measure a converged negotiated tree into a :class:`NetRoute`.

    Metrics are in base weights, like every other mode.  The optimal
    pathlengths are *true* base-graph optima (negotiation never removes
    resources, so the pristine device with this net's pins attached is
    exactly the routing instance) — stronger than the paper modes'
    congested-path approximation.
    """
    net = placed.to_graph_net()
    tree = Graph()
    tree.add_node(net.source)
    for u, v in edges:
        tree.add_edge(u, v, rrg.base_weight(u, v))
    rrg.attach_pins(net.terminals)
    try:
        dist, _ = policy.plain_sssp(
            rrg.graph, net.source, targets=tuple(net.sinks)
        )
        optimal = {s: dist[s] for s in net.sinks if s in dist}
    finally:
        rrg.detach_pins(net.terminals)
    return measure_route(
        placed.name,
        NEGOTIATE_ALGORITHM,
        net.source,
        net.sinks,
        tree,
        rrg.base_weight,
        optimal_pathlengths=optimal,
    )
