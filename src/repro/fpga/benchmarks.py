"""The paper's benchmark circuits as published statistics.

The original industrial circuits (distributed by Rose and Brown with the
CGE/SEGA work) are not publicly archived; we reproduce each circuit as a
*specification* — array size, net count, and pin-count histogram exactly
as printed in Tables 2 and 3 — from which :mod:`repro.fpga.synthetic`
generates a seeded placed circuit with matching statistics (DESIGN.md §4
documents this substitution).  The published channel widths of CGE,
SEGA and GBP are carried along as literature reference values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CircuitSpec:
    """Published statistics of one benchmark circuit.

    ``nets_2_3`` / ``nets_4_10`` / ``nets_over_10`` are the Tables 2–3
    pin-count buckets; ``published`` maps router name → the channel
    width reported in the paper (including the paper's own router).
    """

    name: str
    family: str  # "xc3000" or "xc4000"
    cols: int
    rows: int
    nets_2_3: int
    nets_4_10: int
    nets_over_10: int
    published: Dict[str, int]

    @property
    def num_nets(self) -> int:
        return self.nets_2_3 + self.nets_4_10 + self.nets_over_10

    @property
    def size(self) -> Tuple[int, int]:
        return (self.cols, self.rows)


def _spec(name, family, cols, rows, b23, b410, bover, published):
    spec = CircuitSpec(
        name=name,
        family=family,
        cols=cols,
        rows=rows,
        nets_2_3=b23,
        nets_4_10=b410,
        nets_over_10=bover,
        published=published,
    )
    return spec


#: Table 2 — Xilinx 3000-series circuits (Fs=6, Fc=⌈0.6W⌉).
XC3000_CIRCUITS: Tuple[CircuitSpec, ...] = (
    _spec("busc", "xc3000", 12, 13, 115, 28, 8,
          {"CGE": 10, "paper": 7}),
    _spec("dma", "xc3000", 16, 18, 139, 52, 22,
          {"CGE": 10, "paper": 9}),
    _spec("bnre", "xc3000", 21, 22, 255, 70, 27,
          {"CGE": 12, "paper": 9}),
    _spec("dfsm", "xc3000", 22, 23, 361, 26, 33,
          {"CGE": 10, "paper": 9}),
    _spec("z03", "xc3000", 26, 27, 398, 176, 34,
          {"CGE": 13, "paper": 11}),
)

#: Table 3 / Table 4 — Xilinx 4000-series circuits (Fs=3, Fc=W).
#: "paper" is the IKMB router width; PFA/IDOM widths are from Table 4.
XC4000_CIRCUITS: Tuple[CircuitSpec, ...] = (
    _spec("alu4", "xc4000", 19, 17, 165, 69, 21,
          {"SEGA": 15, "GBP": 14, "paper": 11, "paper_pfa": 14,
           "paper_idom": 13}),
    _spec("apex7", "xc4000", 12, 10, 83, 30, 2,
          {"SEGA": 13, "GBP": 11, "paper": 10, "paper_pfa": 11,
           "paper_idom": 11}),
    _spec("term1", "xc4000", 10, 9, 65, 21, 2,
          {"SEGA": 10, "GBP": 10, "paper": 8, "paper_pfa": 9,
           "paper_idom": 9}),
    _spec("example2", "xc4000", 14, 12, 171, 25, 9,
          {"SEGA": 17, "GBP": 13, "paper": 11, "paper_pfa": 13,
           "paper_idom": 13}),
    _spec("too_large", "xc4000", 14, 14, 128, 46, 12,
          {"SEGA": 12, "GBP": 12, "paper": 10, "paper_pfa": 12,
           "paper_idom": 12}),
    _spec("k2", "xc4000", 22, 20, 241, 146, 17,
          {"SEGA": 17, "GBP": 17, "paper": 15, "paper_pfa": 17,
           "paper_idom": 17}),
    _spec("vda", "xc4000", 17, 16, 132, 80, 13,
          {"SEGA": 13, "GBP": 13, "paper": 12, "paper_pfa": 14,
           "paper_idom": 13}),
    _spec("9symml", "xc4000", 11, 10, 60, 11, 8,
          {"SEGA": 10, "GBP": 9, "paper": 8, "paper_pfa": 9,
           "paper_idom": 8}),
    _spec("alu2", "xc4000", 15, 13, 109, 26, 18,
          {"SEGA": 11, "GBP": 11, "paper": 9, "paper_pfa": 11,
           "paper_idom": 10}),
)

#: Table 5 — per-circuit W and published PFA/IDOM deltas vs IKMB
#: (wirelength increase %, max-path decrease %), at equal channel width.
TABLE5_PUBLISHED: Dict[str, Dict[str, float]] = {
    "alu4": {"W": 14, "pfa_wire": 20.9, "idom_wire": 15.8,
             "pfa_path": -15.2, "idom_path": -16.9},
    "apex7": {"W": 11, "pfa_wire": 15.3, "idom_wire": 9.2,
              "pfa_path": -4.2, "idom_path": -6.8},
    "term1": {"W": 9, "pfa_wire": 11.4, "idom_wire": 12.0,
              "pfa_path": -6.2, "idom_path": -2.0},
    "example2": {"W": 13, "pfa_wire": 13.1, "idom_wire": 8.1,
                 "pfa_path": -4.6, "idom_path": -5.6},
    "too_large": {"W": 12, "pfa_wire": 17.9, "idom_wire": 15.2,
                  "pfa_path": -9.7, "idom_path": -9.4},
    "k2": {"W": 17, "pfa_wire": 24.5, "idom_wire": 17.6,
           "pfa_path": -7.1, "idom_path": -7.2},
    "vda": {"W": 14, "pfa_wire": 18.7, "idom_wire": 11.9,
            "pfa_path": -9.9, "idom_path": -11.5},
    "9symml": {"W": 9, "pfa_wire": 18.3, "idom_wire": 11.4,
               "pfa_path": -14.0, "idom_path": -14.4},
    "alu2": {"W": 11, "pfa_wire": 23.9, "idom_wire": 14.1,
             "pfa_path": -14.7, "idom_path": -18.0},
}

#: Table 1 published values: congestion level -> net size ->
#: algorithm -> (wirelength % vs KMB, max-path % vs optimal).
TABLE1_PUBLISHED: Dict[str, Dict[int, Dict[str, Tuple[float, float]]]] = {
    "none": {
        5: {"KMB": (0.00, 23.51), "ZEL": (-6.22, 11.07),
            "IKMB": (-6.47, 10.83), "IZEL": (-6.79, 8.85),
            "DJKA": (29.23, 0.00), "DOM": (17.51, 0.00),
            "PFA": (-5.59, 0.00), "IDOM": (-5.59, 0.00)},
        8: {"KMB": (0.00, 40.30), "ZEL": (-7.85, 23.42),
            "IKMB": (-8.19, 24.04), "IZEL": (-8.31, 21.47),
            "DJKA": (30.53, 0.00), "DOM": (18.48, 0.00),
            "PFA": (-5.02, 0.00), "IDOM": (-4.89, 0.00)},
    },
    "low": {
        5: {"KMB": (0.00, 27.61), "ZEL": (-4.64, 19.14),
            "IKMB": (-5.68, 17.12), "IZEL": (-5.98, 14.56),
            "DJKA": (26.64, 0.00), "DOM": (22.27, 0.00),
            "PFA": (8.95, 0.00), "IDOM": (8.95, 0.00)},
        8: {"KMB": (0.00, 47.66), "ZEL": (-4.10, 34.17),
            "IKMB": (-4.50, 33.35), "IZEL": (-5.52, 22.29),
            "DJKA": (32.48, 0.00), "DOM": (28.09, 0.00),
            "PFA": (13.91, 0.00), "IDOM": (13.91, 0.00)},
    },
    "medium": {
        5: {"KMB": (0.00, 30.67), "ZEL": (-4.37, 21.54),
            "IKMB": (-5.09, 17.77), "IZEL": (-5.57, 15.26),
            "DJKA": (22.94, 0.00), "DOM": (21.78, 0.00),
            "PFA": (13.93, 0.00), "IDOM": (13.93, 0.00)},
        8: {"KMB": (0.00, 52.67), "ZEL": (-3.35, 44.95),
            "IKMB": (-4.42, 42.42), "IZEL": (-4.97, 40.20),
            "DJKA": (36.79, 0.00), "DOM": (33.89, 0.00),
            "PFA": (22.65, 0.00), "IDOM": (22.59, 0.00)},
    },
}


def circuit_spec(name: str) -> CircuitSpec:
    """Look up a benchmark circuit by name (either family)."""
    for spec in XC3000_CIRCUITS + XC4000_CIRCUITS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark circuit {name!r}")
