"""The routing-resource graph of a symmetrical-array FPGA (Figure 2).

The graph mirrors the complete FPGA architecture: "paths in this graph
correspond to feasible routes on the FPGA, and conversely" (§2).

Node kinds (all tuples, first element is the kind tag):

* ``("J", x, y, side, t)`` — the *junction*: the wire end of track ``t``
  on side ``side`` of the switch block at channel crossing ``(x, y)``.
  Crossings form a ``(cols+1) × (rows+1)`` grid.
* ``("P", bx, by, p)`` — pin slot ``p`` of the logic block at ``(bx, by)``.

Edge kinds:

* **wire-segment edges** (weight ``segment_weight``): the horizontal
  segment ``(x..x+1, y, t)`` joins ``("J", x, y, "E", t)`` to
  ``("J", x+1, y, "W", t)``; vertical segments analogously.
* **switch edges** (weight ``switch_weight``): programmable connections
  inside a switch block, joining wire ends on different sides per the
  architecture's Fs pattern.
* **pin edges** (weight ``pin_weight``): connection-block switches from
  a pin to both junction ends of each of its Fc reachable track
  segments in the adjacent channel.

Resource commitment.  The paper removes the *edges* a routed net used so
"subsequent nets remain electrically disjoint".  In this node-expanded
model the equivalent (and strictly safer) operation is removing every
junction node the net's tree visited, which deletes the used segment,
switch and pin edges with it and additionally prevents two nets from
sharing a wire end through different switches; :meth:`RoutingResourceGraph.commit`
implements that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import ArchitectureError, GraphError
from ..graph.core import Graph, edge_key
from .architecture import Architecture, SIDE_PAIRS

Node = Hashable
#: channel-span key: ("H"|"V", x, y) — all W tracks of one segment span
GroupKey = Tuple[str, int, int]


def junction(x: int, y: int, side: str, t: int) -> Tuple:
    """Node id of a wire end at crossing ``(x, y)``."""
    return ("J", x, y, side, t)


def pin_node(bx: int, by: int, p: int) -> Tuple:
    """Node id of logic-block pin slot ``p`` at block ``(bx, by)``."""
    return ("P", bx, by, p)


@dataclass
class SegmentInfo:
    """One wire segment: its edge endpoints and channel-span group."""

    orientation: str  # "H" or "V"
    x: int
    y: int
    track: int
    end_a: Tuple
    end_b: Tuple

    @property
    def group(self) -> GroupKey:
        return (self.orientation, self.x, self.y)


class RoutingResourceGraph:
    """A concrete FPGA routing graph plus its bookkeeping.

    Attributes
    ----------
    graph:
        The mutable :class:`~repro.graph.core.Graph` the routing
        algorithms run on.  Edge weights start at the architecture's
        base weights and are later scaled by the congestion model.
    arch:
        The generating :class:`Architecture`.
    """

    def __init__(self, arch: Architecture):
        self.arch = arch
        self.graph = Graph()
        #: base (uncongested) weight of every edge, for wirelength metrics
        self._base_weight: Dict[Tuple, float] = {}
        #: segment bookkeeping: edge key -> SegmentInfo
        self._segments: Dict[Tuple, SegmentInfo] = {}
        #: channel-span group -> list of segment edge keys (all tracks)
        self._groups: Dict[GroupKey, List[Tuple]] = {}
        #: pin node -> [(junction, weight)] connection-block switches;
        #: lets the router detach pins so nets cannot route *through*
        #: a foreign logic-block pin (see detach_all_pins)
        self._pin_edges: Dict[Tuple, List[Tuple[Tuple, float]]] = {}
        #: lazy junction-to-junction incidence index for :meth:`uncommit`
        self._jj_incident: Optional[Dict[Tuple, List[Tuple[Tuple, float]]]] = (
            None
        )
        #: pristine-device CSR snapshot, captured on the first
        #: :meth:`reset`; later resets thaw it instead of replaying
        #: E ``add_edge`` calls (see reset)
        self._pristine: Optional["FlatGraph"] = None  # noqa: F821
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add_edge(self, u: Node, v: Node, weight: float) -> None:
        self.graph.add_edge(u, v, weight)
        self._base_weight[edge_key(u, v)] = weight

    def _build(self) -> None:
        arch = self.arch
        rows, cols, w = arch.rows, arch.cols, arch.channel_width

        # Wire segments.  Horizontal channels y = 0..rows, spans
        # x = 0..cols-1; vertical channels x = 0..cols, spans y = 0..rows-1.
        for y in range(rows + 1):
            for x in range(cols):
                for t in range(w):
                    a = junction(x, y, "E", t)
                    b = junction(x + 1, y, "W", t)
                    self._add_edge(a, b, arch.segment_weight)
                    info = SegmentInfo("H", x, y, t, a, b)
                    key = edge_key(a, b)
                    self._segments[key] = info
                    self._groups.setdefault(info.group, []).append(key)
        for x in range(cols + 1):
            for y in range(rows):
                for t in range(w):
                    a = junction(x, y, "N", t)
                    b = junction(x, y + 1, "S", t)
                    self._add_edge(a, b, arch.segment_weight)
                    info = SegmentInfo("V", x, y, t, a, b)
                    key = edge_key(a, b)
                    self._segments[key] = info
                    self._groups.setdefault(info.group, []).append(key)

        # Switch blocks at every crossing.  A side exists only if the
        # corresponding segment exists (boundary crossings are partial).
        for x in range(cols + 1):
            for y in range(rows + 1):
                present = {
                    "W": x >= 1,
                    "E": x <= cols - 1,
                    "S": y >= 1,
                    "N": y <= rows - 1,
                }
                for side_a, side_b in SIDE_PAIRS:
                    if not (present[side_a] and present[side_b]):
                        continue
                    for ta, tb in arch.switch_pattern(side_a, side_b):
                        u = junction(x, y, side_a, ta)
                        v = junction(x, y, side_b, tb)
                        if not self.graph.has_edge(u, v):
                            self._add_edge(u, v, arch.switch_weight)

        # Connection blocks: each pin taps Fc track segments of its
        # adjacent channel (both segment ends).
        for bx in range(cols):
            for by in range(rows):
                for p in range(arch.pins_per_block):
                    side = arch.pin_side(p)
                    pn = pin_node(bx, by, p)
                    taps = self._pin_edges.setdefault(pn, [])
                    for t in arch.pin_tracks(p):
                        for end in self._pin_segment_ends(bx, by, side, t):
                            self._add_edge(pn, end, arch.pin_weight)
                            taps.append((end, arch.pin_weight))

    def _pin_segment_ends(
        self, bx: int, by: int, side: str, t: int
    ) -> Tuple[Tuple, Tuple]:
        """Both junction ends of the channel segment a pin side faces.

        Block ``(bx, by)`` is bounded by horizontal channels ``by``
        (south) and ``by+1`` (north) and vertical channels ``bx`` (west)
        and ``bx+1`` (east).
        """
        if side == "S":
            return (junction(bx, by, "E", t), junction(bx + 1, by, "W", t))
        if side == "N":
            return (
                junction(bx, by + 1, "E", t),
                junction(bx + 1, by + 1, "W", t),
            )
        if side == "W":
            return (junction(bx, by, "N", t), junction(bx, by + 1, "S", t))
        if side == "E":
            return (
                junction(bx + 1, by, "N", t),
                junction(bx + 1, by + 1, "S", t),
            )
        raise ArchitectureError(f"unknown side {side!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def base_weight(self, u: Node, v: Node) -> float:
        """The uncongested weight of edge ``(u, v)``."""
        return self._base_weight[edge_key(u, v)]

    def base_cost(self, edges: Iterable[Tuple[Node, Node]]) -> float:
        """Total base wirelength of an edge collection."""
        return sum(self.base_weight(u, v) for u, v in edges)

    def segment_info(self, u: Node, v: Node) -> Optional[SegmentInfo]:
        """Segment metadata if ``(u, v)`` is a wire-segment edge."""
        return self._segments.get(edge_key(u, v))

    def group_tracks(self, group: GroupKey) -> List[Tuple]:
        """All segment edge keys (one per track) of a channel span."""
        return list(self._groups.get(group, ()))

    def group_utilization(self, group: GroupKey) -> float:
        """Fraction of a channel span's tracks already consumed."""
        keys = self._groups.get(group)
        if not keys:
            return 0.0
        alive = sum(1 for u, v in keys if self.graph.has_edge(u, v))
        return 1.0 - alive / len(keys)

    def groups(self) -> Iterable[GroupKey]:
        return self._groups.keys()

    @property
    def num_tracks(self) -> int:
        return self.arch.channel_width

    # ------------------------------------------------------------------
    # resource commitment
    # ------------------------------------------------------------------
    def commit(self, tree: Graph) -> Set[GroupKey]:
        """Permanently consume the resources used by a routed net.

        Removes every junction node of ``tree`` (taking the used
        segment/switch/pin edges with it) plus the tree's pin nodes, and
        returns the set of channel-span groups whose utilization changed
        (for the congestion model to re-weight).
        """
        touched: Set[GroupKey] = set()
        for u, v, _ in tree.edges():
            info = self._segments.get(edge_key(u, v))
            if info is not None:
                touched.add(info.group)
        for node in list(tree.nodes):
            if self.graph.has_node(node):
                self.graph.remove_node(node)
        return touched

    def uncommit(self, tree: Graph) -> Set[GroupKey]:
        """Release the resources a previously committed tree consumed.

        The inverse of :meth:`commit`, used by the engine's
        quarantine-and-repair mode to rip up a net whose committed
        route failed verification: every junction node of ``tree`` is
        restored, along with each device edge whose two endpoints are
        junctions alive afterwards.  Pin nodes stay detached — within
        a pass pins exist only while their net is being routed, and
        :meth:`attach_pins` re-creates them for the reroute.  Returns
        the same channel-span groups :meth:`commit` reported, so the
        congestion model can refresh their weights.
        """
        if self._jj_incident is None:
            incident: Dict[Tuple, List[Tuple[Tuple, float]]] = {}
            for (u, v), w in self._base_weight.items():
                if u[0] == "J" and v[0] == "J":
                    incident.setdefault(u, []).append((v, w))
                    incident.setdefault(v, []).append((u, w))
            self._jj_incident = incident
        g = self.graph
        junctions = [
            n for n in tree.nodes
            if isinstance(n, tuple) and n and n[0] == "J"
        ]
        for node in junctions:
            if not g.has_node(node):
                g.add_node(node)
        for node in junctions:
            for other, w in self._jj_incident.get(node, ()):
                if g.has_node(other) and not g.has_edge(node, other):
                    g.add_edge(node, other, w)
        touched: Set[GroupKey] = set()
        for u, v, _ in tree.edges():
            info = self._segments.get(edge_key(u, v))
            if info is not None:
                touched.add(info.group)
        return touched

    # ------------------------------------------------------------------
    # pin attachment (router protocol)
    # ------------------------------------------------------------------
    def detach_all_pins(self) -> None:
        """Remove every pin node from the graph.

        The router detaches all pins at the start of a pass and
        re-attaches only the pins of the net currently being routed:
        a logic-block pin is an exclusive terminal, and leaving foreign
        pins in the graph would let Dijkstra route *through* them
        (physically a short through another block's pin).
        """
        for pn in self._pin_edges:
            if self.graph.has_node(pn):
                self.graph.remove_node(pn)

    def attach_pins(
        self, pins: Iterable[Tuple], graph: Optional[Graph] = None
    ) -> None:
        """Re-insert the given pin nodes with their surviving CB edges.

        Edges to junctions already consumed by earlier nets are not
        restored; a pin whose taps are all gone comes back isolated,
        which the router reads as an infeasible net.

        ``graph`` lets the engine attach pins onto a *snapshot* of the
        routing graph (speculative batch routing) instead of the live
        one; survival of each tap is judged against that snapshot.
        """
        g = self.graph if graph is None else graph
        for pn in pins:
            if pn not in self._pin_edges:
                raise GraphError(f"{pn!r} is not a pin of this device")
            g.add_node(pn)
            for end, w in self._pin_edges[pn]:
                if g.has_node(end):
                    g.add_edge(pn, end, w)

    def detach_pins(self, pins: Iterable[Tuple]) -> None:
        """Remove specific pin nodes (after a net fails or completes)."""
        for pn in pins:
            if self.graph.has_node(pn):
                self.graph.remove_node(pn)

    def freeze(self) -> "GraphView":  # noqa: F821 - forward ref
        """The live graph's frozen CSR view (``self.graph.freeze()``).

        Memoized per graph version: any commit, uncommit, reweight or
        pin attach/detach transparently invalidates it.
        """
        return self.graph.freeze()

    def pin_taps(self, pin: Tuple) -> List[Tuple[Tuple, float]]:
        """The connection-block taps ``[(junction, weight), ...]`` of a
        pin, independent of which taps currently survive in the live
        graph.  The engine ships these to workers alongside a frozen
        base graph so each worker can replay :meth:`attach_pins`
        locally instead of receiving a full per-net graph copy.
        """
        try:
            return self._pin_edges[pin]
        except KeyError:
            raise GraphError(f"{pin!r} is not a pin of this device") from None

    def reset(self) -> None:
        """Restore the pristine routing graph (all resources free).

        The first reset rebuilds the graph from the recorded base
        weights and freezes the result into a CSR snapshot; every later
        reset thaws that snapshot, which reconstructs a graph with the
        *identical* adjacency ordering (so routing stays bit-identical
        pass over pass) at a fraction of the ``add_edge`` replay cost.
        """
        if self._pristine is None:
            g = Graph()
            for (u, v), w in self._base_weight.items():
                g.add_edge(u, v, w)
            self._pristine = g.freeze().flat
            self.graph = g
        else:
            self.graph = self._pristine.thaw()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoutingResourceGraph({self.arch.name}, "
            f"{self.arch.rows}x{self.arch.cols}, W={self.arch.channel_width}, "
            f"|V|={self.graph.num_nodes}, |E|={self.graph.num_edges})"
        )


def build_routing_graph(arch: Architecture) -> RoutingResourceGraph:
    """Convenience constructor mirroring the paper's Figure 2 step."""
    return RoutingResourceGraph(arch)
