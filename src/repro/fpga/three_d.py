"""Three-dimensional FPGAs (§6: "all of our methods generalize to
three-dimensional FPGAs [1, 2]").

A 3-D symmetrical-array FPGA is a stack of 2-D layers whose switch
blocks are additionally joined by vertical interconnects ("vias")
between adjacent layers.  Because every construction in this library is
graph-based, nothing about the algorithms changes — only the routing
graph does: layer-tagged copies of the 2-D routing-resource graph plus
via edges.

The extension demonstrates the claim end to end: the same router and
the same tree algorithms route placed 3-D circuits, and the
`bench_ablation_three_d` bench measures the channel-width relief extra
layers buy (the motivation of [1, 2]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import ArchitectureError, NetError
from ..graph.core import Graph, edge_key
from ..net import Net
from .architecture import Architecture
from .routing_graph import GroupKey, RoutingResourceGraph

Node = Hashable
#: 3-D pin reference: (layer, block_x, block_y, pin_slot)
PinRef3D = Tuple[int, int, int, int]


@dataclass(frozen=True)
class Architecture3D:
    """A stack of identical 2-D layers with inter-layer vias.

    Parameters
    ----------
    base:
        The per-layer 2-D architecture.
    layers:
        Number of stacked layers (≥ 1).
    vias_per_crossing:
        How many track indices at each switch-block crossing get a
        vertical via to the layer above (0 disables 3-D connectivity —
        useful for ablations).
    via_weight:
        Edge weight of one via (vertical hops are short but pass
        through an inter-layer programmable connection).
    """

    base: Architecture
    layers: int = 2
    vias_per_crossing: int = 1
    via_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.layers < 1:
            raise ArchitectureError("need at least one layer")
        if not 0 <= self.vias_per_crossing <= self.base.channel_width:
            raise ArchitectureError(
                "vias_per_crossing out of range for the channel width"
            )
        if self.via_weight < 0:
            raise ArchitectureError("via weight must be >= 0")

    @property
    def num_blocks(self) -> int:
        return self.layers * self.base.num_blocks


def _tag(layer: int, node: Node) -> Tuple:
    """Layer-tag a 2-D routing-graph node id."""
    return ("L", layer) + tuple(node)  # type: ignore[arg-type]


def pin_node_3d(layer: int, bx: int, by: int, p: int) -> Tuple:
    """Node id of a 3-D logic-block pin."""
    return _tag(layer, ("P", bx, by, p))


class RoutingResourceGraph3D:
    """The routing graph of an :class:`Architecture3D`.

    Wraps per-layer :class:`RoutingResourceGraph` instances into one
    merged :class:`Graph` with via edges, re-exposing the same router
    protocol (``attach_pins`` / ``detach_all_pins`` / ``commit`` /
    ``base_weight`` / ``reset``) so :class:`repro.router.FPGARouter`'s
    machinery can be reused manually or through
    :func:`route_circuit_3d`.
    """

    def __init__(self, arch: Architecture3D):
        self.arch = arch
        self._layer_rrg = RoutingResourceGraph(arch.base)
        self.graph = Graph()
        self._base_weight: Dict[Tuple, float] = {}
        self._pin_edges: Dict[Tuple, List[Tuple[Tuple, float]]] = {}
        self._build()

    def _build(self) -> None:
        arch = self.arch
        base_graph = self._layer_rrg.graph
        # layer-tagged copies of the 2-D graph
        for layer in range(arch.layers):
            for u, v, w in base_graph.edges():
                tu, tv = _tag(layer, u), _tag(layer, v)
                self.graph.add_edge(tu, tv, w)
                self._base_weight[edge_key(tu, tv)] = w
        # record per-layer pin taps for the attach/detach protocol
        for layer in range(arch.layers):
            for pn, taps in self._layer_rrg._pin_edges.items():
                self._pin_edges[_tag(layer, pn)] = [
                    (_tag(layer, end), w) for end, w in taps
                ]
        # vias: join same-position junctions of adjacent layers
        base = arch.base
        for layer in range(arch.layers - 1):
            for x in range(base.cols + 1):
                for y in range(base.rows + 1):
                    for t in range(arch.vias_per_crossing):
                        lower = self._crossing_junction(layer, x, y, t)
                        upper = self._crossing_junction(layer + 1, x, y, t)
                        if lower is None or upper is None:
                            continue
                        self.graph.add_edge(lower, upper, arch.via_weight)
                        self._base_weight[
                            edge_key(lower, upper)
                        ] = arch.via_weight

    def _crossing_junction(
        self, layer: int, x: int, y: int, t: int
    ) -> Optional[Tuple]:
        """Some junction node present at crossing (x, y) on track t."""
        for side in ("E", "N", "W", "S"):
            node = _tag(layer, ("J", x, y, side, t))
            if self.graph.has_node(node):
                return node
        return None

    # ------------------------------------------------------------------
    # the router protocol
    # ------------------------------------------------------------------
    def base_weight(self, u: Node, v: Node) -> float:
        return self._base_weight[edge_key(u, v)]

    def detach_all_pins(self) -> None:
        for pn in self._pin_edges:
            if self.graph.has_node(pn):
                self.graph.remove_node(pn)

    def attach_pins(self, pins: Iterable[Tuple]) -> None:
        for pn in pins:
            if pn not in self._pin_edges:
                raise ArchitectureError(f"{pn!r} is not a 3-D pin")
            self.graph.add_node(pn)
            for end, w in self._pin_edges[pn]:
                if self.graph.has_node(end):
                    self.graph.add_edge(pn, end, w)

    def detach_pins(self, pins: Iterable[Tuple]) -> None:
        for pn in pins:
            if self.graph.has_node(pn):
                self.graph.remove_node(pn)

    def commit(self, tree: Graph) -> None:
        for node in list(tree.nodes):
            if self.graph.has_node(node):
                self.graph.remove_node(node)

    def reset(self) -> None:
        g = Graph()
        for (u, v), w in self._base_weight.items():
            g.add_edge(u, v, w)
        self.graph = g


@dataclass(frozen=True)
class PlacedNet3D:
    """A net over 3-D pin references."""

    name: str
    source: PinRef3D
    sinks: Tuple[PinRef3D, ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise NetError(f"net {self.name!r} has no sinks")
        seen = {self.source}
        for s in self.sinks:
            if s in seen:
                raise NetError(f"net {self.name!r} reuses pin {s!r}")
            seen.add(s)

    def to_graph_net(self) -> Net:
        return Net(
            source=pin_node_3d(*self.source),
            sinks=tuple(pin_node_3d(*s) for s in self.sinks),
            name=self.name,
        )


def route_nets_3d(
    arch: Architecture3D,
    nets: List[PlacedNet3D],
    algorithm=None,
) -> Dict[str, float]:
    """Route 3-D nets one at a time; returns per-net base wirelength.

    A compact 3-D counterpart of the 2-D router loop: pins attach only
    for their own net, resources are committed (removed) after each
    net, and any tree algorithm from the library may be plugged in
    (default KMB).  Raises :class:`~repro.errors.DisconnectedError`
    through the algorithm if a net is infeasible.
    """
    from ..steiner.kmb import kmb

    algorithm = algorithm or kmb
    rrg = RoutingResourceGraph3D(arch)
    rrg.detach_all_pins()
    wirelength: Dict[str, float] = {}
    for placed in nets:
        net = placed.to_graph_net()
        rrg.attach_pins(net.terminals)
        tree = algorithm(rrg.graph, net)
        wirelength[placed.name] = sum(
            rrg.base_weight(u, v) for u, v, _ in tree.tree.edges()
        )
        rrg.commit(tree.tree)
    return wirelength
