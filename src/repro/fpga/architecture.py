"""Symmetrical-array FPGA architecture model (Section 2, Figure 1).

An architecture is an R×C array of configurable logic blocks surrounded
by routing channels of width W (tracks per channel), with:

* **switch blocks** at every channel intersection, whose flexibility
  ``Fs`` is "the number of different channel edges to which [a channel
  edge] may be connected" [12], and
* **connection blocks** joining logic-block pins to ``Fc`` of the W
  adjacent tracks.

Two presets reproduce the paper's experimental platforms:

* :func:`xc3000` — the Xilinx 3000-series model used by CGE [12]:
  ``Fs = 6``, ``Fc = ⌈0.6·W⌉``;
* :func:`xc4000` — the 4000-series model used by SEGA [27] and GBP
  [37]: ``Fs = 3``, ``Fc = W``.  (The paper's prose says Fs = 4 but its
  Table 3 caption and the SEGA/GBP papers use 3; we follow the table —
  see DESIGN.md §4.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from ..errors import ArchitectureError

Side = str  # "N", "E", "S", "W"
SIDES: Tuple[Side, ...] = ("N", "E", "S", "W")

#: the six unordered side pairs inside a switch block
SIDE_PAIRS: Tuple[Tuple[Side, Side], ...] = (
    ("W", "E"), ("S", "N"), ("W", "N"), ("W", "S"), ("E", "N"), ("E", "S"),
)


@dataclass(frozen=True)
class Architecture:
    """A symmetrical-array FPGA.

    Parameters
    ----------
    rows, cols:
        Logic-block array dimensions (``rows × cols`` blocks).
    channel_width:
        W — number of parallel tracks per routing channel.
    fs:
        Switch-block flexibility (connections per incoming wire end).
        Must be a positive multiple-of-3-friendly value; the pattern
        generator distributes ``fs`` connections across the three other
        sides as evenly as possible (``fs = 3`` → the classic disjoint
        switch block, ``fs = 6`` → two tracks per side, the 3000-series
        behaviour).
    fc:
        Connection-block flexibility — how many of the W adjacent
        tracks each logic-block pin can reach.
    pins_per_block:
        Pin slots per logic block, distributed round-robin over the
        four sides.
    segment_weight / switch_weight / pin_weight:
        Base edge weights of the routing graph: wirelength of one wire
        segment, the (small) cost of a programmable switch, and the
        pin-to-track connection cost.
    name:
        Family label used in reports.
    """

    rows: int
    cols: int
    channel_width: int
    fs: int = 3
    fc: int = 0  # 0 means "equal to channel_width"
    pins_per_block: int = 8
    segment_weight: float = 1.0
    switch_weight: float = 0.1
    pin_weight: float = 0.5
    name: str = "generic"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ArchitectureError("array dimensions must be positive")
        if self.channel_width < 1:
            raise ArchitectureError("channel width must be >= 1")
        if self.fs < 1:
            raise ArchitectureError("Fs must be >= 1")
        if self.pins_per_block < 1:
            raise ArchitectureError("need at least one pin per block")
        if self.fc < 0 or self.fc > self.channel_width:
            raise ArchitectureError(
                f"Fc={self.fc} out of range for W={self.channel_width}"
            )
        if self.segment_weight <= 0:
            raise ArchitectureError("segment weight must be positive")
        if self.switch_weight < 0 or self.pin_weight < 0:
            raise ArchitectureError("switch/pin weights must be >= 0")

    @property
    def effective_fc(self) -> int:
        """Fc, resolving the ``0 == full`` convention."""
        return self.fc if self.fc else self.channel_width

    @property
    def num_blocks(self) -> int:
        return self.rows * self.cols

    def with_channel_width(self, width: int) -> "Architecture":
        """Same architecture at a different W (used by the width search).

        Families whose Fc scales with W (XC3000's ``⌈0.6·W⌉``) are
        handled by :class:`ArchitectureFamily`; this method keeps an
        explicit Fc only if it was explicitly set below W.
        """
        fc = self.fc if self.fc and self.fc <= width else 0
        return replace(self, channel_width=width, fc=fc)

    def switch_pattern(self, side_a: Side, side_b: Side) -> List[Tuple[int, int]]:
        """Track pairs connected between ``side_a`` and ``side_b``.

        Each wire end must reach ``fs`` wire ends on the other three
        sides; connections are distributed ``fs // 3`` per side with the
        remainder given to the first pairs in :data:`SIDE_PAIRS` order.
        A track ``t`` connects to tracks ``t, t+1, …`` (mod W) on the
        other side, so ``fs = 3`` reproduces the disjoint (identity)
        switch block and ``fs = 6`` the denser 3000-series block.
        """
        if (side_a, side_b) not in SIDE_PAIRS and (
            side_b,
            side_a,
        ) not in SIDE_PAIRS:
            raise ArchitectureError(f"bad side pair ({side_a}, {side_b})")
        base = self.fs // 3
        remainder = self.fs % 3
        try:
            pair_index = SIDE_PAIRS.index((side_a, side_b))
        except ValueError:
            pair_index = SIDE_PAIRS.index((side_b, side_a))
        # Each side belongs to exactly 3 of the 6 side pairs; these boost
        # sets give every side exactly `remainder` boosted pairs, so each
        # wire end gets exactly fs connections in a full switch block.
        boosted = ((), (0, 1), (0, 1, 2, 5))[remainder]
        fanout = base + (1 if pair_index in boosted else 0)
        w = self.channel_width
        pairs = []
        for t in range(w):
            for k in range(min(fanout, w)):
                pairs.append((t, (t + k) % w))
        return pairs

    def pin_side(self, pin_index: int) -> Side:
        """Side hosting the given pin slot (round-robin N, E, S, W)."""
        if not 0 <= pin_index < self.pins_per_block:
            raise ArchitectureError(
                f"pin index {pin_index} out of range "
                f"(block has {self.pins_per_block} pins)"
            )
        return SIDES[pin_index % 4]

    def pin_tracks(self, pin_index: int) -> List[int]:
        """The Fc track indices the given pin can connect to.

        Different pins start at staggered offsets so that small Fc
        values still spread load across the channel (the usual
        connection-block stagger).
        """
        fc = self.effective_fc
        w = self.channel_width
        start = (pin_index * max(1, w // max(1, self.pins_per_block))) % w
        return [(start + i) % w for i in range(fc)]


@dataclass(frozen=True)
class ArchitectureFamily:
    """A parametric family ``W → Architecture`` (Fc may depend on W)."""

    name: str
    build: Callable[[int, int, int], Architecture] = field(compare=False)

    def at(self, rows: int, cols: int, channel_width: int) -> Architecture:
        return self.build(rows, cols, channel_width)


def xc3000(rows: int, cols: int, channel_width: int) -> Architecture:
    """Xilinx 3000-series model: Fs = 6, Fc = ⌈0.6·W⌉ (Table 2)."""
    return Architecture(
        rows=rows,
        cols=cols,
        channel_width=channel_width,
        fs=6,
        fc=int(math.ceil(0.6 * channel_width)),
        name="xc3000",
    )


def xc4000(rows: int, cols: int, channel_width: int) -> Architecture:
    """Xilinx 4000-series model: Fs = 3, Fc = W (Table 3)."""
    return Architecture(
        rows=rows,
        cols=cols,
        channel_width=channel_width,
        fs=3,
        fc=channel_width,
        name="xc4000",
    )


XC3000_FAMILY = ArchitectureFamily(name="xc3000", build=xc3000)
XC4000_FAMILY = ArchitectureFamily(name="xc4000", build=xc4000)
