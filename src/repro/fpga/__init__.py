"""FPGA architecture substrate: the platform of Sections 2 and 5.

Symmetrical-array architecture models (:class:`Architecture`, with
Xilinx 3000/4000-series presets), the routing-resource graph of
Figure 2 (:class:`RoutingResourceGraph`), placed circuits, the
published benchmark statistics of Tables 2–5, and the seeded synthetic
circuit generator that stands in for the unavailable industrial
netlists.
"""

from .architecture import (
    Architecture,
    ArchitectureFamily,
    SIDES,
    SIDE_PAIRS,
    XC3000_FAMILY,
    XC4000_FAMILY,
    xc3000,
    xc4000,
)
from .benchmarks import (
    CircuitSpec,
    TABLE1_PUBLISHED,
    TABLE5_PUBLISHED,
    XC3000_CIRCUITS,
    XC4000_CIRCUITS,
    circuit_spec,
)
from .netlist import PinRef, PlacedCircuit, PlacedNet
from .routing_graph import (
    RoutingResourceGraph,
    SegmentInfo,
    build_routing_graph,
    junction,
    pin_node,
)
from .synthetic import scaled_spec, synthesize_circuit
from .three_d import (
    Architecture3D,
    PlacedNet3D,
    RoutingResourceGraph3D,
    pin_node_3d,
    route_nets_3d,
)

__all__ = [
    "Architecture",
    "ArchitectureFamily",
    "SIDES",
    "SIDE_PAIRS",
    "XC3000_FAMILY",
    "XC4000_FAMILY",
    "xc3000",
    "xc4000",
    "CircuitSpec",
    "TABLE1_PUBLISHED",
    "TABLE5_PUBLISHED",
    "XC3000_CIRCUITS",
    "XC4000_CIRCUITS",
    "circuit_spec",
    "PinRef",
    "PlacedCircuit",
    "PlacedNet",
    "RoutingResourceGraph",
    "SegmentInfo",
    "build_routing_graph",
    "junction",
    "pin_node",
    "scaled_spec",
    "synthesize_circuit",
    "Architecture3D",
    "PlacedNet3D",
    "RoutingResourceGraph3D",
    "pin_node_3d",
    "route_nets_3d",
]
