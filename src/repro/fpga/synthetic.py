"""Seeded synthetic placed circuits matching published benchmark stats.

The original industrial netlists routed in §5 are not available; per the
substitution policy in DESIGN.md §4 we regenerate each circuit from its
published statistics: array size, net count and pin-count histogram
(Tables 2–3).  Channel-width behaviour additionally depends on how
*local* the placement is (a placed circuit's nets cluster spatially), so
nets are placed with a locality model: each net picks a center block and
spreads its pins around it with a geometric tail, calibrated so that the
mean net bounding box resembles placed-circuit behaviour (small nets
local, large nets spanning a region).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Set, Tuple

from ..errors import NetError
from .benchmarks import CircuitSpec
from .netlist import PinRef, PlacedCircuit, PlacedNet


def _sample_pin_count(spec_bucket: str, rng: random.Random) -> int:
    """Sample a pin count within one of the paper's histogram buckets."""
    if spec_bucket == "2-3":
        return rng.choice((2, 2, 3))  # 2-pin nets dominate real designs
    if spec_bucket == "4-10":
        return rng.randint(4, 10)
    # ">10": real circuits' large nets are mostly 11-20 pins with a
    # short tail; clamp to keep routing tractable.
    return min(11 + int(rng.expovariate(0.25)), 25)


def _bucket_schedule(spec: CircuitSpec, rng: random.Random) -> List[str]:
    """The per-net bucket labels, shuffled deterministically."""
    labels = (
        ["2-3"] * spec.nets_2_3
        + ["4-10"] * spec.nets_4_10
        + [">10"] * spec.nets_over_10
    )
    rng.shuffle(labels)
    return labels


class _PinAllocator:
    """Hands out free (block, pin) slots with spatial locality."""

    def __init__(self, cols: int, rows: int, pins_per_block: int,
                 rng: random.Random):
        self.cols = cols
        self.rows = rows
        self.pins_per_block = pins_per_block
        self.rng = rng
        self._free: Dict[Tuple[int, int], List[int]] = {
            (x, y): list(range(pins_per_block))
            for x in range(cols)
            for y in range(rows)
        }

    def capacity_left(self) -> int:
        return sum(len(v) for v in self._free.values())

    def _ring(self, cx: int, cy: int, radius: int) -> List[Tuple[int, int]]:
        """Blocks at Chebyshev distance ``radius`` from the center."""
        if radius == 0:
            return [(cx, cy)] if (cx, cy) in self._free else []
        out = []
        for dx in range(-radius, radius + 1):
            for dy in (-radius, radius):
                b = (cx + dx, cy + dy)
                if b in self._free:
                    out.append(b)
        for dy in range(-radius + 1, radius):
            for dx in (-radius, radius):
                b = (cx + dx, cy + dy)
                if b in self._free:
                    out.append(b)
        return out

    def take_near(self, cx: int, cy: int, spread: int) -> PinRef:
        """A free pin slot near ``(cx, cy)``.

        Tries a geometric radius around the center (locality), then
        expands ring by ring until a free slot is found.
        """
        start = min(
            int(self.rng.expovariate(1.0 / max(1, spread))),
            max(self.cols, self.rows),
        )
        max_radius = self.cols + self.rows
        for radius in list(range(start, max_radius)) + list(range(start)):
            candidates = [
                b for b in self._ring(cx, cy, radius) if self._free[b]
            ]
            if candidates:
                block = self.rng.choice(candidates)
                pins = self._free[block]
                pin = pins.pop(self.rng.randrange(len(pins)))
                return (block[0], block[1], pin)
        raise NetError("placement ran out of pin slots")


def synthesize_circuit(
    spec: CircuitSpec,
    seed: int = 0,
    pins_per_block: int = 8,
    locality: float = 0.22,
) -> PlacedCircuit:
    """Generate a placed circuit matching ``spec``'s published statistics.

    Parameters
    ----------
    spec:
        Published circuit statistics (array size + pin histogram).
    seed:
        RNG seed; the same (spec, seed) always yields the same circuit.
    pins_per_block:
        Pin slots per logic block (must leave headroom over the spec's
        total pin demand).
    locality:
        Net spread as a fraction of the array diagonal — the knob
        calibrating how "placed" the circuit looks.  Small nets use
        roughly this spread; nets with many pins spread proportionally
        wider, as placed high-fanout nets do.

    Returns
    -------
    A validated :class:`PlacedCircuit`.
    """
    # zlib.crc32 is stable across processes (unlike str.__hash__, which
    # is randomized per interpreter run)
    rng = random.Random((seed << 16) ^ (zlib.crc32(spec.name.encode()) & 0xFFFF))
    alloc = _PinAllocator(spec.cols, spec.rows, pins_per_block, rng)
    diag = spec.cols + spec.rows
    nets: List[PlacedNet] = []
    for i, bucket in enumerate(_bucket_schedule(spec, rng)):
        count = _sample_pin_count(bucket, rng)
        cx = rng.randrange(spec.cols)
        cy = rng.randrange(spec.rows)
        spread = max(1, int(locality * diag * (1.0 + count / 10.0)))
        pins: List[PinRef] = []
        for _ in range(count):
            pins.append(alloc.take_near(cx, cy, spread))
        nets.append(
            PlacedNet(
                name=f"{spec.name}_n{i}",
                source=pins[0],
                sinks=tuple(pins[1:]),
            )
        )
    circuit = PlacedCircuit(
        name=spec.name, rows=spec.rows, cols=spec.cols, nets=nets
    )
    return circuit.validate(pins_per_block)


def scaled_spec(
    spec: CircuitSpec, fraction: float, min_nets: int = 8
) -> CircuitSpec:
    """A shrunken copy of ``spec`` for fast default benchmark runs.

    Scales the array and every histogram bucket by ``fraction`` (at
    least ``min_nets`` total nets survive) so the default bench suite
    exercises the identical pipeline at laptop-friendly sizes; set
    ``REPRO_FULL=1`` to run the published sizes.
    """
    if not 0 < fraction <= 1:
        raise NetError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return spec

    def scale(n: int) -> int:
        return max(1, round(n * fraction))

    b23 = scale(spec.nets_2_3)
    b410 = scale(spec.nets_4_10)
    bover = max(0, round(spec.nets_over_10 * fraction))
    total = b23 + b410 + bover
    if total < min_nets:
        b23 += min_nets - total
    # shrink the array area in proportion to the net count (linear
    # dimensions by sqrt) so pin density per block matches the original
    # circuit — density is what channel-width behaviour depends on
    import math

    dim_scale = math.sqrt(fraction)
    return CircuitSpec(
        name=f"{spec.name}@{fraction:g}",
        family=spec.family,
        cols=max(4, round(spec.cols * dim_scale)),
        rows=max(4, round(spec.rows * dim_scale)),
        nets_2_3=b23,
        nets_4_10=b410,
        nets_over_10=bover,
        published=spec.published,
    )
