"""Placed circuits: nets over logic-block pin slots.

The router's input (§5): a technology-mapped, placed circuit whose nets
name (block, pin) slots on the FPGA.  Placement itself is out of the
paper's scope ("we assume that partitioning, technology mapping, and
placement have already been performed"), so circuits here are either
synthetic (:mod:`repro.fpga.synthetic`) or hand-built in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import NetError
from ..net import Net
from .architecture import Architecture
from .routing_graph import pin_node

#: a pin reference: (block_x, block_y, pin_slot)
PinRef = Tuple[int, int, int]


@dataclass(frozen=True)
class PlacedNet:
    """A net whose pins are placed logic-block pin slots."""

    name: str
    source: PinRef
    sinks: Tuple[PinRef, ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise NetError(f"net {self.name!r} has no sinks")
        seen = {self.source}
        for s in self.sinks:
            if s in seen:
                raise NetError(f"net {self.name!r} reuses pin {s!r}")
            seen.add(s)

    @property
    def num_pins(self) -> int:
        return 1 + len(self.sinks)

    @property
    def pins(self) -> Tuple[PinRef, ...]:
        return (self.source,) + self.sinks

    def to_graph_net(self) -> Net:
        """The net expressed over routing-graph pin nodes."""
        return Net(
            source=pin_node(*self.source),
            sinks=tuple(pin_node(*s) for s in self.sinks),
            name=self.name,
        )

    def bounding_box(self) -> Tuple[int, int, int, int]:
        """(min_x, min_y, max_x, max_y) over the net's blocks."""
        xs = [p[0] for p in self.pins]
        ys = [p[1] for p in self.pins]
        return (min(xs), min(ys), max(xs), max(ys))

    def half_perimeter(self) -> int:
        """HPWL estimate of the net's wirelength demand."""
        x0, y0, x1, y1 = self.bounding_box()
        return (x1 - x0) + (y1 - y0)


@dataclass
class PlacedCircuit:
    """A complete placed design: nets plus the array it targets."""

    name: str
    rows: int
    cols: int
    nets: List[PlacedNet] = field(default_factory=list)

    def validate(self, pins_per_block: int) -> "PlacedCircuit":
        """Check placement legality: pins in range and used at most once."""
        used: Dict[PinRef, str] = {}
        for net in self.nets:
            for bx, by, p in net.pins:
                if not (0 <= bx < self.cols and 0 <= by < self.rows):
                    raise NetError(
                        f"net {net.name!r}: block ({bx},{by}) outside "
                        f"{self.cols}x{self.rows} array"
                    )
                if not 0 <= p < pins_per_block:
                    raise NetError(
                        f"net {net.name!r}: pin slot {p} out of range"
                    )
                ref = (bx, by, p)
                if ref in used:
                    raise NetError(
                        f"pin {ref!r} used by both {used[ref]!r} "
                        f"and {net.name!r}"
                    )
                used[ref] = net.name
        return self

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def pin_histogram(self) -> Dict[str, int]:
        """Net counts by the paper's pin buckets (Tables 2–3 columns)."""
        buckets = {"2-3": 0, "4-10": 0, ">10": 0}
        for net in self.nets:
            n = net.num_pins
            if n <= 3:
                buckets["2-3"] += 1
            elif n <= 10:
                buckets["4-10"] += 1
            else:
                buckets[">10"] += 1
        return buckets

    def total_pins(self) -> int:
        return sum(net.num_pins for net in self.nets)

    def stats(self) -> Dict[str, object]:
        hist = self.pin_histogram()
        return {
            "name": self.name,
            "size": f"{self.cols}x{self.rows}",
            "nets": self.num_nets,
            "pins": self.total_pins(),
            **hist,
        }
