"""Input lint: structural checks on circuits and architectures.

The lint layer answers "is this input even plausible?" *before* a run
consumes minutes of routing.  It never mutates its inputs and reports
everything it finds (no fail-fast), so one run surfaces every problem.

Severity policy:

* **error** — the router would crash or silently mis-route: placements
  outside the array, pin slots beyond ``pins_per_block``, one physical
  pin claimed by two nets, duplicate net names, degenerate nets.
* **warning** — legal but suspicious or capacity-doomed inputs:
  channel-span demand at or above the track count, unusual
  architecture parameters.  Warnings never block a run in lenient
  mode; ``ValidationReport.raise_if_errors(strict=True)`` promotes
  them.  Capacity findings are deliberately *not* errors: the
  channel-width sweep (:func:`repro.router.channel_width.minimum_channel_width`)
  probes widths that are expected to be infeasible, and turning that
  into a hard failure would break the sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..fpga.architecture import Architecture
from ..fpga.netlist import PlacedCircuit
from .diagnostics import ValidationReport

#: channel-span key reused from the routing graph: ("H"|"V", x, y)
SpanKey = Tuple[str, int, int]


def pin_span(arch: Architecture, bx: int, by: int, p: int) -> SpanKey:
    """The single channel span a pin's connection block taps.

    Mirrors (independently of) the routing graph's construction: a pin
    on side S/N taps the horizontal channel below/above its block, a
    pin on side W/E the vertical channel beside it.
    """
    side = arch.pin_side(p)
    if side == "S":
        return ("H", bx, by)
    if side == "N":
        return ("H", bx, by + 1)
    if side == "W":
        return ("V", bx, by)
    return ("V", bx + 1, by)


def validate_circuit(
    circuit: PlacedCircuit, arch: Optional[Architecture] = None
) -> ValidationReport:
    """Lint a placed circuit, optionally against an architecture.

    Without ``arch`` only circuit-internal invariants are checked
    (net shapes, placements against the circuit's own array, pin
    reuse).  With ``arch`` the report also covers architecture fit:
    array size, pin-slot range, connection-block reachability, and a
    per-channel-span demand lower bound.
    """
    report = ValidationReport(subject=f"circuit {circuit.name!r}")
    seen_names: Set[str] = set()
    used_pins: Dict[Tuple[int, int, int], str] = {}
    # distinct nets tapping each channel span — every net with a pin on
    # a span must consume at least one of its tracks (committing a route
    # removes the junction nodes of the used track), so this count is an
    # exact lower bound on the span's track demand
    span_demand: Dict[SpanKey, Set[str]] = {}

    for net in circuit.nets:
        if net.name in seen_names:
            report.add(
                "NET_DUP_NAME",
                f"net name {net.name!r} appears more than once",
                location=net.name,
            )
        seen_names.add(net.name)
        if not net.sinks:
            report.add(
                "NET_NO_SINKS",
                f"net {net.name!r} has no sinks",
                location=net.name,
            )
        terminal_seen: Set[Tuple[int, int, int]] = set()
        for ref in net.pins:
            if ref in terminal_seen:
                report.add(
                    "NET_DUP_TERMINAL",
                    f"net {net.name!r} lists pin {ref!r} twice",
                    location=net.name,
                )
            terminal_seen.add(ref)
            bx, by, p = ref
            if not (0 <= bx < circuit.cols and 0 <= by < circuit.rows):
                report.add(
                    "PLACEMENT_OUT_OF_RANGE",
                    f"net {net.name!r}: block ({bx},{by}) outside the "
                    f"{circuit.cols}x{circuit.rows} array",
                    location=net.name,
                )
                continue
            if ref in used_pins and used_pins[ref] != net.name:
                report.add(
                    "PIN_REUSED",
                    f"pin {ref!r} claimed by both {used_pins[ref]!r} "
                    f"and {net.name!r}",
                    location=net.name,
                )
            used_pins.setdefault(ref, net.name)
            if arch is not None:
                if not 0 <= p < arch.pins_per_block:
                    report.add(
                        "PIN_SLOT_OUT_OF_RANGE",
                        f"net {net.name!r}: pin slot {p} out of range "
                        f"(architecture has {arch.pins_per_block} "
                        f"pins per block)",
                        location=net.name,
                    )
                    continue
                if not arch.pin_tracks(p):
                    report.add(
                        "PIN_UNREACHABLE",
                        f"net {net.name!r}: pin slot {p} taps no tracks "
                        f"(Fc resolves to 0)",
                        location=net.name,
                    )
                span_demand.setdefault(
                    pin_span(arch, bx, by, p), set()
                ).add(net.name)

    if arch is not None:
        if circuit.cols > arch.cols or circuit.rows > arch.rows:
            report.add(
                "ARRAY_MISMATCH",
                f"circuit array {circuit.cols}x{circuit.rows} exceeds "
                f"architecture array {arch.cols}x{arch.rows}",
            )
        w = arch.channel_width
        for span in sorted(span_demand):
            demand = len(span_demand[span])
            if demand > w:
                report.add(
                    "CHANNEL_CAPACITY_EXCEEDED",
                    f"{demand} nets need tracks of span {span!r} but the "
                    f"channel has only {w}; unroutable at this width",
                    severity="warning",
                    location=repr(span),
                )
            elif demand == w:
                report.add(
                    "CHANNEL_CAPACITY_TIGHT",
                    f"{demand} nets need tracks of span {span!r} with "
                    f"exactly {w} available; no slack for through-routes",
                    severity="warning",
                    location=repr(span),
                )
    return report


def validate_architecture(arch: Architecture) -> ValidationReport:
    """Lint an architecture for suspicious (but legal) parameters.

    Hard invariants are enforced by ``Architecture.__post_init__``
    already, so everything here is warning/info severity.
    """
    report = ValidationReport(subject=f"architecture {arch.name!r}")
    if arch.fs % 3 != 0:
        report.add(
            "ARCH_FS_NOT_MULTIPLE_OF_3",
            f"Fs={arch.fs} is not a multiple of 3; switch fanout is "
            f"distributed unevenly over the three far sides",
            severity="warning",
        )
    if arch.switch_weight == 0:
        report.add(
            "ARCH_ZERO_SWITCH_WEIGHT",
            "switch weight is 0; many distinct paths tie and routing "
            "becomes tie-break sensitive",
            severity="warning",
        )
    if arch.effective_fc < arch.channel_width:
        report.add(
            "ARCH_FC_BELOW_FULL",
            f"Fc={arch.effective_fc} < W={arch.channel_width}; pins "
            f"reach a strict subset of tracks",
            severity="info",
        )
    if arch.rows == 1 or arch.cols == 1:
        report.add(
            "ARCH_DEGENERATE_ARRAY",
            f"{arch.rows}x{arch.cols} array has a single row or column",
            severity="warning",
        )
    return report
