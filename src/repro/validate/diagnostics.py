"""Structured diagnostics shared by the lint and checker layers.

Every problem the validator can report carries a *stable code* (a short
SCREAMING_SNAKE identifier, registered in :data:`CODES`), a severity,
an optional location (net name, file path, channel span, ...) and a
human-readable message.  Callers branch on codes, never on message
text, so messages can improve without breaking tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import ValidationError

#: diagnostic severities, mildest first
SEVERITIES = ("info", "warning", "error")

#: registry of every stable diagnostic code with a one-line description;
#: docs/validation.md renders this table, tests assert emitted codes are
#: registered here
CODES: Dict[str, str] = {
    # -- input lint: circuits -------------------------------------------
    "NET_NO_SINKS": "net has a source but no sinks",
    "NET_DUP_TERMINAL": "net lists the same pin more than once",
    "NET_DUP_NAME": "two nets in the circuit share a name",
    "PLACEMENT_OUT_OF_RANGE": "net pin placed outside the block array",
    "PIN_SLOT_OUT_OF_RANGE": "pin slot index exceeds pins_per_block",
    "PIN_REUSED": "one physical pin slot is claimed by two nets",
    "PIN_UNREACHABLE": "pin has no connection-block taps (Fc = 0 slot)",
    "ARRAY_MISMATCH": "circuit array is larger than the architecture",
    "CHANNEL_CAPACITY_EXCEEDED":
        "lower-bound demand on a channel span exceeds hard capacity",
    "CHANNEL_CAPACITY_TIGHT":
        "lower-bound demand on a channel span is near capacity",
    # -- input lint: architectures --------------------------------------
    "ARCH_FS_NOT_MULTIPLE_OF_3":
        "Fs not divisible by 3; switch fanout is distributed unevenly",
    "ARCH_ZERO_SWITCH_WEIGHT":
        "switch weight is 0; distinct shortest paths may tie",
    "ARCH_FC_BELOW_FULL":
        "Fc < W; some pins reach only a strict subset of tracks",
    "ARCH_DEGENERATE_ARRAY": "array has a single row or column",
    # -- result checker -------------------------------------------------
    "RESULT_NET_UNKNOWN": "result routes a net the circuit does not define",
    "RESULT_NET_MISSING":
        "circuit net neither routed nor reported as failed",
    "RESULT_NET_DUPLICATE": "result contains two routes for one net",
    "TREE_MISSES_TERMINAL": "route tree does not span its terminals",
    "TREE_NOT_TREE": "route is disconnected or contains a cycle",
    "TREE_EDGE_NOT_IN_DEVICE": "route uses an edge the device lacks",
    "TREE_EDGE_NOT_IN_HOST": "tree edge absent from host graph",
    "TREE_EDGE_WEIGHT_MISMATCH": "tree edge weight deviates from host",
    "WIRELENGTH_MISMATCH": "recomputed wirelength differs from recorded",
    "PATHLENGTH_MISMATCH": "recomputed pathlength differs from recorded",
    "RESOURCE_SHARED": "two nets consume the same routing resource",
    "CHANNEL_OVERCAPACITY": "channel span hosts more nets than tracks",
    "ARBORESCENCE_NOT_SHORTEST":
        "PFA/IDOM tree path longer than graph distance at route time",
    "OPTIMAL_PATHLENGTH_DIVERGENT":
        "recorded optimal pathlength differs from replayed distance",
}


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding."""

    code: str
    severity: str
    message: str
    #: where the problem is: a net name, file path, span key, ...
    location: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def render(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        return f"{self.severity}: {self.code}{loc}: {self.message}"


@dataclass
class ValidationReport:
    """An ordered collection of :class:`Diagnostic`s for one subject."""

    subject: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: str = "error",
        location: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                location=location,
            )
        )

    def extend(self, other: "ValidationReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were recorded."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def raise_if_errors(self, *, strict: bool = False) -> None:
        """Raise :class:`~repro.errors.ValidationError` on blockers.

        In strict mode warnings are promoted to blockers too.
        """
        blocking = self.errors
        if strict:
            blocking = blocking + self.warnings
        if blocking:
            head = blocking[0]
            more = f" (+{len(blocking) - 1} more)" if len(blocking) > 1 else ""
            raise ValidationError(
                f"{self.subject}: {head.render()}{more}", report=self
            )

    def render(self) -> str:
        """Multi-line human-readable listing (CLI output)."""
        if not self.diagnostics:
            return f"{self.subject}: ok"
        lines = [f"{self.subject}:"]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity,
                    "message": d.message,
                    "location": d.location,
                }
                for d in self.diagnostics
            ],
        }


def merge_reports(
    subject: str, reports: Iterable[ValidationReport]
) -> ValidationReport:
    """Concatenate several reports under one subject heading."""
    merged = ValidationReport(subject=subject)
    for r in reports:
        merged.extend(r)
    return merged
