"""Self-verification: input lint, result checking, shared tree checks.

Three layers (see ``docs/validation.md``):

* :func:`validate_circuit` / :func:`validate_architecture` — input
  lint producing a :class:`ValidationReport` of structured
  :class:`Diagnostic`\\ s;
* :func:`verify_result` / :func:`check_net_route` — the independent
  result checker (recomputed occupancy, tree validity, bookkeeping,
  arborescence shortest-path replay);
* :func:`assert_valid_steiner_tree` / :func:`steiner_tree_violations`
  — the shared tree-shape implementation, re-exported from
  :mod:`repro.graph.validation` so the checker and the steiner tests
  certify trees with one code path.

``RouterConfig.verify`` wires the checker into the engine
(``"off" | "final" | "pass"``); ``python -m repro validate`` exposes
the lint/checker from the command line (exit code 4 on findings).
"""

from ..graph.validation import (
    assert_valid_steiner_tree,
    steiner_tree_violations,
)
from .checker import (
    ARBORESCENCE_ALGORITHMS,
    check_net_route,
    segment_span,
    verify_result,
)
from .diagnostics import (
    CODES,
    SEVERITIES,
    Diagnostic,
    ValidationReport,
    merge_reports,
)
from .lint import validate_architecture, validate_circuit

__all__ = [
    "ARBORESCENCE_ALGORITHMS",
    "CODES",
    "SEVERITIES",
    "Diagnostic",
    "ValidationReport",
    "assert_valid_steiner_tree",
    "check_net_route",
    "merge_reports",
    "segment_span",
    "steiner_tree_violations",
    "validate_architecture",
    "validate_circuit",
    "verify_result",
]
