"""Independent result checker: certify a :class:`RoutingResult`.

The checker re-derives every claim a result makes from first
principles — the device structure, the circuit, and the config — and
deliberately shares **no accounting code** with the router:

* channel spans are derived *structurally* from junction node ids, not
  from the routing graph's segment bookkeeping;
* occupancy is recounted from scratch over all routes;
* pathlengths are re-measured with a local DFS, shortest distances
  with a local Dijkstra — neither imports the router's search stack.

The only shared implementation is :func:`steiner_tree_violations`
(tree shape + host containment), which the issue explicitly makes the
single source of truth for both the checker and the steiner tests.

Two levels:

* ``static`` — per-net tree validity against a pristine device,
  terminal coverage, wirelength/pathlength bookkeeping, cross-net
  resource disjointness, and channel occupancy.
* ``full`` — additionally *replays* the final pass's commit sequence
  on a fresh device (same congestion reweighting rule) and certifies
  the paper's arborescence guarantee for DJKA/DOM/PFA/IDOM nets:
  every sink's tree path equals its shortest graph distance *at the
  moment the net was routed*.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..fpga.architecture import Architecture
from ..fpga.netlist import PlacedCircuit
from ..fpga.routing_graph import RoutingResourceGraph
from ..graph.core import Graph
from ..graph.validation import steiner_tree_violations
from ..router.config import RouterConfig
from ..router.result import NetRoute, RoutingResult
from .diagnostics import ValidationReport

Node = Hashable
SpanKey = Tuple[str, int, int]

#: algorithms whose output trees must realize shortest source→sink
#: paths in the graph they were routed on (tests/test_arborescence.py
#: asserts this for all four)
ARBORESCENCE_ALGORITHMS = frozenset({"djka", "dom", "pfa", "idom"})

#: relative tolerance for recomputed-vs-recorded float comparisons
REL_TOL = 1e-9


def _close(a: float, b: float, tol: float = REL_TOL) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def segment_span(u: Node, v: Node) -> Optional[SpanKey]:
    """Channel span of a wire-segment edge, derived from node structure.

    A horizontal segment joins ``("J", x, y, "E", t)`` to
    ``("J", x+1, y, "W", t)``; a vertical one ``("J", x, y, "N", t)``
    to ``("J", x, y+1, "S", t)``.  Anything else (switch edges, pin
    edges, foreign nodes) is not a segment and yields ``None``.
    """
    for a, b in ((u, v), (v, u)):
        if not (
            isinstance(a, tuple) and isinstance(b, tuple)
            and len(a) == 5 and len(b) == 5
            and a[0] == "J" and b[0] == "J" and a[4] == b[4]
        ):
            continue
        if a[3] == "E" and b[3] == "W" and b[1] == a[1] + 1 and b[2] == a[2]:
            return ("H", a[1], a[2])
        if a[3] == "N" and b[3] == "S" and b[2] == a[2] + 1 and b[1] == a[1]:
            return ("V", a[1], a[2])
    return None


def _tree_distances(route: NetRoute, weight) -> Dict[Node, float]:
    """Distances from the route's source over its tree via local DFS.

    ``weight(u, v)`` supplies the metric; unreachable nodes are simply
    absent (the caller reports missing sinks).
    """
    adj: Dict[Node, List[Tuple[Node, float]]] = {}
    for u, v, _ in route.edges:
        w = weight(u, v)
        adj.setdefault(u, []).append((v, w))
        adj.setdefault(v, []).append((u, w))
    dist = {route.source: 0.0}
    stack = [route.source]
    while stack:
        u = stack.pop()
        for v, w in adj.get(u, ()):
            if v not in dist:
                dist[v] = dist[u] + w
                stack.append(v)
    return dist


def _dijkstra(graph: Graph, source: Node, targets: Set[Node]) -> Dict[Node, float]:
    """Local shortest-distance computation (early exit on ``targets``).

    Independent of :mod:`repro.graph.shortest_paths` so a bug in the
    router's search stack cannot hide from the checker.
    """
    dist: Dict[Node, float] = {}
    remaining = set(targets)
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1
    while heap and remaining:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        remaining.discard(u)
        for v, w in graph.neighbor_items(u):
            if v not in dist:
                heapq.heappush(heap, (d + w, counter, v))
                counter += 1
    return dist


def check_net_route(
    route: NetRoute,
    terminals: Sequence[Node],
    device: RoutingResourceGraph,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Static certification of one net's route against a pristine device.

    Checks tree shape and terminal coverage, containment in the device
    at device base weights (via the shared
    :func:`~repro.graph.validation.steiner_tree_violations`), and the
    route's own wirelength/pathlength bookkeeping recomputed from the
    device.  ``device`` must be pristine (freshly built).
    """
    if report is None:
        report = ValidationReport(subject=f"net {route.name!r}")
    loc = route.name
    for code, message in steiner_tree_violations(
        route.tree(), terminals, host=device.graph
    ):
        if code == "TREE_EDGE_NOT_IN_HOST":
            code = "TREE_EDGE_NOT_IN_DEVICE"
        report.add(code, message, location=loc)
    if report.errors:
        # bookkeeping checks below assume a well-formed, in-device tree
        return report

    wirelength = sum(
        device.base_weight(u, v) for u, v, _ in route.edges
    )
    if not _close(wirelength, route.wirelength):
        report.add(
            "WIRELENGTH_MISMATCH",
            f"recorded wirelength {route.wirelength} but device base "
            f"weights sum to {wirelength}",
            location=loc,
        )
    dist = _tree_distances(route, device.base_weight)
    for sink in route.sinks:
        recorded = route.pathlengths.get(sink)
        actual = dist.get(sink)
        if recorded is None or actual is None:
            report.add(
                "PATHLENGTH_MISMATCH",
                f"sink {sink!r} missing from "
                + ("recorded pathlengths" if recorded is None else "tree"),
                location=loc,
            )
        elif not _close(recorded, actual):
            report.add(
                "PATHLENGTH_MISMATCH",
                f"sink {sink!r}: recorded pathlength {recorded} but the "
                f"tree measures {actual}",
                location=loc,
            )
    return report


def _check_inventory(
    result: RoutingResult, circuit: PlacedCircuit, report: ValidationReport
) -> Dict[str, NetRoute]:
    """Net inventory: result routes ↔ circuit nets, exactly once each."""
    circuit_nets = {n.name for n in circuit.nets}
    routed: Dict[str, NetRoute] = {}
    for route in result.routes:
        if route.name in routed:
            report.add(
                "RESULT_NET_DUPLICATE",
                f"net {route.name!r} routed more than once",
                location=route.name,
            )
        routed[route.name] = route
        if route.name not in circuit_nets:
            report.add(
                "RESULT_NET_UNKNOWN",
                f"result routes {route.name!r} which the circuit "
                f"does not define",
                location=route.name,
            )
    accounted = set(routed) | set(result.failed_nets)
    for name in sorted(circuit_nets - accounted):
        report.add(
            "RESULT_NET_MISSING",
            f"net {name!r} neither routed nor reported failed",
            location=name,
        )
    return routed


def _check_occupancy(
    result: RoutingResult,
    channel_width: int,
    report: ValidationReport,
) -> None:
    """Recount resource usage from scratch across all routes.

    Committed nets are node-disjoint on the device (commitment removes
    every node of a routed tree), so any shared node is a violation.
    Channel occupancy is recounted per span from the structural edge
    form; a span claimed more times than it has tracks is over
    capacity regardless of which nets collide.
    """
    node_owner: Dict[Node, str] = {}
    span_claims: Dict[SpanKey, int] = {}
    for route in result.routes:
        nodes: Set[Node] = {route.source}
        seen_edges: Set[Tuple] = set()
        for u, v, _ in route.edges:
            nodes.add(u)
            nodes.add(v)
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key in seen_edges:
                continue
            seen_edges.add(key)
            span = segment_span(u, v)
            if span is not None:
                span_claims[span] = span_claims.get(span, 0) + 1
        for node in nodes:
            owner = node_owner.get(node)
            if owner is not None and owner != route.name:
                report.add(
                    "RESOURCE_SHARED",
                    f"node {node!r} consumed by both {owner!r} and "
                    f"{route.name!r}",
                    location=route.name,
                )
            else:
                node_owner[node] = route.name
    for span in sorted(span_claims):
        claims = span_claims[span]
        if claims > channel_width:
            report.add(
                "CHANNEL_OVERCAPACITY",
                f"span {span!r} claimed {claims} times but the channel "
                f"has {channel_width} tracks",
                location=repr(span),
            )


def _replay_and_check(
    result: RoutingResult,
    circuit: PlacedCircuit,
    arch: Architecture,
    config: RouterConfig,
    report: ValidationReport,
) -> None:
    """Replay the final pass's commit sequence on a fresh device.

    ``result.routes`` preserves commit order, so re-driving
    attach → commit → reweight with the router's congestion rule
    reconstructs, for each net, the exact graph (weights included) it
    was routed on.  On that graph the arborescence algorithms promise
    shortest source→sink paths; the checker re-derives the distances
    with its own Dijkstra and compares.
    """
    device = RoutingResourceGraph(arch)
    device.detach_all_pins()
    graph = device.graph
    placed_by_name = {n.name: n for n in circuit.nets}
    alpha = config.congestion_alpha if config.congestion else None

    for route in result.routes:
        placed = placed_by_name.get(route.name)
        if placed is None:
            continue  # RESULT_NET_UNKNOWN already reported
        terminals = placed.to_graph_net().terminals
        device.attach_pins(terminals)
        missing = [
            (u, v) for u, v, _ in route.edges if not graph.has_edge(u, v)
        ]
        if missing:
            u, v = missing[0]
            report.add(
                "RESOURCE_SHARED",
                f"edge ({u!r}, {v!r}) no longer available when "
                f"{route.name!r} was committed (consumed earlier)",
                location=route.name,
            )
            device.detach_pins(terminals)
            continue

        if route.algorithm in ARBORESCENCE_ALGORITHMS:
            sinks = set(route.sinks)
            graph_dist = _dijkstra(graph, route.source, sinks)
            tree_dist = _tree_distances(route, graph.weight)
            for sink in route.sinks:
                gd = graph_dist.get(sink)
                td = tree_dist.get(sink)
                if gd is None or td is None:
                    continue  # spanning problems reported statically
                if td > gd + REL_TOL * max(1.0, gd):
                    report.add(
                        "ARBORESCENCE_NOT_SHORTEST",
                        f"sink {sink!r}: tree path costs {td} but the "
                        f"graph distance at route time was {gd} "
                        f"({route.algorithm} promises equality)",
                        location=route.name,
                    )
            # the recorded "optimal" is the base length of *a* shortest
            # congested path; for arborescence nets the tree path is one
            # such path, so divergence marks tie-break sensitivity, not
            # an accounting error — hence warning severity
            for sink in route.sinks:
                opt = route.optimal_pathlengths.get(sink)
                recorded = route.pathlengths.get(sink)
                if opt is None or recorded is None:
                    continue
                if not _close(opt, recorded, tol=1e-6):
                    report.add(
                        "OPTIMAL_PATHLENGTH_DIVERGENT",
                        f"sink {sink!r}: recorded optimal {opt} vs tree "
                        f"pathlength {recorded} (canonical-path "
                        f"tie-break difference)",
                        severity="warning",
                        location=route.name,
                    )

        touched = device.commit(route.tree())
        if alpha is not None:
            _reweight(device, graph, touched, alpha)


def _reweight(
    device: RoutingResourceGraph,
    graph: Graph,
    touched: Set[SpanKey],
    alpha: float,
) -> None:
    """The router's congestion rule, re-implemented for the replay.

    Surviving segment edges of each touched span get weight
    ``base · (1 + alpha · utilization)``; the utilization is recounted
    from the live graph.  Segment base weight is uniform
    (``arch.segment_weight``), so no router bookkeeping is consulted.
    """
    base = device.arch.segment_weight
    w = device.arch.channel_width
    for orient, x, y in touched:
        alive = []
        for t in range(w):
            if orient == "H":
                a = ("J", x, y, "E", t)
                b = ("J", x + 1, y, "W", t)
            else:
                a = ("J", x, y, "N", t)
                b = ("J", x, y + 1, "S", t)
            if graph.has_edge(a, b):
                alive.append((a, b))
        utilization = 1.0 - len(alive) / w
        factor = 1.0 + alpha * utilization
        for a, b in alive:
            graph.set_weight(a, b, base * factor)


def verify_result(
    result: RoutingResult,
    circuit: PlacedCircuit,
    device,
    config: Optional[RouterConfig] = None,
    *,
    level: str = "full",
) -> ValidationReport:
    """Certify ``result`` against ``circuit`` on ``device``.

    ``device`` is an :class:`Architecture` or a
    :class:`RoutingResourceGraph` (only its architecture is used — the
    checker always builds its own pristine graphs, so a consumed
    post-route graph is fine to pass).  ``level`` is ``"static"`` or
    ``"full"`` (static + commit-order replay).
    """
    if level not in ("static", "full"):
        raise ValueError(f"unknown verification level {level!r}")
    arch = device.arch if isinstance(device, RoutingResourceGraph) else device
    cfg = config or RouterConfig()
    report = ValidationReport(
        subject=f"result {result.circuit!r} (W={result.channel_width})"
    )
    if result.channel_width != arch.channel_width:
        report.add(
            "ARRAY_MISMATCH",
            f"result claims channel width {result.channel_width} but "
            f"the device has {arch.channel_width}",
        )
    placed_by_name = {n.name: n for n in circuit.nets}
    routed = _check_inventory(result, circuit, report)

    pristine = RoutingResourceGraph(arch)
    for name, route in routed.items():
        placed = placed_by_name.get(name)
        if placed is None:
            continue
        terminals = placed.to_graph_net().terminals
        check_net_route(route, terminals, pristine, report)
    _check_occupancy(result, arch.channel_width, report)

    if level == "full" and not report.errors:
        _replay_and_check(result, circuit, arch, cfg, report)
    return report
