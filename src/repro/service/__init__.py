"""Crash-safe asynchronous routing jobs (:mod:`repro.service`).

The service turns the library's synchronous routing entry points into
durable *jobs*: submitted requests survive process crashes at any
instant, interrupted work resumes bit-identically from its last engine
checkpoint, identical requests are served from a verified result cache,
and every terminal result has passed the independent checker.

Layering (each module usable on its own):

* :mod:`repro.service.journal` — the append-only write-ahead journal
  (``repro.service/journal-v1``), fsync-per-event, torn-tail recovery;
* :mod:`repro.service.store` — :class:`JobStore`: journal-backed job
  records, per-job directories, checksummed snapshots, the dedupe
  index, and the startup reconciliation scan;
* :mod:`repro.service.admission` — :class:`AdmissionPolicy`:
  queue-depth and per-tenant backpressure plus fast-fail validation;
* :mod:`repro.service.supervisor` — :class:`JobSupervisor`: claim /
  route / verify / finish, seeded-backoff retry, heartbeats and
  stale-job takeover, graceful drain;
* :mod:`repro.service.api` — :class:`RoutingService`: the facade the
  CLI (``repro jobs``) and tests drive;
* :mod:`repro.service.eviction` — :class:`EvictionPolicy`: size/count
  caps on the fingerprint-keyed result cache, LRU with pinning;
* :mod:`repro.service.http` — :class:`ServiceHTTP` / :func:`serve_http`:
  the stdlib-asyncio HTTP front end (submit, status, result, cancel,
  metrics, SSE progress streaming);
* :mod:`repro.service.hub` — :class:`EventHub`: the shared SSE
  broadcast hub (one log tailer per job, bounded per-subscriber
  queues, slow consumers shed to a Last-Event-ID reconnect);
* :mod:`repro.service.overload` — :class:`ServerLimits` /
  :class:`OverloadPolicy`: connection governance and load shedding
  for the front end, with honest ``degraded`` health and metrics;
* :mod:`repro.service.client` — :class:`ServiceClient`: the typed
  HTTP client with retry-with-backoff, ``Retry-After`` honoring,
  exception round-tripping and a client-side circuit breaker.

See ``docs/service.md`` for the state machine, the journal format and
the recovery semantics, and ``tests/test_service.py`` for the
kill-anywhere crash matrix that exercises every fault point.
"""

from .admission import (
    DEFAULT_MAX_JOBS_PER_TENANT,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_PRIORITY,
    AdmissionPolicy,
)
from .api import (
    REQUEST_FORMAT,
    REQUEST_VERSION,
    RoutingService,
    config_to_dict,
    request_fingerprint,
)
from .client import (
    CircuitBreaker,
    CircuitOpenError,
    ServiceClient,
    TransportError,
)
from .eviction import EvictionPolicy
from .http import (
    HTTP_API_VERSION,
    BackgroundServer,
    ServiceHTTP,
    serve_http,
)
from .hub import EventHub
from .overload import HTTPStats, OverloadPolicy, ServerLimits
from .journal import JOURNAL_SCHEMA, Journal, read_journal
from .store import (
    ACTIVE_STATES,
    JOB_STATES,
    STATE_SCHEMA,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
)
from .supervisor import DEFAULT_STALE_AFTER_S, JobSupervisor, config_from_dict

__all__ = [
    "RoutingService",
    "JobSupervisor",
    "JobStore",
    "JobRecord",
    "Journal",
    "read_journal",
    "AdmissionPolicy",
    "EvictionPolicy",
    "ServiceHTTP",
    "BackgroundServer",
    "serve_http",
    "ServiceClient",
    "TransportError",
    "CircuitBreaker",
    "CircuitOpenError",
    "EventHub",
    "ServerLimits",
    "OverloadPolicy",
    "HTTPStats",
    "HTTP_API_VERSION",
    "DEFAULT_PRIORITY",
    "request_fingerprint",
    "config_to_dict",
    "config_from_dict",
    "JOURNAL_SCHEMA",
    "STATE_SCHEMA",
    "JOB_STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "REQUEST_FORMAT",
    "REQUEST_VERSION",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_MAX_JOBS_PER_TENANT",
    "DEFAULT_STALE_AFTER_S",
]
