"""The job supervisor: workers that drive routing sessions to terminal
states no matter what dies underneath them.

One :class:`JobSupervisor` owns the claim/run/finish loop around a
:class:`~repro.service.store.JobStore`:

* **claiming** is priority-then-FIFO over the durable queue: a higher
  journaled ``priority`` (see
  :meth:`~repro.service.admission.AdmissionPolicy.priority_for`) is
  claimed first, ties break on the monotonic job id.  Claims happen
  under one lock and are journaled before any work starts — two
  workers can never both own a job, and the ordering survives restart
  because the priority rides in the ``submitted`` journal event;
* **running** reuses the engine exactly as the CLI does:
  :class:`~repro.engine.RoutingSession` for fixed-width requests,
  :func:`~repro.router.channel_width.minimum_channel_width` for sweep
  requests, always with the job's ``checkpoint.json`` as the engine
  checkpoint — so a crashed job resumes *bit-identically* from its
  last committed pass instead of starting over;
* **deadlines** map the request's budgets onto
  ``RouterConfig.pass_timeout_s`` / ``route_timeout_s``; exceeding one
  is a semantic outcome (the job fails with the timeout recorded), not
  a crash;
* **retry** wraps infrastructure failures (anything that is not a
  :class:`~repro.errors.ReproError`) in the engine's seeded-backoff
  :class:`~repro.engine.retry.RetryPolicy` — each attempt is journaled
  as a requeue + reclaim, so the attempt history survives crashes too;
* **heartbeats** are stamped by a timer thread for as long as an
  attempt is routing (so a single pass longer than the staleness
  threshold never makes a healthy job look abandoned), plus from the
  engine's live trace stream; :meth:`reclaim_stale` re-queues running
  jobs whose owner is dead or silent (stale-job takeover after a
  SIGKILL);
* **fencing**: every claim carries the journaled ``attempts`` count as
  its token; terminal transitions are applied only if the job's live
  ``attempts`` still matches, so a superseded worker (its job taken
  over while it was wedged) has its late completion discarded instead
  of stomping the new owner's state;
* **drain** (:meth:`request_drain`, wired to SIGTERM by ``serve``)
  lets in-flight jobs finish and stops claiming new ones.

Every trace event the engine emits is appended to the job's
``log.jsonl`` as it happens, so ``repro jobs status`` can show live
progress for a job the service is still routing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Dict, Optional

from ..engine import RoutingSession
from ..engine.checkpoint import load_checkpoint
from ..engine.retry import RetryPolicy
from ..errors import (
    CheckpointError,
    EngineTimeoutError,
    JournalError,
    ReproError,
    RoutingError,
    ValidationError,
)
from ..fpga.architecture import xc3000, xc4000
from ..io import circuit_from_dict, load_result, result_to_dict
from ..router.channel_width import minimum_channel_width
from ..router.config import RouterConfig
from ..validate import verify_result
from .store import JobRecord, JobStore

#: how long a running job may go without a heartbeat before takeover
DEFAULT_STALE_AFTER_S = 30.0

_FAMILIES = {"xc3000": xc3000, "xc4000": xc4000}


def config_from_dict(doc: Dict[str, Any]) -> RouterConfig:
    """Rebuild a :class:`RouterConfig` from its request serialization."""
    kwargs = dict(doc)
    nets = kwargs.get("critical_nets")
    if nets is not None:
        kwargs["critical_nets"] = frozenset(nets)
    return RouterConfig(**kwargs)


class JobSupervisor:
    """Claims queued jobs and drives each to a verified terminal state."""

    def __init__(
        self,
        store: JobStore,
        *,
        lock: Optional[threading.RLock] = None,
        engine: str = "serial",
        retry_policy: Optional[RetryPolicy] = None,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        faults=None,
        eviction=None,
    ):
        self.store = store
        self.lock = lock or threading.RLock()
        self.engine = engine
        self.retry_policy = retry_policy or RetryPolicy()
        self.stale_after_s = stale_after_s
        self.faults = faults
        #: optional :class:`~repro.service.eviction.EvictionPolicy`;
        #: when set, a sweep runs after every job completion so the
        #: result store converges to its caps while serving
        self.eviction = eviction
        self._drain = threading.Event()
        #: worker-pool gauges published by :meth:`RoutingService.serve`
        #: and read (without locking — plain int loads) by the HTTP
        #: front end's overload assessment
        self.workers_total = 0
        self.workers_busy = 0

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    def request_drain(self) -> None:
        """Stop claiming new jobs; in-flight jobs run to completion."""
        self._drain.set()

    # ------------------------------------------------------------------
    # claiming
    # ------------------------------------------------------------------
    def claim_next(self, worker: str) -> Optional[JobRecord]:
        """Journal a claim on the best runnable job, if any.

        "Best" is highest journaled priority first, oldest job id
        within a priority level — so a full queue never starves a
        high-priority tenant behind earlier bulk submissions.
        """
        with self.lock:
            if self.draining:
                return None
            # see submissions/cancellations from other processes
            self.store.refresh()
            runnable = sorted(
                (r for r in self.store.records() if r.state == "queued"),
                key=lambda r: (-r.priority, r.job_id),
            )
            for record in runnable:
                if record.cancel_requested:
                    self.store.transition(record.job_id, "cancelled")
                    continue
                return self.store.claim(record.job_id, worker)
        return None

    def reclaim_stale(self) -> int:
        """Re-queue running jobs whose owner is dead or silent.

        Heartbeats carry the claimant's pid; a job whose pid is gone is
        taken over immediately, one whose heartbeat is older than
        ``stale_after_s`` is presumed wedged.  Returns how many jobs
        were re-queued.
        """
        taken = 0
        with self.lock:
            self.store.refresh()
            for record in self.store.records():
                if record.state not in ("running", "checkpointed"):
                    continue
                if self.store.stale(record.job_id, self.stale_after_s):
                    self.store.requeue(record.job_id, "stale_takeover")
                    taken += 1
        return taken

    def run_until_idle(
        self, *, worker: str = "worker-0", max_jobs: Optional[int] = None
    ) -> int:
        """Synchronously drain the queue; returns jobs processed.

        This is the single-threaded service loop the tests (and
        ``repro jobs serve --exit-when-idle``) drive; ``serve`` wraps
        it in worker threads for the long-running daemon case.
        """
        done = 0
        while max_jobs is None or done < max_jobs:
            record = self.claim_next(worker)
            if record is None:
                break
            self.run_job(record, worker)
            done += 1
        return done

    # ------------------------------------------------------------------
    # running one job
    # ------------------------------------------------------------------
    def _superseded(
        self, job_id: str, token: Optional[int]
    ) -> Optional[JobRecord]:
        """The live record iff this worker's claim is no longer current.

        ``token`` is the journaled ``attempts`` count the worker saw at
        claim time.  If the job has since been requeued (stale
        takeover), reclaimed (``attempts`` moved on), or reached a
        terminal state, the caller's completion is stale and must be
        discarded.  Returns ``None`` while the claim is still live.
        Call under :attr:`lock`.
        """
        if token is None:
            return None
        current = self.store.jobs.get(job_id)
        if current is None:
            return None
        if (
            current.terminal
            or current.attempts != token
            or current.state not in ("running", "checkpointed")
        ):
            return current
        return None

    def _fail_fenced(
        self, job_id: str, token: Optional[int], error: str
    ) -> JobRecord:
        """``finish_failed`` unless a newer claim owns the job."""
        with self.lock:
            stale = self._superseded(job_id, token)
            if stale is not None:
                return stale
            return self.store.finish_failed(job_id, error)

    def run_job(self, record: JobRecord, worker: str) -> JobRecord:
        """Drive one claimed job to a terminal state.

        Infrastructure failures retry with seeded backoff (each attempt
        journaled); semantic failures — unroutable, timeout, failed
        verification, an unreadable request, a damaged artifact mid-
        route — terminate the job as ``failed`` with the cause
        recorded.  Only :class:`~repro.errors.JournalError` escapes (a
        broken journal means no transition can be recorded at all), and
        :class:`~repro.engine.faults.SimulatedCrash` is a
        ``BaseException`` and deliberately escapes: it *is* the crash
        the harness asked for.
        """
        job_id = record.job_id
        rng = self.retry_policy.rng()
        token = record.attempts
        for attempt in range(self.retry_policy.max_attempts):
            try:
                out = self._attempt(record, worker)
                self._sweep_results()
                return out
            except JournalError:
                # the store itself is damaged: there is no safe way to
                # journal a failure, so this must surface loudly
                raise
            except ReproError as exc:
                # a deterministic, job-scoped failure (unreadable
                # request.json, damaged checkpoint, ...): fail the job
                # instead of letting it kill the worker loop
                return self._fail_fenced(
                    job_id, token, f"{type(exc).__name__}: {exc}"
                )
            except Exception as exc:  # infrastructure crash: retry
                if attempt + 1 >= self.retry_policy.max_attempts:
                    return self._fail_fenced(
                        job_id,
                        token,
                        f"crashed {attempt + 1} time(s); last: "
                        f"{exc!r}",
                    )
                time.sleep(self.retry_policy.delay(attempt, rng))
                with self.lock:
                    if self._superseded(job_id, token) is not None:
                        # taken over while we backed off — the new
                        # owner runs it now
                        return self.store.get(job_id)
                    self.store.requeue(job_id, f"retry:{exc!r}"[:120])
                    record = self.store.claim(job_id, worker)
                    token = record.attempts
        raise AssertionError("unreachable")  # pragma: no cover

    def _attempt(self, record: JobRecord, worker: str) -> JobRecord:
        store = self.store
        job_id = record.job_id
        # the fencing token: this claim's journaled attempt count.  The
        # record object is live (shared with the store), so the value
        # must be captured now, before any takeover could bump it.
        token = record.attempts
        if record.cancel_requested:
            with self.lock:
                stale = self._superseded(job_id, token)
                if stale is not None:
                    return stale
                return store.transition(job_id, "cancelled")

        request = store.load_request(job_id)
        circuit = circuit_from_dict(
            request["circuit"], source=store.request_path(job_id)
        )
        config = self._job_config(request)
        family = _FAMILIES[request.get("family", "xc3000")]
        engine = request.get("engine") or self.engine

        adopted = self._adopt_existing_result(
            record, circuit, config, family, token
        )
        if adopted is not None:
            return adopted

        checkpoint = store.checkpoint_path(job_id)
        resume = checkpoint if os.path.exists(checkpoint) else None
        if resume is not None:
            try:
                load_checkpoint(resume)
            except CheckpointError:
                # a damaged checkpoint must never wedge the job —
                # drop it and route this attempt from scratch
                os.unlink(resume)
                resume = None
        if resume is not None:
            # journal the resume so the job's history shows it picked
            # up from a checkpoint rather than starting over
            with self.lock:
                record = store.transition(
                    job_id, "running", resumes=record.resumes + 1
                )
        listener = self._listener(job_id, worker, token)
        width = request.get("width")
        trace = None
        try:
            with self._heartbeat_pump(job_id, worker):
                if width is not None:
                    arch = family(circuit.rows, circuit.cols, width)
                    session = RoutingSession(
                        arch,
                        config,
                        engine=engine,
                        faults=self.faults,
                        on_trace_event=listener,
                    )
                    with session:
                        result = session.route(
                            circuit, checkpoint=checkpoint, resume=resume
                        )
                    trace = session.trace
                else:
                    width_found, result = minimum_channel_width(
                        circuit,
                        family,
                        config,
                        w_max=request.get("w_max", 40),
                        engine=engine,
                        checkpoint=checkpoint,
                        # a missing resume file just means "start fresh"
                        resume=checkpoint,
                        on_trace_event=listener,
                    )
        except (RoutingError, EngineTimeoutError, ValidationError) as exc:
            return self._fail_fenced(
                job_id, token, f"{type(exc).__name__}: {exc}"
            )

        return self._finish(
            record, circuit, config, family, result, trace, token
        )

    def _job_config(self, request: Dict[str, Any]) -> RouterConfig:
        """The request's config with its deadline budgets applied."""
        config = config_from_dict(request.get("config") or {})
        overrides: Dict[str, Any] = {}
        deadline = request.get("deadline_s")
        if deadline is not None and config.pass_timeout_s is None:
            overrides["pass_timeout_s"] = float(deadline)
        net_deadline = request.get("net_deadline_s")
        if net_deadline is not None and config.route_timeout_s is None:
            overrides["route_timeout_s"] = float(net_deadline)
        return replace(config, **overrides) if overrides else config

    def _adopt_existing_result(
        self, record: JobRecord, circuit, config, family,
        token: Optional[int] = None,
    ) -> Optional[JobRecord]:
        """Serve a result that already exists instead of re-routing.

        Two sources: this job's own ``result.json`` (a crash landed
        between the result write and the ``done`` transition), or the
        dedupe index (an identical request finished while this one sat
        queued).  Either way the result is re-verified before the job
        adopts it — a cached result is served only if it is *still*
        provably correct.
        """
        store = self.store
        job_id = record.job_id
        own = store.result_path(job_id)
        source_job = None
        if os.path.exists(own):
            path = own
        else:
            source_job = store.lookup_result(record.fingerprint)
            if source_job is None or source_job == job_id:
                return None
            path = store.result_path(source_job)
        try:
            result = load_result(path)
        except ReproError:
            # damaged artifact: ignore it and route for real
            return None
        arch = family(circuit.rows, circuit.cols, result.channel_width)
        report = verify_result(result, circuit, arch, config, level="full")
        if not report.ok:
            return None
        if source_job is not None:
            store.write_result(job_id, result_to_dict(result))
        with self.lock:
            stale = self._superseded(job_id, token)
            if stale is not None:
                return stale
            return store.finish_done(
                job_id,
                channel_width=result.channel_width,
                passes_used=result.passes_used,
                total_wirelength=result.total_wirelength,
                verified=True,
                deduped_from=source_job,
            )

    def _finish(
        self, record: JobRecord, circuit, config, family, result, trace,
        token: Optional[int] = None,
    ) -> JobRecord:
        """Verify, persist and journal a freshly routed result."""
        store = self.store
        job_id = record.job_id
        arch = family(circuit.rows, circuit.cols, result.channel_width)
        report = verify_result(result, circuit, arch, config, level="full")
        if not report.ok:
            return self._fail_fenced(
                job_id,
                token,
                f"result failed verification: "
                f"{report.errors[0].render()}",
            )
        with self.lock:
            stale = self._superseded(job_id, token)
            if stale is not None:
                # a takeover claimed this job while we routed: the new
                # owner's outcome wins, our completion is discarded
                return stale
            store.write_result(job_id, result_to_dict(result))
            if trace is not None:
                try:
                    trace.write(store.trace_path(job_id))
                except OSError:  # pragma: no cover - best effort
                    pass
            return store.finish_done(
                job_id,
                channel_width=result.channel_width,
                passes_used=result.passes_used,
                total_wirelength=result.total_wirelength,
                verified=True,
            )

    def _sweep_results(self) -> None:
        """Run the configured eviction sweep after a completion."""
        if self.eviction is None:
            return
        with self.lock:
            self.eviction.sweep(self.store)

    # ------------------------------------------------------------------
    # live progress
    # ------------------------------------------------------------------
    @contextmanager
    def _heartbeat_pump(self, job_id: str, worker: str,
                        interval: Optional[float] = None):
        """Stamp liveness on a timer for as long as the body runs.

        Trace events only fire at pass/checkpoint boundaries, so a
        single routing pass longer than ``stale_after_s`` would
        otherwise make a perfectly healthy in-process job look stale
        and get taken over mid-route.  The pump is independent of
        engine progress: while the worker thread is inside the body,
        the heartbeat stays fresh.
        """
        if interval is None:
            interval = max(0.05, min(1.0, self.stale_after_s / 4.0))
        stop = threading.Event()

        def pump() -> None:
            while not stop.wait(interval):
                self.store.heartbeat(job_id, worker)

        thread = threading.Thread(
            target=pump, name=f"heartbeat-{job_id}", daemon=True
        )
        self.store.heartbeat(job_id, worker)
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join(timeout=interval + 1.0)

    def _listener(self, job_id: str, worker: str,
                  token: Optional[int] = None):
        """Trace-event sink: stream to log.jsonl, heartbeat, journal
        the running -> checkpointed transition on the first checkpoint."""
        store = self.store
        log_path = store.log_path(job_id)

        def on_event(event: Dict[str, Any]) -> None:
            try:
                with open(log_path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(event) + "\n")
            except OSError:  # pragma: no cover - log is best effort
                pass
            store.heartbeat(job_id, worker)
            if event.get("type") == "checkpoint":
                with self.lock:
                    current = store.jobs.get(job_id)
                    if (
                        current is not None
                        and current.state == "running"
                        and (token is None or current.attempts == token)
                    ):
                        store.transition(job_id, "checkpointed")

        return on_event
