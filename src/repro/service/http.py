"""The network front end: ``repro.service`` over HTTP (stdlib asyncio).

One :class:`ServiceHTTP` exposes a :class:`~repro.service.api.
RoutingService` on a TCP socket, so clients submit, watch and fetch
routing jobs over the wire instead of sharing the store's filesystem:

====== ============================ =====================================
method path                         meaning
====== ============================ =====================================
POST   ``/v1/jobs``                 submit (circuit + config + tenant +
                                    priority); 201 with the job record
GET    ``/v1/jobs``                 every job record, submission order
GET    ``/v1/jobs/{id}``            one job's journal-derived record
GET    ``/v1/jobs/{id}/result``     the verified result document (done)
GET    ``/v1/jobs/{id}/events``     live progress as Server-Sent Events
DELETE ``/v1/jobs/{id}``            cancel (immediate/cooperative)
GET    ``/v1/healthz``              liveness + store identity + the
                                    ``ok``/``degraded`` overload status
GET    ``/v1/metrics``              queue depth, per-tenant counts,
                                    dedupe hits, journal/result sizes,
                                    plus the front end's ``http``
                                    section (connections, sheds, SSE)
====== ============================ =====================================

The server is deliberately *thin*: every durable decision still happens
inside :class:`RoutingService` under its journal protocol, so the
kill-anywhere crash contract is inherited — an HTTP submit is acked
only after the ``submitted`` event is fsync'd (a server killed
mid-request has either journaled the job or never acked it; nothing is
half-applied), and a SIGKILL'd server recovers by journal replay at the
next start exactly like the filesystem service does.  Blocking service
calls run on executor threads; the event loop only parses, streams and
writes.

Progress streaming (``/v1/jobs/{id}/events``) is SSE fed by the shared
:class:`~repro.service.hub.EventHub` — one ``log.jsonl`` tailer per
job, no matter how many subscribers watch it:

* each trace event (``repro.engine/trace-v4``: pass summaries,
  checkpoints, heartbeats from the engine) is sent as ``event: trace``
  with ``id:`` equal to its 1-based line number in the log;
* a client that reconnects sends ``Last-Event-ID`` (header or
  ``?last_event_id=`` query) and resumes exactly after the last line it
  saw — the log file is append-only, so ids are stable across server
  restarts *and* across slow-consumer sheds;
* a subscriber that cannot keep up (bounded queue overflow, or a
  socket write stalled past the deadline) is disconnected instead of
  buffered; on reconnect the missed window is replayed from the file;
* ``event: heartbeat`` carries worker liveness while the route is
  between trace events; when the job reaches a terminal state the
  stream flushes the log tail, sends one final ``event: state`` with
  the full record, and closes.

Overload protection (:mod:`repro.service.overload`): connections over
``ServerLimits.max_connections`` are refused with 503 + ``Retry-After``;
request heads and bodies must arrive within deadlines (slow-loris
defense); keep-alive connections are reaped after an idle timeout; and
while the :class:`OverloadPolicy` judges the node degraded (queue
depth, executor backlog or journal lag over thresholds), submits below
the priority floor are shed with 429 + ``Retry-After``.  Every refusal
is counted and visible under ``/v1/metrics``'s ``http`` key, and
``/v1/healthz`` reports ``status: degraded`` with the same reasons.

Errors are structured JSON (``{"error": {"type", "message", ...}}``)
with the library's exception taxonomy mapped onto status codes:
``AdmissionError`` 429 (backpressure, retry later), ``ValidationError``
422 (the request is broken), ``UnknownJobError`` 404, other
``JobError`` 409 (wrong state — including the structured failure record
of a terminally failed job), malformed documents 400, oversize bodies
413, missing ``Content-Length`` 411, chunked uploads 501, everything
else 500.  The typed client (:mod:`repro.service.client`) reverses the
mapping.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import threading
import time
import urllib.parse
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from ..errors import (
    AdmissionError,
    FormatError,
    JobError,
    ReproError,
    ServiceError,
    UnknownJobError,
    ValidationError,
)
from ..io import circuit_from_dict, result_to_dict
from .hub import EventHub
from .overload import HTTPStats, OverloadPolicy, ServerLimits
from .store import TERMINAL_STATES
from .supervisor import config_from_dict

#: wire format marker served by /v1/healthz
HTTP_API_VERSION = 1

#: largest accepted request body (a placed circuit is ~KBs; 64 MiB is
#: far beyond any real device and bounds a hostile request)
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 411: "Length Required",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
}


def error_status(exc: BaseException) -> int:
    """The HTTP status an exception maps onto."""
    if isinstance(exc, AdmissionError):
        return 429
    if isinstance(exc, UnknownJobError):
        return 404
    if isinstance(exc, JobError):
        return 409
    if isinstance(exc, ValidationError):
        return 422
    if isinstance(exc, FormatError):
        return 400
    return 500


def error_document(exc: BaseException) -> Dict[str, Any]:
    """One exception as the wire error payload (round-trippable)."""
    doc: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    for attr in ("code", "job_id", "record", "failure", "kind"):
        value = getattr(exc, attr, None)
        if value is not None:
            doc[attr] = value
    report = getattr(exc, "report", None)
    if report is not None:
        try:
            doc["diagnostics"] = [d.render() for d in report.diagnostics]
        except Exception:  # pragma: no cover - diagnostics best effort
            pass
    return {"error": doc}


def _service_error(message: str) -> Dict[str, Any]:
    return {"error": {"type": "ServiceError", "message": message}}


class _RequestError(Exception):
    """A request that must be refused with a structured document.

    Raised out of :meth:`ServiceHTTP._read_request` when the *framing*
    of the request is unacceptable (oversize body, missing length,
    chunked upload, malformed head).  The connection is closed after
    the response — with the framing in doubt there is no safe way to
    resynchronize a keep-alive stream.
    """

    def __init__(self, status: int, doc: Dict[str, Any]):
        self.status = status
        self.doc = doc
        super().__init__(f"HTTP {status}")


def _read_log_lines(
    path: str, skip: int, limit: Optional[int] = None
) -> List[str]:
    """Complete (newline-terminated) lines of a log after ``skip``.

    An unterminated tail is in the middle of being appended — it is
    left for the next poll, so SSE ids always name durable lines.
    ``limit`` bounds one batch so replay never writes unbounded chunks.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines(keepends=True)
    except OSError:
        return []
    complete = [l.rstrip("\n") for l in lines if l.endswith("\n")]
    if limit is None:
        return complete[skip:]
    return complete[skip:skip + limit]


class ServiceHTTP:
    """Asyncio HTTP front end over one :class:`RoutingService`.

    ``port=0`` binds an ephemeral port; :attr:`bound` carries the real
    ``(host, port)`` after :meth:`start`.  The server handles any
    number of concurrent requests up to ``limits.max_connections``;
    service calls are serialized by the service's own lock on executor
    threads.  ``limits`` governs connections and read deadlines,
    ``overload`` the load-shedding thresholds; both default to
    production-shaped values.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sse_poll_s: float = 0.2,
        sse_heartbeat_s: float = 5.0,
        limits: Optional[ServerLimits] = None,
        overload: Optional[OverloadPolicy] = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.sse_poll_s = sse_poll_s
        self.sse_heartbeat_s = sse_heartbeat_s
        self.limits = limits if limits is not None else ServerLimits()
        self.overload = (
            overload if overload is not None else OverloadPolicy()
        )
        self.stats = HTTPStats()
        self.hub = EventHub(
            service,
            self._call,
            poll_s=sse_poll_s,
            heartbeat_s=sse_heartbeat_s,
            queue_limit=self.limits.sse_queue_limit,
        )
        self.bound: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        #: tenant -> submits accepted on the wire but not yet answered
        self._inflight: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.bound = (sockname[0], sockname[1])
        return self.bound

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        self.hub.shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run one blocking service call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args
        )

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        stats = self.stats
        if stats.connections_open >= self.limits.max_connections:
            stats.shed_connections += 1
            try:
                await self._respond(
                    writer, 503,
                    _service_error("connection limit reached"),
                    retry_after=self.limits.retry_after_s,
                )
            except Exception:
                pass
            finally:
                await self._close(writer)
            return
        stats.connection_opened()
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _RequestError as exc:
                    stats.requests_bad += 1
                    try:
                        await self._respond(
                            writer, exc.status, exc.doc
                        )
                    except Exception:
                        pass
                    return
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    asyncio.TimeoutError,
                    ValueError,
                    ConnectionError,
                ):
                    # EOF, idle/slow-loris timeout, or a head too
                    # broken to answer: close without a response
                    return
                stats.requests_total += 1
                method, path, query, headers, body, keep = request
                try:
                    keep = await self._dispatch(
                        writer, method, path, query, headers, body, keep
                    )
                except (ConnectionError, asyncio.CancelledError):
                    return
                except Exception as exc:  # never kill the accept loop
                    try:
                        await self._respond(
                            writer, error_status(exc),
                            error_document(exc), keep_alive=keep,
                        )
                    except Exception:
                        return
                if not keep:
                    return
        finally:
            stats.connection_closed()
            await self._close(writer)

    async def _close(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """``(method, path, query, headers, body, keep_alive)``.

        The *first* byte may wait up to ``idle_timeout_s`` (keep-alive
        gap between requests); once a request starts arriving the rest
        of the head must land within ``header_timeout_s`` and the body
        within ``body_timeout_s`` — a trickling client is cut off, not
        allowed to pin a connection open (slow-loris defense).
        """
        limits = self.limits
        first = await asyncio.wait_for(
            reader.readexactly(1), limits.idle_timeout_s
        )
        head = first + await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), limits.header_timeout_s
        )
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        method = method.upper()
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep = connection != "close"
        else:
            keep = connection == "keep-alive"
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _RequestError(
                501,
                _service_error(
                    "Transfer-Encoding: chunked is not supported; "
                    "send Content-Length"
                ),
            )
        if method in ("POST", "PUT", "PATCH") \
                and "content-length" not in headers:
            raise _RequestError(
                411,
                _service_error(f"{method} requires Content-Length"),
            )
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _RequestError(
                400, _service_error("malformed Content-Length")
            ) from None
        if length < 0:
            raise _RequestError(
                400, _service_error("malformed Content-Length")
            )
        if length > MAX_BODY_BYTES:
            raise _RequestError(
                413, _service_error("request body too large")
            )
        body = b""
        if length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(length), limits.body_timeout_s
            )
        split = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(split.query))
        return method, split.path, query, headers, body, keep

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: Any,
        *,
        keep_alive: bool = False,
        retry_after: Optional[float] = None,
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        if retry_after is not None:
            head += f"Retry-After: {retry_after:g}\r\n"
        head += "\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # overload assessment
    # ------------------------------------------------------------------
    async def _assess(self) -> Tuple[Dict[str, Any], bool, List[str]]:
        """Pressure snapshot + the policy's verdict; updates stats."""
        pressure = await self._call(self.service.pressure)
        degraded, reasons = self.overload.assess(pressure)
        self.stats.degraded = degraded
        return pressure, degraded, reasons

    def _http_metrics(self) -> Dict[str, Any]:
        doc = self.stats.to_dict()
        hub = self.hub.stats()
        doc["sse"] = {
            "resumes": self.stats.sse_resumes,
            # lagged: a bounded queue overflowed and the subscriber
            # fell back to the log file (connection survived);
            # dropped_slow: the socket stalled writes past the
            # deadline and was disconnected
            "lagged": hub["dropped_slow"],
            "dropped_slow": self.stats.sse_dropped_slow,
            "tails": hub["tails"],
            "tails_started": hub["tails_started"],
            "subscribers": hub["subscribers"],
            "subscribers_peak": hub["subscribers_peak"],
        }
        return doc

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
        keep: bool,
    ) -> bool:
        """Answer one request; returns whether to keep the connection."""
        service = self.service
        segments = [s for s in path.split("/") if s]
        if not segments or segments[0] != "v1":
            await self._respond(
                writer, 404,
                _service_error(f"no such resource {path!r}"),
                keep_alive=keep,
            )
            return keep

        if segments[1:] == ["healthz"] and method == "GET":
            pressure, degraded, reasons = await self._assess()
            await self._respond(
                writer, 200,
                {
                    "ok": True,
                    "status": "degraded" if degraded else "ok",
                    "reasons": reasons,
                    "service": "repro.service",
                    "api_version": HTTP_API_VERSION,
                    "store": service.store.root,
                    "pressure": pressure,
                },
                keep_alive=keep,
            )
            return keep
        if segments[1:] == ["metrics"] and method == "GET":
            doc = await self._call(service.metrics)
            _, degraded, reasons = await self._assess()
            http = self._http_metrics()
            http["degraded"] = degraded
            http["overload_reasons"] = reasons
            doc["http"] = http
            await self._respond(writer, 200, doc, keep_alive=keep)
            return keep
        if segments[1:] == ["jobs"]:
            if method == "GET":
                await self._respond(
                    writer, 200, await self._call(service.jobs),
                    keep_alive=keep,
                )
                return keep
            if method == "POST":
                await self._submit(writer, body, keep)
                return keep
            await self._respond(
                writer, 405,
                _service_error(f"{method} not allowed here"),
                keep_alive=keep,
            )
            return keep
        if len(segments) >= 3 and segments[1] == "jobs":
            job_id = segments[2]
            rest = segments[3:]
            if not rest and method == "GET":
                await self._respond(
                    writer, 200,
                    await self._call(lambda: service.status(job_id)),
                    keep_alive=keep,
                )
                return keep
            if not rest and method == "DELETE":
                record = await self._call(
                    lambda: service.cancel(job_id)
                )
                await self._respond(
                    writer, 200, record.to_dict(), keep_alive=keep
                )
                return keep
            if rest == ["result"] and method == "GET":
                result = await self._call(
                    lambda: service.result(job_id)
                )
                await self._respond(
                    writer, 200, result_to_dict(result),
                    keep_alive=keep,
                )
                return keep
            if rest == ["events"] and method == "GET":
                # an SSE stream owns the connection until it closes
                await self._stream_events(writer, job_id, query, headers)
                return False
        await self._respond(
            writer, 404,
            _service_error(f"no such resource {path!r}"),
            keep_alive=keep,
        )
        return keep

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes, keep: bool
    ) -> None:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise FormatError(f"request body is not JSON: {exc}") from None
        if not isinstance(doc, dict) or "circuit" not in doc:
            raise FormatError(
                "submit body must be a JSON object with a 'circuit' key"
            )
        tenant = str(doc.get("tenant") or "default")
        # governance: per-tenant in-flight cap, then load shedding —
        # both refuse *before* the expensive circuit parse
        if (
            self._inflight.get(tenant, 0)
            >= self.limits.max_inflight_per_tenant
        ):
            self.stats.shed_inflight += 1
            exc = AdmissionError(
                f"tenant {tenant!r} has "
                f"{self.limits.max_inflight_per_tenant} submits already "
                f"in flight; retry shortly",
                code="INFLIGHT_LIMIT",
            )
            await self._respond(
                writer, 429, error_document(exc), keep_alive=keep,
                retry_after=self.limits.retry_after_s,
            )
            return
        _, degraded, reasons = await self._assess()
        if degraded:
            try:
                priority = self.service.policy.priority_for(
                    tenant, doc.get("priority")
                )
            except (TypeError, ValueError):
                raise FormatError(
                    "priority must be an integer"
                ) from None
            if self.overload.should_shed(degraded, priority):
                self.stats.shed_submits += 1
                exc = AdmissionError(
                    "service overloaded, low-priority submit shed: "
                    + "; ".join(reasons),
                    code="OVERLOADED",
                )
                await self._respond(
                    writer, 429, error_document(exc), keep_alive=keep,
                    retry_after=self.overload.retry_after_s,
                )
                return
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        try:
            circuit = circuit_from_dict(doc["circuit"], source="<http>")
            config = config_from_dict(doc.get("config") or {})
            kwargs: Dict[str, Any] = {}
            for key in (
                "family", "width", "w_max", "engine", "tenant",
                "priority", "deadline_s", "net_deadline_s",
            ):
                if doc.get(key) is not None:
                    kwargs[key] = doc[key]
            record = await self._call(
                lambda: self.service.submit(
                    circuit, config=config, **kwargs
                )
            )
        finally:
            left = self._inflight.get(tenant, 1) - 1
            if left <= 0:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = left
        await self._respond(
            writer, 201, record.to_dict(), keep_alive=keep
        )

    # ------------------------------------------------------------------
    # SSE progress streaming (hub-backed)
    # ------------------------------------------------------------------
    async def _sse_write(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        """Write with a stall deadline instead of unbounded buffering.

        ``drain`` only suspends once the transport buffer crosses its
        high watermark; a subscriber that keeps it suspended past
        ``sse_write_timeout_s`` raises ``TimeoutError`` and is shed by
        the caller.
        """
        writer.write(payload)
        transport = writer.transport
        if transport is not None and transport.get_write_buffer_size():
            await asyncio.wait_for(
                writer.drain(), self.limits.sse_write_timeout_s
            )

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        job_id: str,
        query: Dict[str, str],
        headers: Dict[str, str],
    ) -> None:
        # existence check first: an unknown job must 404 before any
        # stream bytes are committed
        status = await self._call(lambda: self.service.status(job_id))
        raw = headers.get(
            "last-event-id", query.get("last_event_id", "0")
        )
        try:
            sent = max(0, int(raw))
        except ValueError:
            sent = 0
        limits = self.limits
        if (
            self.hub.subscriber_count() >= limits.max_sse_subscribers
        ):
            self.stats.shed_sse += 1
            exc = AdmissionError(
                "SSE subscriber limit reached; retry shortly",
                code="SSE_LIMIT",
            )
            await self._respond(
                writer, 429, error_document(exc),
                retry_after=limits.retry_after_s,
            )
            return
        if sent > 0:
            self.stats.sse_resumes += 1
        if limits.sse_send_buffer_bytes:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_SNDBUF,
                        limits.sse_send_buffer_bytes,
                    )
                except OSError:  # pragma: no cover - platform specific
                    pass
            if writer.transport is not None:
                writer.transport.set_write_buffer_limits(
                    high=limits.sse_send_buffer_bytes
                )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
            b": stream open\n\n"
        )
        await writer.drain()
        log_path = self.service.store.log_path(job_id)
        batch = max(1, limits.sse_queue_limit // 2)

        async def replay_from_file(until: Optional[int]) -> None:
            """Stream lines (sent, until] straight from the log."""
            nonlocal sent
            while until is None or sent < until:
                take = batch if until is None else min(
                    batch, until - sent
                )
                lines = await self._call(
                    _read_log_lines, log_path, sent, take
                )
                if not lines:
                    return
                out = bytearray()
                for line in lines:
                    sent += 1
                    out += (
                        f"id: {sent}\nevent: trace\n"
                        f"data: {line}\n\n".encode("utf-8")
                    )
                await self._sse_write(writer, bytes(out))

        try:
            if status["state"] in TERMINAL_STATES:
                # finished job: no tailer needed, replay the file and
                # close with the terminal record
                await replay_from_file(None)
                await self._sse_write(
                    writer,
                    f"event: state\ndata: "
                    f"{json.dumps(status, sort_keys=True)}\n\n".encode(),
                )
                return
            sub = self.hub.subscribe(job_id)
            try:
                # the tailer had already broadcast events <= start_id
                # before we attached: catch up from the file, then
                # switch to the live queue
                await replay_from_file(sub.start_id)
                while True:
                    if sub.dropped and sub.queue.empty():
                        item = None
                    else:
                        item = await sub.get(timeout=1.0)
                    if item is None:
                        if sub.dropped:
                            # the hub outpaced this consumer's bounded
                            # queue (it tails the log at memory speed; a
                            # socket drains slower under any burst).
                            # Fall back to the file and re-attach — the
                            # connection survives; only a socket whose
                            # *writes* stall past the deadline is
                            # disconnected (TimeoutError below).
                            fresh = self.hub.subscribe(job_id)
                            self.hub.unsubscribe(sub)
                            sub = fresh
                            await replay_from_file(sub.start_id)
                        continue
                    kind, event_id, data = item
                    if kind == "trace":
                        if event_id <= sent:
                            continue  # already caught up from file
                        sent = event_id
                        await self._sse_write(
                            writer,
                            f"id: {event_id}\nevent: trace\n"
                            f"data: {data}\n\n".encode("utf-8"),
                        )
                    else:
                        await self._sse_write(
                            writer,
                            f"event: {kind}\ndata: {data}\n\n".encode(),
                        )
                        if kind == "state":
                            return
            finally:
                self.hub.unsubscribe(sub)
        except asyncio.TimeoutError:
            # socket write stalled past the deadline: shed the slow
            # subscriber; it resumes via Last-Event-ID
            self.stats.sse_dropped_slow += 1
            self._shed_subscriber(writer)

    def _shed_subscriber(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.write(
                b": dropped (slow consumer); "
                b"reconnect with Last-Event-ID\n\n"
            )
        except Exception:
            pass


class BackgroundServer:
    """A :class:`ServiceHTTP` on its own event-loop thread.

    The embedding form (tests, notebooks, a worker process that also
    answers HTTP): ``start()`` returns the bound ``(host, port)``,
    ``stop()`` tears the loop down.  Usable as a context manager.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 **kwargs: Any):
        self.frontend = ServiceHTTP(service, host, port, **kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-http",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServiceError("HTTP front end failed to start in time")
        if self._error is not None:
            raise ServiceError(
                f"HTTP front end failed to start: {self._error!r}"
            )
        assert self.frontend.bound is not None
        return self.frontend.bound

    async def _main(self) -> None:
        try:
            await self.frontend.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await self.frontend.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve_http(
    service,
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    workers: int = 1,
    poll_s: float = 0.1,
    install_signal_handlers: bool = True,
    on_bound: Optional[Callable[[Tuple[str, int]], None]] = None,
    limits: Optional[ServerLimits] = None,
    overload: Optional[OverloadPolicy] = None,
) -> int:
    """Run the worker pool *and* the HTTP front end until signalled.

    The worker pool (:meth:`RoutingService.serve`) runs on background
    threads — including its periodic stale-job takeover — while the
    main thread owns the asyncio loop.  SIGTERM/SIGINT request a
    graceful drain: no new claims, in-flight jobs finish, the socket
    closes, and the call returns how many jobs the pool processed.
    """
    frontend = ServiceHTTP(
        service, host, port, limits=limits, overload=overload
    )
    processed: List[int] = [0]

    def pool() -> None:
        processed[0] = service.serve(
            workers=workers,
            poll_s=poll_s,
            install_signal_handlers=False,
        )

    async def main() -> None:
        bound = await frontend.start()
        if on_bound is not None:
            on_bound(bound)
        print(f"http: listening on {bound[0]}:{bound[1]}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def request_stop() -> None:
            service.supervisor.request_drain()
            stop.set()

        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, request_stop)
        worker_thread = threading.Thread(
            target=pool, name="repro-http-pool", daemon=True
        )
        worker_thread.start()
        try:
            await stop.wait()
        finally:
            await frontend.stop()
        while worker_thread.is_alive():
            await asyncio.sleep(0.1)

    asyncio.run(main())
    return processed[0]
