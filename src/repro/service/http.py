"""The network front end: ``repro.service`` over HTTP (stdlib asyncio).

One :class:`ServiceHTTP` exposes a :class:`~repro.service.api.
RoutingService` on a TCP socket, so clients submit, watch and fetch
routing jobs over the wire instead of sharing the store's filesystem:

====== ============================ =====================================
method path                         meaning
====== ============================ =====================================
POST   ``/v1/jobs``                 submit (circuit + config + tenant +
                                    priority); 201 with the job record
GET    ``/v1/jobs``                 every job record, submission order
GET    ``/v1/jobs/{id}``            one job's journal-derived record
GET    ``/v1/jobs/{id}/result``     the verified result document (done)
GET    ``/v1/jobs/{id}/events``     live progress as Server-Sent Events
DELETE ``/v1/jobs/{id}``            cancel (immediate/cooperative)
GET    ``/v1/healthz``              liveness + store identity
GET    ``/v1/metrics``              queue depth, per-tenant counts,
                                    dedupe hits, journal/result sizes
====== ============================ =====================================

The server is deliberately *thin*: every durable decision still happens
inside :class:`RoutingService` under its journal protocol, so the
kill-anywhere crash contract is inherited — an HTTP submit is acked
only after the ``submitted`` event is fsync'd (a server killed
mid-request has either journaled the job or never acked it; nothing is
half-applied), and a SIGKILL'd server recovers by journal replay at the
next start exactly like the filesystem service does.  Blocking service
calls run on executor threads; the event loop only parses, streams and
writes.

Progress streaming (``/v1/jobs/{id}/events``) is SSE tailing the job's
``log.jsonl``:

* each trace event (``repro.engine/trace-v4``: pass summaries,
  checkpoints, heartbeats from the engine) is sent as ``event: trace``
  with ``id:`` equal to its 1-based line number in the log;
* a client that reconnects sends ``Last-Event-ID`` (header or
  ``?last_event_id=`` query) and resumes exactly after the last line it
  saw — the log file is append-only, so ids are stable across server
  restarts;
* ``event: heartbeat`` carries worker liveness while the route is
  between trace events; comment keep-alives hold idle connections open;
* when the job reaches a terminal state the stream flushes the log
  tail, sends one final ``event: state`` with the full record, and
  closes.

Errors are structured JSON (``{"error": {"type", "message", ...}}``)
with the library's exception taxonomy mapped onto status codes:
``AdmissionError`` 429 (backpressure, retry later), ``ValidationError``
422 (the request is broken), ``UnknownJobError`` 404, other
``JobError`` 409 (wrong state — including the structured failure record
of a terminally failed job), malformed documents 400, everything else
500.  The typed client (:mod:`repro.service.client`) reverses the
mapping.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import urllib.parse
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from ..errors import (
    AdmissionError,
    FormatError,
    JobError,
    ReproError,
    ServiceError,
    UnknownJobError,
    ValidationError,
)
from ..io import circuit_from_dict, result_to_dict
from .store import TERMINAL_STATES
from .supervisor import config_from_dict

#: wire format marker served by /v1/healthz
HTTP_API_VERSION = 1

#: largest accepted request body (a placed circuit is ~KBs; 64 MiB is
#: far beyond any real device and bounds a hostile request)
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error",
}


def error_status(exc: BaseException) -> int:
    """The HTTP status an exception maps onto."""
    if isinstance(exc, AdmissionError):
        return 429
    if isinstance(exc, UnknownJobError):
        return 404
    if isinstance(exc, JobError):
        return 409
    if isinstance(exc, ValidationError):
        return 422
    if isinstance(exc, FormatError):
        return 400
    return 500


def error_document(exc: BaseException) -> Dict[str, Any]:
    """One exception as the wire error payload (round-trippable)."""
    doc: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    for attr in ("code", "job_id", "record", "failure", "kind"):
        value = getattr(exc, attr, None)
        if value is not None:
            doc[attr] = value
    report = getattr(exc, "report", None)
    if report is not None:
        try:
            doc["diagnostics"] = [d.render() for d in report.diagnostics]
        except Exception:  # pragma: no cover - diagnostics best effort
            pass
    return {"error": doc}


def _read_log_lines(path: str, skip: int) -> List[str]:
    """Complete (newline-terminated) lines of a log after ``skip``.

    An unterminated tail is in the middle of being appended — it is
    left for the next poll, so SSE ids always name durable lines.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines(keepends=True)
    except OSError:
        return []
    complete = [l.rstrip("\n") for l in lines if l.endswith("\n")]
    return complete[skip:]


class ServiceHTTP:
    """Asyncio HTTP front end over one :class:`RoutingService`.

    ``port=0`` binds an ephemeral port; :attr:`bound` carries the real
    ``(host, port)`` after :meth:`start`.  The server handles any
    number of concurrent requests; service calls are serialized by the
    service's own lock on executor threads.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sse_poll_s: float = 0.2,
        sse_heartbeat_s: float = 5.0,
        request_timeout_s: float = 30.0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.sse_poll_s = sse_poll_s
        self.sse_heartbeat_s = sse_heartbeat_s
        self.request_timeout_s = request_timeout_s
        self.bound: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.bound = (sockname[0], sockname[1])
        return self.bound

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _call(self, fn: Callable[[], Any]) -> Any:
        """Run one blocking service call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(None, fn)

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await self._read_request(reader)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
            ValueError,
            ConnectionError,
        ):
            writer.close()
            return
        try:
            if request is None:
                await self._respond(
                    writer, 413,
                    {"error": {"type": "ServiceError",
                               "message": "request body too large"}},
                )
            else:
                await self._dispatch(writer, *request)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # never kill the accept loop
            try:
                await self._respond(
                    writer, error_status(exc), error_document(exc)
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """``(method, path, query, headers, body)`` or None (too big)."""
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), self.request_timeout_s
        )
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ValueError("malformed content-length") from None
        if length > MAX_BODY_BYTES:
            return None
        body = b""
        if length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(length), self.request_timeout_s
            )
        split = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(split.query))
        return method.upper(), split.path, query, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: Any,
    ) -> None:
        body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        service = self.service
        segments = [s for s in path.split("/") if s]
        if not segments or segments[0] != "v1":
            await self._respond(
                writer, 404,
                {"error": {"type": "ServiceError",
                           "message": f"no such resource {path!r}"}},
            )
            return

        if segments[1:] == ["healthz"] and method == "GET":
            await self._respond(
                writer, 200,
                {
                    "ok": True,
                    "service": "repro.service",
                    "api_version": HTTP_API_VERSION,
                    "store": service.store.root,
                },
            )
            return
        if segments[1:] == ["metrics"] and method == "GET":
            await self._respond(
                writer, 200, await self._call(service.metrics)
            )
            return
        if segments[1:] == ["jobs"]:
            if method == "GET":
                await self._respond(
                    writer, 200, await self._call(service.jobs)
                )
                return
            if method == "POST":
                await self._submit(writer, body)
                return
            await self._respond(
                writer, 405,
                {"error": {"type": "ServiceError",
                           "message": f"{method} not allowed here"}},
            )
            return
        if len(segments) >= 3 and segments[1] == "jobs":
            job_id = segments[2]
            rest = segments[3:]
            if not rest and method == "GET":
                await self._respond(
                    writer, 200,
                    await self._call(lambda: service.status(job_id)),
                )
                return
            if not rest and method == "DELETE":
                record = await self._call(
                    lambda: service.cancel(job_id)
                )
                await self._respond(writer, 200, record.to_dict())
                return
            if rest == ["result"] and method == "GET":
                result = await self._call(
                    lambda: service.result(job_id)
                )
                await self._respond(writer, 200, result_to_dict(result))
                return
            if rest == ["events"] and method == "GET":
                await self._stream_events(writer, job_id, query, headers)
                return
        await self._respond(
            writer, 404,
            {"error": {"type": "ServiceError",
                       "message": f"no such resource {path!r}"}},
        )

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise FormatError(f"request body is not JSON: {exc}") from None
        if not isinstance(doc, dict) or "circuit" not in doc:
            raise FormatError(
                "submit body must be a JSON object with a 'circuit' key"
            )
        circuit = circuit_from_dict(doc["circuit"], source="<http>")
        config = config_from_dict(doc.get("config") or {})
        kwargs: Dict[str, Any] = {}
        for key in (
            "family", "width", "w_max", "engine", "tenant", "priority",
            "deadline_s", "net_deadline_s",
        ):
            if doc.get(key) is not None:
                kwargs[key] = doc[key]
        record = await self._call(
            lambda: self.service.submit(circuit, config=config, **kwargs)
        )
        await self._respond(writer, 201, record.to_dict())

    # ------------------------------------------------------------------
    # SSE progress streaming
    # ------------------------------------------------------------------
    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        job_id: str,
        query: Dict[str, str],
        headers: Dict[str, str],
    ) -> None:
        # existence check first: an unknown job must 404 before any
        # stream bytes are committed
        status = await self._call(lambda: self.service.status(job_id))
        raw = headers.get(
            "last-event-id", query.get("last_event_id", "0")
        )
        try:
            sent = max(0, int(raw))
        except ValueError:
            sent = 0
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
            b": stream open\n\n"
        )
        await writer.drain()
        log_path = self.service.store.log_path(job_id)
        loop = asyncio.get_running_loop()
        last_activity = loop.time()

        async def flush_log() -> int:
            nonlocal sent, last_activity
            lines = await self._call(
                lambda: _read_log_lines(log_path, sent)
            )
            for line in lines:
                sent += 1
                writer.write(
                    f"id: {sent}\nevent: trace\n"
                    f"data: {line}\n\n".encode("utf-8")
                )
            if lines:
                last_activity = loop.time()
                await writer.drain()
            return len(lines)

        while True:
            await flush_log()
            status = await self._call(
                lambda: self.service.status(job_id)
            )
            if status["state"] in TERMINAL_STATES:
                # drain whatever landed between the flush and the poll,
                # then close with the terminal record
                await flush_log()
                writer.write(
                    f"event: state\ndata: "
                    f"{json.dumps(status, sort_keys=True)}\n\n".encode()
                )
                await writer.drain()
                return
            if loop.time() - last_activity >= self.sse_heartbeat_s:
                beat = await self._call(
                    lambda: self.service.store.heartbeat_info(job_id)
                )
                doc = {
                    "at": time.time(),
                    "state": status["state"],
                    "worker": (beat or {}).get("worker"),
                }
                writer.write(
                    f"event: heartbeat\ndata: "
                    f"{json.dumps(doc, sort_keys=True)}\n\n".encode()
                )
                await writer.drain()
                last_activity = loop.time()
            await asyncio.sleep(self.sse_poll_s)


class BackgroundServer:
    """A :class:`ServiceHTTP` on its own event-loop thread.

    The embedding form (tests, notebooks, a worker process that also
    answers HTTP): ``start()`` returns the bound ``(host, port)``,
    ``stop()`` tears the loop down.  Usable as a context manager.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 **kwargs: Any):
        self.frontend = ServiceHTTP(service, host, port, **kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-http",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ServiceError("HTTP front end failed to start in time")
        if self._error is not None:
            raise ServiceError(
                f"HTTP front end failed to start: {self._error!r}"
            )
        assert self.frontend.bound is not None
        return self.frontend.bound

    async def _main(self) -> None:
        try:
            await self.frontend.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await self.frontend.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve_http(
    service,
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    workers: int = 1,
    poll_s: float = 0.1,
    install_signal_handlers: bool = True,
    on_bound: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> int:
    """Run the worker pool *and* the HTTP front end until signalled.

    The worker pool (:meth:`RoutingService.serve`) runs on background
    threads — including its periodic stale-job takeover — while the
    main thread owns the asyncio loop.  SIGTERM/SIGINT request a
    graceful drain: no new claims, in-flight jobs finish, the socket
    closes, and the call returns how many jobs the pool processed.
    """
    frontend = ServiceHTTP(service, host, port)
    processed: List[int] = [0]

    def pool() -> None:
        processed[0] = service.serve(
            workers=workers,
            poll_s=poll_s,
            install_signal_handlers=False,
        )

    async def main() -> None:
        bound = await frontend.start()
        if on_bound is not None:
            on_bound(bound)
        print(f"http: listening on {bound[0]}:{bound[1]}", flush=True)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def request_stop() -> None:
            service.supervisor.request_drain()
            stop.set()

        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, request_stop)
        worker_thread = threading.Thread(
            target=pool, name="repro-http-pool", daemon=True
        )
        worker_thread.start()
        try:
            await stop.wait()
        finally:
            await frontend.stop()
        while worker_thread.is_alive():
            await asyncio.sleep(0.1)

    asyncio.run(main())
    return processed[0]
